//! Deterministic synthetic graph generators.
//!
//! These stand in for the paper's eight multi-gigabyte real-world datasets
//! (see DESIGN.md §3/§4). Each generator targets the structural properties
//! that make graph reordering interesting: sparsity, small diameter, skewed
//! degree distribution, and — crucially for Gorder's sibling score — many
//! pairs of nodes sharing common in-neighbours.
//!
//! All generators take an explicit seed and are deterministic given it.

mod copying;
mod er;
mod pref_attach;
mod rmat;
mod sbm;
mod web;

pub use copying::copying_model;
pub use er::erdos_renyi;
pub use pref_attach::{preferential_attachment, PrefAttachConfig};
pub use rmat::{rmat, RmatConfig};
pub use sbm::stochastic_block_model;
pub use web::{web_graph, WebGraphConfig};
