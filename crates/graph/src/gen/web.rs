//! Web-graph generator with host-block structure.
//!
//! Models the structure of hyperlink datasets (the paper's `wiki`,
//! `pldarc`, `sdarc`):
//!
//! * pages are grouped into **hosts** with heavy-tailed sizes;
//! * page ids are assigned host-contiguously — the analogue of datasets
//!   numbered by URL-lexicographic order, which the replication singles out
//!   as the reason "Original" order performs well on web graphs;
//! * navigation links connect pages to their host root and to nearby pages
//!   in the same host (template menus);
//! * external links are formed by a copying process: a page either copies
//!   an external link of the previous page on the host (shared template →
//!   sibling structure) or links to the root of a host chosen with a Zipf
//!   preference for popular hosts.

use crate::csr::{Graph, GraphBuilder};
use crate::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`web_graph`].
#[derive(Debug, Clone, Copy)]
pub struct WebGraphConfig {
    /// Total page count.
    pub n: u32,
    /// Mean host size (host sizes are heavy-tailed around this mean).
    pub mean_host_size: u32,
    /// Intra-host navigation links per page.
    pub nav_links: u32,
    /// External links per page.
    pub ext_links: u32,
    /// Probability an external link is copied from the previous page of
    /// the same host instead of freshly sampled.
    pub copy_prob: f64,
    /// Probability a *fresh* external link targets a host of the same
    /// *topic* instead of a Zipf-popular one. Hosts are assigned random
    /// topics, so topical communities are **independent of the
    /// URL-alphabetical id order** — exactly the real-web situation that
    /// gives reorderings their headroom: the original order knows about
    /// hosts, but the co-citation communities that dominate locality are
    /// scattered through it.
    pub host_affinity: f64,
    /// Fraction of pages relocated to a "stragglers" block at the end of
    /// the id range (host-relative order preserved). Real crawl/URL-sort
    /// orders are good but imperfect — hosts get split across crawl
    /// sessions, mirrors and alternate subdomains sort far from their
    /// master — so the Original ordering of a real dataset is beatable.
    /// 0.0 produces perfectly contiguous hosts.
    pub fragmentation: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebGraphConfig {
    fn default() -> Self {
        WebGraphConfig {
            n: 10_000,
            mean_host_size: 30,
            nav_links: 4,
            ext_links: 3,
            copy_prob: 0.6,
            host_affinity: 0.6,
            fragmentation: 0.25,
            seed: 0,
        }
    }
}

/// Generates a host-structured web graph. See module docs for the model.
pub fn web_graph(cfg: WebGraphConfig) -> Graph {
    let WebGraphConfig {
        n,
        mean_host_size,
        nav_links,
        ext_links,
        copy_prob,
        host_affinity,
        fragmentation,
        seed,
    } = cfg;
    assert!(mean_host_size >= 1, "hosts must contain at least one page");
    assert!(
        (0.0..=1.0).contains(&copy_prob),
        "copy_prob must be a probability"
    );
    assert!(
        (0.0..=1.0).contains(&host_affinity),
        "host_affinity must be a probability"
    );
    assert!(
        (0.0..=1.0).contains(&fragmentation),
        "fragmentation must be a probability"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // Carve 0..n into hosts with Pareto-ish sizes (mean ≈ mean_host_size).
    let mut host_starts: Vec<u32> = Vec::new();
    let mut cursor = 0u32;
    while cursor < n {
        host_starts.push(cursor);
        // size = ceil(mean/2 * pareto(alpha=2)) clipped — mean of Pareto(2)
        // with x_m = mean/2 is mean.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let size = ((f64::from(mean_host_size) / 2.0) / u.sqrt()).ceil() as u32;
        cursor = cursor.saturating_add(size.clamp(1, n));
    }
    let hosts = host_starts.len();
    let host_end = |h: usize| -> u32 {
        if h + 1 < hosts {
            host_starts[h + 1]
        } else {
            n
        }
    };

    // Random topic per host; each topic spans ~32 hosts scattered across
    // the id range.
    let n_topics = (hosts / 32).max(1);
    let topic_of: Vec<u32> = (0..hosts)
        .map(|_| rng.gen_range(0..n_topics as u32))
        .collect();
    let mut hosts_by_topic: Vec<Vec<u32>> = vec![Vec::new(); n_topics];
    for (h, &t) in topic_of.iter().enumerate() {
        hosts_by_topic[t as usize].push(h as u32);
    }

    let est = n as usize * (nav_links + ext_links) as usize;
    let mut b = GraphBuilder::with_capacity(n, est);
    // Zipf-ish host popularity: host h has weight 1/(h+1); sample via the
    // inverse-CDF of the harmonic distribution approximated by pow.
    let sample_host = |rng: &mut StdRng| -> usize {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        // inverse of CDF for p(h) ∝ h^{-1} over [1, hosts]
        let h = ((hosts as f64).powf(u) - 1.0) as usize;
        h.min(hosts - 1)
    };

    // Samples one external landing page: a host of the same topic with
    // probability `host_affinity`, a Zipf-popular host otherwise; the
    // host's root page 30 % of the time, a deep link otherwise.
    let sample_target = |rng: &mut StdRng, h: usize| -> NodeId {
        let th = if rng.gen_bool(host_affinity) {
            let peers = &hosts_by_topic[topic_of[h] as usize];
            peers[rng.gen_range(0..peers.len())] as usize
        } else {
            sample_host(rng)
        };
        let th_start = host_starts[th];
        let th_end = if th + 1 < hosts {
            host_starts[th + 1]
        } else {
            n
        };
        if rng.gen_bool(0.3) {
            th_start
        } else {
            th_start + rng.gen_range(0..th_end - th_start)
        }
    };

    #[allow(clippy::needless_range_loop)] // h indexes three parallel host tables
    for h in 0..hosts {
        let start = host_starts[h];
        let end = host_end(h);
        let size = end - start;
        // The host's shared external menu: a fixed page set that (nearly)
        // every page of this host cites — the site template. Menus
        // concentrate in-degree on small co-cited page groups and give
        // their members a large common in-neighbourhood (all pages of all
        // citing hosts): the dominant sibling structure of real webs, and
        // exactly what Gorder's Ss score detects.
        let menu: Vec<NodeId> = (0..ext_links).map(|_| sample_target(&mut rng, h)).collect();
        for p in start..end {
            // Navigation: link to host root plus other pages of the same
            // host. Targets are random within the host: the block
            // structure gives the Original order its locality, but not a
            // perfect one.
            if p != start {
                b.add_edge(p, start);
                b.add_edge(start, p.min(end - 1)); // root indexes its pages
            }
            for _ in 0..nav_links {
                let q = start + rng.gen_range(0..size);
                if q != p {
                    b.add_edge(p, q);
                }
            }
            // External links: the host menu (with prob `copy_prob` per
            // entry — pages deviate from the template occasionally) plus
            // one personal fresh link.
            for &entry in &menu {
                let target = if rng.gen_bool(copy_prob) {
                    entry
                } else {
                    sample_target(&mut rng, h)
                };
                if target != p {
                    b.add_edge(p, target);
                }
            }
            let personal = sample_target(&mut rng, h);
            if personal != p {
                b.add_edge(p, personal);
            }
        }
    }
    let g = b.build();
    if fragmentation == 0.0 || n == 0 {
        return g;
    }
    // Crawl-order imperfection: relocate a random page subset to a
    // stragglers block at the end. The main block keeps its URL order;
    // the stragglers land in discovery order (shuffled) — pages missed by
    // the main crawl surface in an essentially arbitrary sequence.
    let mut main: Vec<NodeId> = Vec::with_capacity(n as usize);
    let mut stragglers: Vec<NodeId> = Vec::new();
    for p in 0..n {
        if rng.gen_bool(fragmentation) {
            stragglers.push(p);
        } else {
            main.push(p);
        }
    }
    use rand::seq::SliceRandom;
    stragglers.shuffle(&mut rng);
    main.extend(stragglers);
    let perm = crate::permutation::Permutation::from_placement(&main)
        .expect("fragmentation split covers every page once");
    g.relabel(&perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{degree_gini, GraphStats};

    fn cfg() -> WebGraphConfig {
        WebGraphConfig {
            n: 5000,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn sizes() {
        let g = web_graph(cfg());
        assert_eq!(g.n(), 5000);
        let m = g.m() as f64;
        // nav (4+2-ish) + ext (3) per page, minus dedup
        assert!(m > 5000.0 * 4.0 && m < 5000.0 * 10.0, "m = {m}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(web_graph(cfg()), web_graph(cfg()));
    }

    #[test]
    fn original_order_is_local_but_not_perfect() {
        // The URL order keeps intact hosts contiguous, so many more edges
        // are near-diagonal than under a random labelling — but external
        // menu links and the straggler block keep it far from perfect.
        let near = |g: &Graph| {
            g.edges()
                .filter(|&(u, v)| (i64::from(u) - i64::from(v)).abs() <= 64)
                .count() as f64
                / g.m() as f64
        };
        let g = web_graph(cfg());
        let shuffled = {
            use rand::SeedableRng;
            let p = crate::permutation::Permutation::random(
                g.n(),
                &mut rand::rngs::StdRng::seed_from_u64(5),
            );
            g.relabel(&p)
        };
        let (orig, rand_frac) = (near(&g), near(&shuffled));
        assert!(
            orig > 3.0 * rand_frac,
            "original locality {orig:.3} should dwarf random {rand_frac:.3}"
        );
        assert!(orig < 0.9, "original order must not be perfect: {orig:.3}");
    }

    #[test]
    fn skewed_in_degree() {
        let g = web_graph(cfg());
        let s = GraphStats::compute(&g);
        assert!(
            s.max_in_degree > 50,
            "host roots should be hubs: {}",
            s.max_in_degree
        );
        assert!(degree_gini(&g) > 0.2);
    }

    #[test]
    fn no_isolated_pages() {
        let g = web_graph(cfg());
        assert_eq!(GraphStats::compute(&g).isolated, 0);
    }

    #[test]
    fn single_page_hosts_ok() {
        let g = web_graph(WebGraphConfig {
            n: 50,
            mean_host_size: 1,
            seed: 3,
            ..Default::default()
        });
        assert_eq!(g.n(), 50);
    }
}
