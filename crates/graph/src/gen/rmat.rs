//! R-MAT (recursive matrix) generator — Chakrabarti, Zhan, Faloutsos 2004.
//!
//! Samples each edge by recursively descending into one of four quadrants
//! of the adjacency matrix with probabilities `(a, b, c, d)`. The classic
//! Graph500 parameters `(0.57, 0.19, 0.19, 0.05)` yield heavy-tailed degree
//! distributions and community-like block structure at every scale.

use crate::csr::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`rmat`].
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the node count (n = 2^scale).
    pub scale: u32,
    /// Number of edges to sample.
    pub edges: u64,
    /// Quadrant probabilities; must sum to ~1.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            scale: 10,
            edges: 8 << 10,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 0,
        }
    }
}

/// Generates an R-MAT graph. `d` is implied as `1 - a - b - c`.
pub fn rmat(cfg: RmatConfig) -> Graph {
    let RmatConfig {
        scale,
        edges,
        a,
        b,
        c,
        seed,
    } = cfg;
    let d = 1.0 - a - b - c;
    assert!(
        a >= 0.0 && b >= 0.0 && c >= 0.0 && d >= -1e-9,
        "quadrant probabilities must be non-negative"
    );
    assert!(scale <= 31, "scale must fit u32 node ids");
    let n: u32 = 1 << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, edges as usize);
    for _ in 0..edges {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // upper-left: no bits set
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        builder.add_edge(u, v);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_gini;

    #[test]
    fn sizes() {
        let g = rmat(RmatConfig {
            scale: 10,
            edges: 10_000,
            ..Default::default()
        });
        assert_eq!(g.n(), 1024);
        // skewed quadrants concentrate edges, so dedup removes a fair share
        assert!(
            g.m() > 6_000,
            "dedup should not remove most edges: m = {}",
            g.m()
        );
    }

    #[test]
    fn deterministic() {
        let cfg = RmatConfig {
            scale: 8,
            edges: 2000,
            seed: 3,
            ..Default::default()
        };
        assert_eq!(rmat(cfg), rmat(cfg));
    }

    #[test]
    fn skewed() {
        let g = rmat(RmatConfig {
            scale: 12,
            edges: 40_000,
            ..Default::default()
        });
        assert!(
            degree_gini(&g) > 0.4,
            "R-MAT must be heavy-tailed, gini = {}",
            degree_gini(&g)
        );
    }

    #[test]
    fn uniform_quadrants_behave_like_er() {
        let g = rmat(RmatConfig {
            scale: 11,
            edges: 20_000,
            a: 0.25,
            b: 0.25,
            c: 0.25,
            seed: 5,
        });
        assert!(
            degree_gini(&g) < 0.35,
            "uniform R-MAT is ER-like, gini = {}",
            degree_gini(&g)
        );
    }
}
