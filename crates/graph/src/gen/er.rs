//! Erdős–Rényi style `G(n, m)` directed graphs.

use crate::csr::{Graph, GraphBuilder};
use crate::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples a directed graph with `n` nodes and (up to) `m` uniform random
/// edges. Self-loops and duplicates are dropped by the builder, so the
/// realised edge count can fall slightly below `m` (negligible for sparse
/// graphs, `m ≪ n²`).
///
/// Used as the *unstructured* control: a graph this class has no locality
/// for any ordering to exploit, so reordering gains should be small.
pub fn erdos_renyi(n: u32, m: u64, seed: u64) -> Graph {
    assert!(n > 0 || m == 0, "cannot place edges in an empty graph");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, m as usize);
    for _ in 0..m {
        let u: NodeId = rng.gen_range(0..n);
        let v: NodeId = rng.gen_range(0..n);
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_gini;

    #[test]
    fn node_and_edge_counts() {
        let g = erdos_renyi(1000, 5000, 1);
        assert_eq!(g.n(), 1000);
        // duplicates/self-loops remove only a tiny fraction at this density
        assert!(g.m() > 4900 && g.m() <= 5000, "m = {}", g.m());
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(100, 400, 7), erdos_renyi(100, 400, 7));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(erdos_renyi(100, 400, 7), erdos_renyi(100, 400, 8));
    }

    #[test]
    fn degree_distribution_not_skewed() {
        let g = erdos_renyi(2000, 20000, 3);
        assert!(degree_gini(&g) < 0.25, "ER should have low degree skew");
    }

    #[test]
    fn zero_edges() {
        let g = erdos_renyi(10, 0, 1);
        assert_eq!(g.m(), 0);
    }
}
