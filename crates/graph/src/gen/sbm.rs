//! Stochastic block model — planted community structure.
//!
//! Nodes are split into equal-size blocks; directed edges appear with
//! probability `p_in` inside a block and `p_out` across blocks. Uses
//! geometric skipping so generation is O(m), not O(n²) — mandatory at the
//! sparse densities the paper's graphs live at.

use crate::csr::{Graph, GraphBuilder};
use crate::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a directed SBM graph with `blocks` equal blocks.
///
/// Node ids are assigned block-contiguously (block 0 gets `0..n/blocks`,
/// etc.), so the *original* ordering of an SBM graph is already
/// community-local — a stand-in for datasets collected community-by-
/// community.
pub fn stochastic_block_model(n: u32, blocks: u32, p_in: f64, p_out: f64, seed: u64) -> Graph {
    assert!(blocks > 0 && blocks <= n.max(1), "need 1..=n blocks");
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let block_of = |u: NodeId| u / n.div_ceil(blocks);
    // Geometric skipping over the flattened n*n adjacency matrix, switching
    // the skip distribution when crossing between in-block and out-of-block
    // cells would be complex; instead skip per-row within each regime:
    // for each source u, sample its in-block targets and out-block targets
    // independently with geometric jumps.
    for u in 0..n {
        let bu = block_of(u);
        let row_start = (u / n.div_ceil(blocks)) * n.div_ceil(blocks);
        let row_end = ((bu + 1) * n.div_ceil(blocks)).min(n);
        sample_range(&mut rng, u, row_start, row_end, p_in, &mut b);
        sample_range(&mut rng, u, 0, row_start, p_out, &mut b);
        sample_range(&mut rng, u, row_end, n, p_out, &mut b);
    }
    b.build()
}

/// Adds edges `u -> v` for `v` in `[lo, hi)` each with probability `p`,
/// via geometric skipping.
fn sample_range(rng: &mut StdRng, u: NodeId, lo: NodeId, hi: NodeId, p: f64, b: &mut GraphBuilder) {
    if p <= 0.0 || lo >= hi {
        return;
    }
    if p >= 1.0 {
        for v in lo..hi {
            b.add_edge(u, v);
        }
        return;
    }
    let log1mp = (1.0 - p).ln();
    let mut v = lo as u64;
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log1mp).floor() as u64;
        v += skip;
        if v >= hi as u64 {
            break;
        }
        b.add_edge(u, v as NodeId);
        v += 1;
        if v >= hi as u64 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_density() {
        let n = 2000u32;
        let g = stochastic_block_model(n, 10, 0.05, 0.001, 1);
        let block = n / 10;
        let expected_in = f64::from(n) * (f64::from(block) - 1.0) * 0.05;
        let expected_out = f64::from(n) * f64::from(n - block) * 0.001;
        let expected = expected_in + expected_out;
        let m = g.m() as f64;
        assert!(
            (m - expected).abs() < expected * 0.1,
            "m = {m}, expected ≈ {expected}"
        );
    }

    #[test]
    fn block_locality() {
        let n = 1000u32;
        let g = stochastic_block_model(n, 10, 0.08, 0.0005, 2);
        let block = n / 10;
        let within = g.edges().filter(|&(u, v)| u / block == v / block).count();
        let total = g.m() as usize;
        assert!(
            within * 2 > total,
            "majority of edges should be within blocks: {within}/{total}"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            stochastic_block_model(500, 5, 0.05, 0.002, 9),
            stochastic_block_model(500, 5, 0.05, 0.002, 9)
        );
    }

    #[test]
    fn p_zero_gives_empty() {
        let g = stochastic_block_model(100, 4, 0.0, 0.0, 1);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn p_one_in_block_gives_clique_blocks() {
        let g = stochastic_block_model(20, 4, 1.0, 0.0, 1);
        // each block of 5 is a directed clique minus self-loops
        assert_eq!(g.m(), 4 * 5 * 4);
    }
}
