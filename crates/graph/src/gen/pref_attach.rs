//! Directed preferential attachment — the "social network" generator.
//!
//! Nodes arrive one at a time; each new node issues `out_degree` edges whose
//! targets are chosen preferentially by current in-degree (plus smoothing),
//! and each such edge is reciprocated with probability `reciprocity`
//! (friendship links in social platforms are often mutual — the paper's
//! social datasets have high reciprocity).
//!
//! Arrival order *is* the node id, which mimics how crawled social datasets
//! are numbered (users discovered early get small ids), so the "Original"
//! ordering of these graphs already carries some locality — matching the
//! paper's observation that original orders beat random.

use crate::csr::{Graph, GraphBuilder};
use crate::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`preferential_attachment`].
#[derive(Debug, Clone, Copy)]
pub struct PrefAttachConfig {
    /// Number of nodes.
    pub n: u32,
    /// Out-edges issued by each arriving node.
    pub out_degree: u32,
    /// Probability that a link is reciprocated.
    pub reciprocity: f64,
    /// Extra uniform-attachment smoothing: with this probability a target
    /// is picked uniformly instead of preferentially. Higher values reduce
    /// hub dominance.
    pub uniform_mix: f64,
    /// Triadic closure: with this probability an edge goes to a random
    /// out-neighbour of an already-chosen target ("friend of a friend")
    /// instead of a fresh preferential draw. Real social networks have
    /// strong closure; it creates the triangles, communities and common
    /// in-neighbours (sibling structure) that graph orderings exploit.
    pub closure_prob: f64,
    /// Recency bias: with this probability a preferential draw is taken
    /// from the recent end of the attachment pool (the last ~10 %). Crawled
    /// social datasets are strongly temporally local — users befriend
    /// cohorts who joined around the same time — which is the locality the
    /// arrival-order ("Original") labelling carries.
    pub recency_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PrefAttachConfig {
    fn default() -> Self {
        PrefAttachConfig {
            n: 1000,
            out_degree: 10,
            reciprocity: 0.3,
            uniform_mix: 0.15,
            closure_prob: 0.4,
            recency_bias: 0.4,
            seed: 0,
        }
    }
}

/// Generates a directed scale-free graph via preferential attachment.
///
/// Uses the classic repeated-endpoint trick: a target pool holds one entry
/// per unit of in-degree (plus one baseline entry per node), so uniform
/// sampling from the pool is preferential sampling over nodes.
pub fn preferential_attachment(cfg: PrefAttachConfig) -> Graph {
    let PrefAttachConfig {
        n,
        out_degree,
        reciprocity,
        uniform_mix,
        closure_prob,
        recency_bias,
        seed,
    } = cfg;
    assert!(
        (0.0..=1.0).contains(&reciprocity),
        "reciprocity must be a probability"
    );
    assert!(
        (0.0..=1.0).contains(&uniform_mix),
        "uniform_mix must be a probability"
    );
    assert!(
        (0.0..=1.0).contains(&closure_prob),
        "closure_prob must be a probability"
    );
    assert!(
        (0.0..=1.0).contains(&recency_bias),
        "recency_bias must be a probability"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let est_edges = (n as usize) * (out_degree as usize);
    let mut b = GraphBuilder::with_capacity(n, est_edges * 2);
    // Pool of candidate targets, weighted by in-degree + 1.
    let mut pool: Vec<NodeId> = Vec::with_capacity(est_edges + n as usize);
    // Out-adjacency snapshot for triadic-closure draws.
    let mut adj: Vec<Vec<NodeId>> = Vec::with_capacity(n as usize);
    let seed_nodes = out_degree.max(2).min(n);
    for s in 0..seed_nodes {
        pool.push(s);
    }
    // Seed nodes form a small directed cycle so the pool is never empty of
    // linked structure.
    for s in 0..seed_nodes {
        let t = (s + 1) % seed_nodes;
        b.add_edge(s, t);
        pool.push(t);
        adj.push(vec![t]);
    }
    for u in seed_nodes..n {
        let mut my_targets: Vec<NodeId> = Vec::with_capacity(out_degree as usize);
        for _ in 0..out_degree {
            let v = if !my_targets.is_empty() && rng.gen_bool(closure_prob) {
                // friend of a friend: a random out-neighbour of a node we
                // already linked to
                let t = my_targets[rng.gen_range(0..my_targets.len())];
                let friends = &adj[t as usize];
                if friends.is_empty() {
                    pool[rng.gen_range(0..pool.len())]
                } else {
                    friends[rng.gen_range(0..friends.len())]
                }
            } else if rng.gen_bool(uniform_mix) {
                rng.gen_range(0..u)
            } else if rng.gen_bool(recency_bias) {
                // preferential among the recently active cohort
                let lo = pool.len() - (pool.len() / 10).max(1);
                pool[rng.gen_range(lo..pool.len())]
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if v == u {
                continue;
            }
            b.add_edge(u, v);
            pool.push(v);
            my_targets.push(v);
            if rng.gen_bool(reciprocity) {
                b.add_edge(v, u);
                pool.push(u);
                adj[v as usize].push(u);
            }
        }
        adj.push(my_targets);
        pool.push(u); // baseline weight so new nodes are reachable as targets
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{degree_gini, GraphStats};

    fn small() -> PrefAttachConfig {
        PrefAttachConfig {
            n: 2000,
            out_degree: 8,
            reciprocity: 0.3,
            uniform_mix: 0.15,
            closure_prob: 0.3,
            recency_bias: 0.3,
            seed: 42,
        }
    }

    #[test]
    fn size_roughly_matches() {
        let g = preferential_attachment(small());
        assert_eq!(g.n(), 2000);
        let expected = 2000.0 * 8.0 * 1.3; // reciprocation inflates ~30%
        let m = g.m() as f64;
        assert!(m > expected * 0.7 && m < expected * 1.2, "m = {m}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            preferential_attachment(small()),
            preferential_attachment(small())
        );
    }

    #[test]
    fn skewed_degrees() {
        let g = preferential_attachment(small());
        assert!(
            degree_gini(&g) > 0.3,
            "PA graphs must be hub-dominated: gini = {}",
            degree_gini(&g)
        );
        let s = GraphStats::compute(&g);
        assert!(s.max_in_degree > 10 * s.mean_degree as u32);
    }

    #[test]
    fn reciprocity_reflected_in_graph() {
        let hi = preferential_attachment(PrefAttachConfig {
            reciprocity: 0.8,
            ..small()
        });
        let lo = preferential_attachment(PrefAttachConfig {
            reciprocity: 0.0,
            ..small()
        });
        let rh = GraphStats::compute(&hi).reciprocity;
        let rl = GraphStats::compute(&lo).reciprocity;
        assert!(rh > 0.5, "high-reciprocity graph: {rh}");
        assert!(rl < 0.1, "zero-reciprocity graph: {rl}");
    }

    #[test]
    fn connected_ish() {
        // Every non-seed node has out-edges, so no isolated nodes.
        let g = preferential_attachment(small());
        assert_eq!(GraphStats::compute(&g).isolated, 0);
    }

    #[test]
    fn tiny_n() {
        let g = preferential_attachment(PrefAttachConfig {
            n: 3,
            out_degree: 2,
            ..small()
        });
        assert_eq!(g.n(), 3);
        assert!(g.m() > 0);
    }
}
