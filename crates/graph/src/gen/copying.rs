//! The copying model (Kleinberg et al.) — prototype-copying link formation.
//!
//! Each arriving node picks an existing *prototype* node and, for each
//! out-edge slot, copies one of the prototype's out-targets with
//! probability `copy_prob`, otherwise links to a uniformly random existing
//! node. Copying creates groups of pages with nearly identical out-lists —
//! i.e. **many pairs of nodes with common in-neighbours**, which is exactly
//! the sibling structure (`Ss`) that Gorder's score function rewards. Web
//! graphs are the canonical real-world instance of this structure.

use crate::csr::{Graph, GraphBuilder};
use crate::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a directed graph under the copying model.
///
/// * `n` — node count
/// * `out_degree` — out-edges per arriving node
/// * `copy_prob` — probability of copying a prototype target vs. uniform
/// * `seed` — RNG seed
pub fn copying_model(n: u32, out_degree: u32, copy_prob: f64, seed: u64) -> Graph {
    assert!(
        (0.0..=1.0).contains(&copy_prob),
        "copy_prob must be a probability"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let d = out_degree as usize;
    let mut b = GraphBuilder::with_capacity(n, n as usize * d);
    // adjacency snapshot kept incrementally so prototypes can be copied
    let mut adj: Vec<Vec<NodeId>> = Vec::with_capacity(n as usize);
    let seed_nodes = out_degree.max(2).min(n);
    for s in 0..seed_nodes {
        let t = (s + 1) % seed_nodes;
        b.add_edge(s, t);
        adj.push(vec![t]);
    }
    for u in seed_nodes..n {
        let proto = rng.gen_range(0..u);
        let mut targets: Vec<NodeId> = Vec::with_capacity(d);
        for _ in 0..d {
            let proto_list = &adj[proto as usize];
            let v = if !proto_list.is_empty() && rng.gen_bool(copy_prob) {
                proto_list[rng.gen_range(0..proto_list.len())]
            } else {
                rng.gen_range(0..u)
            };
            if v != u {
                b.add_edge(u, v);
                targets.push(v);
            }
        }
        adj.push(targets);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_gini;

    #[test]
    fn sizes() {
        let g = copying_model(3000, 10, 0.7, 5);
        assert_eq!(g.n(), 3000);
        let m = g.m() as f64;
        // duplicates within a node's copied list get collapsed
        assert!(m > 3000.0 * 10.0 * 0.6 && m <= 3000.0 * 10.0, "m = {m}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(copying_model(500, 6, 0.6, 9), copying_model(500, 6, 0.6, 9));
    }

    #[test]
    fn copying_creates_siblings() {
        // Count node pairs sharing an in-neighbour, copying vs uniform.
        let sib = |g: &Graph| -> u64 {
            let mut s = 0;
            for u in g.nodes() {
                let d = g.out_degree(u) as u64;
                s += d * d.saturating_sub(1) / 2;
            }
            s
        };
        let copied = copying_model(2000, 8, 0.8, 1);
        let uniform = copying_model(2000, 8, 0.0, 1);
        // Same sibling-pair count per source, but copying concentrates
        // in-degree: hubs appear, so Gini is higher.
        let _ = sib(&copied);
        assert!(
            degree_gini(&copied) > degree_gini(&uniform) + 0.1,
            "copying should concentrate in-degree: {} vs {}",
            degree_gini(&copied),
            degree_gini(&uniform)
        );
    }

    #[test]
    fn no_self_loops() {
        let g = copying_model(800, 5, 0.5, 3);
        for u in g.nodes() {
            assert!(!g.has_edge(u, u));
        }
    }
}
