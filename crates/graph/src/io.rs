//! Graph serialisation: plain-text edge lists and a compact binary format.
//!
//! The paper's datasets ship as directed edge lists (`u v` per line, `#`
//! comments), the format read here by [`read_edge_list`]. The binary format
//! ([`write_binary`] / [`read_binary`]) stores the out-CSR directly so large
//! graphs reload without re-sorting; the in-CSR is rebuilt on load.

use crate::csr::{Graph, GraphBuilder};
use crate::NodeId;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from reading or writing graph files.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line of an edge list could not be parsed.
    Parse { line: usize, content: String },
    /// Binary file did not start with the expected magic bytes/version.
    BadMagic,
    /// Binary file was internally inconsistent (truncated, bad offsets…).
    Corrupt(&'static str),
}

impl From<io::Error> for GraphIoError {
    fn from(e: io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "i/o error: {e}"),
            GraphIoError::Parse { line, content } => {
                write!(f, "cannot parse edge on line {line}: {content:?}")
            }
            GraphIoError::BadMagic => write!(f, "not a gorder binary graph file"),
            GraphIoError::Corrupt(what) => write!(f, "corrupt binary graph file: {what}"),
        }
    }
}

impl std::error::Error for GraphIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

const MAGIC: &[u8; 8] = b"GORDERG1";

/// Reads a directed edge list: one `u v` pair per line, whitespace
/// separated; blank lines and lines starting with `#` or `%` are skipped.
/// Node count is `max id + 1`.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, GraphIoError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_id: u32 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<u32> { tok.and_then(|t| t.parse().ok()) };
        match (parse(it.next()), parse(it.next())) {
            (Some(u), Some(v)) => {
                max_id = max_id.max(u).max(v);
                edges.push((u, v));
            }
            _ => {
                return Err(GraphIoError::Parse {
                    line: idx + 1,
                    content: trimmed.to_string(),
                })
            }
        }
    }
    let n = if edges.is_empty() { 0 } else { max_id + 1 };
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Reads an edge list from a file path.
pub fn read_edge_list_path<P: AsRef<Path>>(path: P) -> Result<Graph, GraphIoError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes the graph as a `u v` edge list with a header comment.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), GraphIoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# directed graph: {} nodes, {} edges", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes an edge list to a file path.
pub fn write_edge_list_path<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphIoError> {
    write_edge_list(g, std::fs::File::create(path)?)
}

fn put_u64(w: &mut impl Write, x: u64) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn get_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes the compact binary format (magic, n, m, out-offsets, out-targets;
/// little endian).
pub fn write_binary<W: Write>(g: &Graph, writer: W) -> Result<(), GraphIoError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    put_u64(&mut w, u64::from(g.n()))?;
    put_u64(&mut w, g.m())?;
    let (offsets, targets) = g.out_csr();
    for &o in offsets {
        put_u64(&mut w, o)?;
    }
    for &t in targets {
        w.write_all(&t.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads the compact binary format written by [`write_binary`].
pub fn read_binary<R: Read>(reader: R) -> Result<Graph, GraphIoError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphIoError::BadMagic);
    }
    let n = get_u64(&mut r)?;
    let m = get_u64(&mut r)?;
    if n > u64::from(u32::MAX) {
        return Err(GraphIoError::Corrupt("node count exceeds u32"));
    }
    let n32 = n as u32;
    let mut offsets = Vec::with_capacity(n as usize + 1);
    for _ in 0..=n {
        offsets.push(get_u64(&mut r)?);
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&m) {
        return Err(GraphIoError::Corrupt("offset array endpoints"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(GraphIoError::Corrupt("offsets not monotone"));
    }
    let mut b = GraphBuilder::with_capacity(n32, m as usize);
    for u in 0..n32 {
        let lo = offsets[u as usize];
        let hi = offsets[u as usize + 1];
        for _ in lo..hi {
            let mut tb = [0u8; 4];
            r.read_exact(&mut tb)?;
            let v = u32::from_le_bytes(tb);
            if v >= n32 {
                return Err(GraphIoError::Corrupt("target id out of range"));
            }
            b.add_edge(u, v);
        }
    }
    Ok(b.build())
}

/// Writes the binary format to a file path.
pub fn write_binary_path<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphIoError> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Reads the binary format from a file path.
pub fn read_binary_path<P: AsRef<Path>>(path: P) -> Result<Graph, GraphIoError> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 3)])
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn edge_list_skips_comments_and_blanks() {
        let text = "# comment\n% other comment\n\n0 1\n 1 2 \n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edge_list_reports_parse_error_line() {
        let text = "0 1\nnot an edge\n";
        match read_edge_list(text.as_bytes()) {
            Err(GraphIoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn edge_list_tolerates_extra_columns() {
        // some SNAP files carry weights/timestamps in a third column
        let g = read_edge_list("0 1 17\n1 2 99\n".as_bytes()).unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let h = read_binary(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTAGRPH________".to_vec();
        assert!(matches!(read_binary(&buf[..]), Err(GraphIoError::BadMagic)));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_roundtrip_empty() {
        let g = Graph::empty(3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), g);
    }
}
