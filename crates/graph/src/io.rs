//! Graph serialisation: plain-text edge lists and a compact binary format.
//!
//! The paper's datasets ship as directed edge lists (`u v` per line, `#`
//! comments), the format read here by [`read_edge_list`]. The binary format
//! ([`write_binary`] / [`read_binary`]) stores the out-CSR directly so large
//! graphs reload without re-sorting; the in-CSR is rebuilt on load.

use crate::csr::{Graph, GraphBuilder};
use crate::NodeId;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from reading or writing graph files.
#[derive(Debug)]
pub enum GraphIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line of an edge list could not be parsed.
    Parse { line: usize, content: String },
    /// A node id on `line` exceeds what this build can represent (`u32`
    /// node ids, so `max id + 1` must fit in `u32`) or what the file's own
    /// header permits.
    IdOutOfRange { line: usize, value: u64, max: u64 },
    /// A count declared in the file's header disagrees with the body
    /// (e.g. a Matrix Market size line promising more entries than exist).
    HeaderMismatch {
        what: &'static str,
        declared: u64,
        found: u64,
    },
    /// Binary file did not start with the expected magic bytes/version.
    BadMagic,
    /// Binary file was internally inconsistent (truncated, bad offsets…).
    Corrupt(&'static str),
}

impl From<io::Error> for GraphIoError {
    fn from(e: io::Error) -> Self {
        GraphIoError::Io(e)
    }
}

impl std::fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "i/o error: {e}"),
            GraphIoError::Parse { line, content } => {
                write!(f, "cannot parse edge on line {line}: {content:?}")
            }
            GraphIoError::IdOutOfRange { line, value, max } => {
                write!(f, "node id {value} on line {line} out of range (max {max})")
            }
            GraphIoError::HeaderMismatch {
                what,
                declared,
                found,
            } => {
                write!(
                    f,
                    "header mismatch: {what} declared as {declared} but found {found}"
                )
            }
            GraphIoError::BadMagic => write!(f, "not a gorder binary graph file"),
            GraphIoError::Corrupt(what) => write!(f, "corrupt binary graph file: {what}"),
        }
    }
}

impl std::error::Error for GraphIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

const MAGIC: &[u8; 8] = b"GORDERG1";

/// Upper bound on speculative preallocation driven by untrusted file
/// headers: never reserve more than this many entries up front. Vectors
/// still grow to the real size as data actually arrives, so a corrupt
/// header claiming billions of entries cannot trigger a huge allocation.
pub(crate) const PREALLOC_CAP: usize = 1 << 20;

/// Largest node id an edge list may carry: node count is `max id + 1` and
/// must itself fit in `u32`.
const MAX_EDGE_LIST_ID: u64 = u32::MAX as u64 - 1;

/// Reads a directed edge list: one `u v` pair per line, whitespace
/// separated; blank lines and lines starting with `#` or `%` are skipped.
/// Node count is `max id + 1`.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, GraphIoError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_id: u32 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        // Parse into u64 first so oversized ids are distinguished from
        // unparseable garbage and reported with their line number.
        let parse = |tok: Option<&str>| -> Option<u64> { tok.and_then(|t| t.parse().ok()) };
        match (parse(it.next()), parse(it.next())) {
            (Some(u), Some(v)) => {
                let big = u.max(v);
                if big > MAX_EDGE_LIST_ID {
                    return Err(GraphIoError::IdOutOfRange {
                        line: idx + 1,
                        value: big,
                        max: MAX_EDGE_LIST_ID,
                    });
                }
                let (u, v) = (u as u32, v as u32);
                max_id = max_id.max(u).max(v);
                edges.push((u, v));
            }
            _ => {
                return Err(GraphIoError::Parse {
                    line: idx + 1,
                    content: trimmed.to_string(),
                })
            }
        }
    }
    let n = if edges.is_empty() { 0 } else { max_id + 1 };
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Reads an edge list from a file path.
pub fn read_edge_list_path<P: AsRef<Path>>(path: P) -> Result<Graph, GraphIoError> {
    if let Some(e) = gorder_obs::faults::io_read_error("graph.io_read") {
        return Err(e.into());
    }
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes the graph as a `u v` edge list with a header comment.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), GraphIoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# directed graph: {} nodes, {} edges", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes an edge list to a file path.
pub fn write_edge_list_path<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphIoError> {
    write_edge_list(g, std::fs::File::create(path)?)
}

fn put_u64(w: &mut impl Write, x: u64) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn get_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes the compact binary format (magic, n, m, out-offsets, out-targets;
/// little endian).
pub fn write_binary<W: Write>(g: &Graph, writer: W) -> Result<(), GraphIoError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    put_u64(&mut w, u64::from(g.n()))?;
    put_u64(&mut w, g.m())?;
    let (offsets, targets) = g.out_csr();
    for &o in offsets {
        put_u64(&mut w, o)?;
    }
    for &t in targets {
        w.write_all(&t.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads the compact binary format written by [`write_binary`].
pub fn read_binary<R: Read>(reader: R) -> Result<Graph, GraphIoError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphIoError::BadMagic);
    }
    let n = get_u64(&mut r)?;
    let m = get_u64(&mut r)?;
    if n > u64::from(u32::MAX) {
        return Err(GraphIoError::Corrupt("node count exceeds u32"));
    }
    let n32 = n as u32;
    // Both counts come from an untrusted header: cap the speculative
    // reservations and let the vectors grow as real data arrives.
    let offsets_cap = usize::try_from(n)
        .unwrap_or(usize::MAX)
        .saturating_add(1)
        .min(PREALLOC_CAP);
    let mut offsets = Vec::with_capacity(offsets_cap);
    for _ in 0..=n {
        offsets.push(get_u64(&mut r)?);
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&m) {
        return Err(GraphIoError::Corrupt("offset array endpoints"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(GraphIoError::Corrupt("offsets not monotone"));
    }
    let edges_cap = usize::try_from(m).unwrap_or(usize::MAX).min(PREALLOC_CAP);
    let mut b = GraphBuilder::with_capacity(n32, edges_cap);
    for u in 0..n32 {
        let lo = offsets[u as usize];
        let hi = offsets[u as usize + 1];
        // Monotonicity was verified above, so this never underflows; keep
        // it checked anyway — these values came off disk.
        let deg = hi
            .checked_sub(lo)
            .ok_or(GraphIoError::Corrupt("offsets not monotone"))?;
        for _ in 0..deg {
            let mut tb = [0u8; 4];
            r.read_exact(&mut tb)?;
            let v = u32::from_le_bytes(tb);
            if v >= n32 {
                return Err(GraphIoError::Corrupt("target id out of range"));
            }
            b.add_edge(u, v);
        }
    }
    Ok(b.build())
}

/// Writes the binary format to a file path.
pub fn write_binary_path<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphIoError> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Reads the binary format from a file path.
pub fn read_binary_path<P: AsRef<Path>>(path: P) -> Result<Graph, GraphIoError> {
    if let Some(e) = gorder_obs::faults::io_read_error("graph.io_read") {
        return Err(e.into());
    }
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 3)])
    }

    #[test]
    fn injected_io_fault_surfaces_as_io_error() {
        // Own site counter; no other graph test arms faults, so no lock.
        gorder_obs::faults::arm_from_spec("graph.io_read=1+").unwrap();
        let path = std::env::temp_dir().join(format!("gorder-io-fault-{}.el", std::process::id()));
        std::fs::write(&path, "0 1\n1 2\n").unwrap();
        let err = read_edge_list_path(&path).expect_err("armed fault must fire");
        gorder_obs::faults::disarm();
        match err {
            GraphIoError::Io(e) => assert!(e.to_string().contains("injected"), "{e}"),
            other => panic!("expected Io, got {other:?}"),
        }
        // Disarmed, the same read succeeds.
        assert!(read_edge_list_path(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn edge_list_skips_comments_and_blanks() {
        let text = "# comment\n% other comment\n\n0 1\n 1 2 \n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn edge_list_reports_parse_error_line() {
        let text = "0 1\nnot an edge\n";
        match read_edge_list(text.as_bytes()) {
            Err(GraphIoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn edge_list_rejects_oversized_ids_with_line() {
        // u32::MAX itself is unusable: node count would be max id + 1.
        for (text, bad_line, bad_value) in [
            ("0 1\n7 4294967295\n", 2, u64::from(u32::MAX)),
            ("99999999999 3\n", 1, 99_999_999_999),
        ] {
            match read_edge_list(text.as_bytes()) {
                Err(GraphIoError::IdOutOfRange { line, value, max }) => {
                    assert_eq!(line, bad_line);
                    assert_eq!(value, bad_value);
                    assert_eq!(max, u64::from(u32::MAX) - 1);
                }
                other => panic!("expected IdOutOfRange, got {other:?}"),
            }
        }
    }

    #[test]
    fn edge_list_rejects_negative_ids() {
        assert!(matches!(
            read_edge_list("0 -1\n".as_bytes()),
            Err(GraphIoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn edge_list_tolerates_extra_columns() {
        // some SNAP files carry weights/timestamps in a third column
        let g = read_edge_list("0 1 17\n1 2 99\n".as_bytes()).unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let h = read_binary(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTAGRPH________".to_vec();
        assert!(matches!(read_binary(&buf[..]), Err(GraphIoError::BadMagic)));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_oversized_node_count() {
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&(u64::from(u32::MAX) + 1).to_le_bytes()); // n
        buf.extend_from_slice(&0u64.to_le_bytes()); // m
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphIoError::Corrupt("node count exceeds u32"))
        ));
    }

    #[test]
    fn binary_rejects_nonmonotone_offsets() {
        // n = 2, m = 1, offsets [0, 5, 1]: last != m and not monotone
        let mut buf = MAGIC.to_vec();
        for x in [2u64, 1, 0, 5, 1] {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphIoError::Corrupt(_))
        ));
    }

    #[test]
    fn binary_huge_header_counts_fail_without_allocating() {
        // Header claims ~4 billion nodes and u64::MAX edges but carries no
        // data: the capped preallocation means this errors on EOF instead
        // of attempting a giant reservation.
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&u64::from(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(read_binary(&buf[..]), Err(GraphIoError::Io(_))));
    }

    #[test]
    fn binary_roundtrip_empty() {
        let g = Graph::empty(3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), g);
    }
}
