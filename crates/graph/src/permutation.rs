//! Validated node permutations.
//!
//! Every ordering method in this reproduction produces a [`Permutation`]:
//! a bijection from *old* node ids to *new* node ids. The paper's notation
//! `π(u)` (written `πu`) is [`Permutation::apply`]`(u)`.
//!
//! Two constructions cover every ordering in the paper:
//!
//! * [`Permutation::try_new`] from an explicit `old → new` map, and
//! * [`Permutation::from_placement`] from a *placement sequence* — the list
//!   of old ids in the order they are laid out (`placement[i]` receives new
//!   id `i`). Greedy orderings (Gorder, RCM, ChDFS, SlashBurn, …) naturally
//!   emit placement sequences.

use crate::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// Errors from checked permutation construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermutationError {
    /// A target id was `>= n`.
    OutOfRange { index: usize, value: NodeId, n: u32 },
    /// Two source ids mapped to the same target id.
    Duplicate { value: NodeId },
}

impl std::fmt::Display for PermutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PermutationError::OutOfRange { index, value, n } => {
                write!(
                    f,
                    "permutation entry {index} has value {value}, out of range for n = {n}"
                )
            }
            PermutationError::Duplicate { value } => {
                write!(f, "permutation maps two nodes to the same target {value}")
            }
        }
    }
}

impl std::error::Error for PermutationError {}

/// A bijection `old id → new id` over `0..n`.
#[derive(Clone, PartialEq, Eq)]
pub struct Permutation {
    map: Box<[NodeId]>,
}

impl Permutation {
    /// Checked construction from an `old → new` map.
    pub fn try_new(map: Vec<NodeId>) -> Result<Self, PermutationError> {
        let n = map.len() as u32;
        let mut seen = vec![false; map.len()];
        for (index, &value) in map.iter().enumerate() {
            if value >= n {
                return Err(PermutationError::OutOfRange { index, value, n });
            }
            if std::mem::replace(&mut seen[value as usize], true) {
                return Err(PermutationError::Duplicate { value });
            }
        }
        Ok(Permutation {
            map: map.into_boxed_slice(),
        })
    }

    /// The identity permutation on `n` nodes (the paper's "Original" order).
    pub fn identity(n: u32) -> Self {
        Permutation {
            map: (0..n).collect(),
        }
    }

    /// A uniformly random permutation (the replication's "Random" order).
    pub fn random<R: Rng>(n: u32, rng: &mut R) -> Self {
        let mut map: Vec<NodeId> = (0..n).collect();
        map.shuffle(rng);
        Permutation {
            map: map.into_boxed_slice(),
        }
    }

    /// Builds the permutation that assigns new id `i` to node
    /// `placement[i]`.
    ///
    /// `placement` must contain every node id in `0..n` exactly once
    /// (checked).
    pub fn from_placement(placement: &[NodeId]) -> Result<Self, PermutationError> {
        let n = placement.len() as u32;
        let mut map = vec![NodeId::MAX; placement.len()];
        for (new_id, &old_id) in placement.iter().enumerate() {
            if old_id >= n {
                return Err(PermutationError::OutOfRange {
                    index: new_id,
                    value: old_id,
                    n,
                });
            }
            if map[old_id as usize] != NodeId::MAX {
                return Err(PermutationError::Duplicate { value: old_id });
            }
            map[old_id as usize] = new_id as NodeId;
        }
        Ok(Permutation {
            map: map.into_boxed_slice(),
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> u32 {
        self.map.len() as u32
    }

    /// True iff this permutes zero nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// New id of old node `u`.
    #[inline]
    pub fn apply(&self, u: NodeId) -> NodeId {
        self.map[u as usize]
    }

    /// The full `old → new` map as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[NodeId] {
        &self.map
    }

    /// The inverse permutation (`new id → old id`).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0 as NodeId; self.map.len()];
        for (old_id, &new_id) in self.map.iter().enumerate() {
            inv[new_id as usize] = old_id as NodeId;
        }
        Permutation {
            map: inv.into_boxed_slice(),
        }
    }

    /// Composition: `(self.then(other)).apply(u) == other.apply(self.apply(u))`.
    pub fn then(&self, other: &Permutation) -> Permutation {
        assert_eq!(
            self.len(),
            other.len(),
            "composing permutations of different sizes"
        );
        let map: Vec<NodeId> = self.map.iter().map(|&mid| other.apply(mid)).collect();
        Permutation {
            map: map.into_boxed_slice(),
        }
    }

    /// The placement sequence: `placement()[i]` is the old id that received
    /// new id `i`. Inverse view of [`Permutation::from_placement`].
    pub fn placement(&self) -> Vec<NodeId> {
        self.inverse().map.into_vec()
    }

    /// True iff this is the identity.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &v)| i as NodeId == v)
    }
}

impl std::fmt::Debug for Permutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.map.len() <= 16 {
            write!(f, "Permutation({:?})", &self.map)
        } else {
            write!(f, "Permutation(n = {})", self.map.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_applies() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        for u in 0..5 {
            assert_eq!(p.apply(u), u);
        }
    }

    #[test]
    fn try_new_accepts_valid() {
        let p = Permutation::try_new(vec![2, 0, 1]).unwrap();
        assert_eq!(p.apply(0), 2);
        assert_eq!(p.apply(1), 0);
        assert_eq!(p.apply(2), 1);
    }

    #[test]
    fn try_new_rejects_out_of_range() {
        let err = Permutation::try_new(vec![0, 3, 1]).unwrap_err();
        assert_eq!(
            err,
            PermutationError::OutOfRange {
                index: 1,
                value: 3,
                n: 3
            }
        );
    }

    #[test]
    fn try_new_rejects_duplicate() {
        let err = Permutation::try_new(vec![0, 1, 1]).unwrap_err();
        assert_eq!(err, PermutationError::Duplicate { value: 1 });
    }

    #[test]
    fn inverse_roundtrip() {
        let p = Permutation::try_new(vec![2, 0, 1, 4, 3]).unwrap();
        let inv = p.inverse();
        for u in 0..5 {
            assert_eq!(inv.apply(p.apply(u)), u);
            assert_eq!(p.apply(inv.apply(u)), u);
        }
    }

    #[test]
    fn composition_order() {
        let p = Permutation::try_new(vec![1, 2, 0]).unwrap();
        let q = Permutation::try_new(vec![0, 2, 1]).unwrap();
        let pq = p.then(&q);
        for u in 0..3 {
            assert_eq!(pq.apply(u), q.apply(p.apply(u)));
        }
    }

    #[test]
    fn compose_with_inverse_is_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Permutation::random(64, &mut rng);
        assert!(p.then(&p.inverse()).is_identity());
        assert!(p.inverse().then(&p).is_identity());
    }

    #[test]
    fn placement_roundtrip() {
        let placement = vec![3, 1, 0, 2];
        let p = Permutation::from_placement(&placement).unwrap();
        // node 3 is placed first, so it gets new id 0
        assert_eq!(p.apply(3), 0);
        assert_eq!(p.apply(1), 1);
        assert_eq!(p.apply(0), 2);
        assert_eq!(p.apply(2), 3);
        assert_eq!(p.placement(), placement);
    }

    #[test]
    fn from_placement_rejects_missing_node() {
        assert!(Permutation::from_placement(&[0, 0, 1]).is_err());
        assert!(Permutation::from_placement(&[0, 1, 3]).is_err());
    }

    #[test]
    fn random_is_valid_permutation() {
        let mut rng = StdRng::seed_from_u64(42);
        let p = Permutation::random(100, &mut rng);
        let mut seen = [false; 100];
        for u in 0..100 {
            let v = p.apply(u) as usize;
            assert!(!seen[v]);
            seen[v] = true;
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = Permutation::random(50, &mut StdRng::seed_from_u64(9));
        let b = Permutation::random(50, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert!(p.is_identity());
        assert_eq!(p.placement(), Vec::<NodeId>::new());
    }
}
