//! Matrix Market (`.mtx`) interchange — the other format graph datasets
//! commonly ship in (SuiteSparse, network repositories).
//!
//! Supported subset: `%%MatrixMarket matrix coordinate
//! {pattern|integer|real} general` with 1-based indices. Entry `(i, j)`
//! becomes the directed edge `i−1 → j−1`; any numeric value column is
//! ignored (this substrate is unweighted, like the paper's graphs).
//! `symmetric` matrices expand each off-diagonal entry to both
//! directions.

use crate::csr::{Graph, GraphBuilder};
use crate::io::{GraphIoError, PREALLOC_CAP};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reads a Matrix Market coordinate file as a directed graph.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Graph, GraphIoError> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    // header line
    let (_, header) = lines
        .next()
        .ok_or(GraphIoError::Corrupt("empty file"))?
        .1
        .map(|l| (0usize, l))
        .map_err(GraphIoError::Io)?;
    let header_lc = header.to_ascii_lowercase();
    if !header_lc.starts_with("%%matrixmarket matrix coordinate") {
        return Err(GraphIoError::BadMagic);
    }
    let symmetric = header_lc.contains("symmetric");
    if !symmetric && !header_lc.contains("general") {
        return Err(GraphIoError::Corrupt(
            "only general/symmetric matrices are supported",
        ));
    }

    let parse = |tok: Option<&str>| -> Option<u64> { tok.and_then(|t| t.parse::<u64>().ok()) };

    // size line: first non-comment line
    let (r, c, nnz, mut builder) = loop {
        let (idx, line) = match lines.next() {
            Some(x) => x,
            None => return Err(GraphIoError::Corrupt("missing size line")),
        };
        let line = line.map_err(GraphIoError::Io)?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let (r, c, nnz) = match (parse(it.next()), parse(it.next()), parse(it.next())) {
            (Some(r), Some(c), Some(nnz)) => (r, c, nnz),
            _ => {
                return Err(GraphIoError::Parse {
                    line: idx + 1,
                    content: trimmed.to_string(),
                })
            }
        };
        let n = r.max(c);
        if n > u64::from(u32::MAX) {
            return Err(GraphIoError::Corrupt("dimension exceeds u32"));
        }
        // The size line is untrusted input: cap the speculative edge
        // reservation so a corrupt nnz cannot force a giant allocation.
        let cap = usize::try_from(nnz)
            .unwrap_or(usize::MAX)
            .min(PREALLOC_CAP)
            .saturating_mul(if symmetric { 2 } else { 1 });
        break (r, c, nnz, GraphBuilder::with_capacity(n as u32, cap));
    };

    // entry lines
    let mut entries: u64 = 0;
    for (idx, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let (i, j) = match (parse(it.next()), parse(it.next())) {
            (Some(i), Some(j)) => (i, j),
            _ => {
                return Err(GraphIoError::Parse {
                    line: idx + 1,
                    content: trimmed.to_string(),
                })
            }
        };
        if i == 0 || j == 0 || i > r || j > c {
            // Indices are 1-based, so 0 is as out-of-range as r + 1.
            let value = if i == 0 || i > r { i } else { j };
            return Err(GraphIoError::IdOutOfRange {
                line: idx + 1,
                value,
                max: r.max(c),
            });
        }
        entries += 1;
        if entries > nnz {
            return Err(GraphIoError::HeaderMismatch {
                what: "entry count",
                declared: nnz,
                found: entries,
            });
        }
        let (u, v) = ((i - 1) as u32, (j - 1) as u32);
        builder.add_edge(u, v);
        if symmetric && u != v {
            builder.add_edge(v, u);
        }
    }
    if entries != nnz {
        return Err(GraphIoError::HeaderMismatch {
            what: "entry count",
            declared: nnz,
            found: entries,
        });
    }
    Ok(builder.build())
}

/// Reads a `.mtx` file from a path.
pub fn read_matrix_market_path<P: AsRef<Path>>(path: P) -> Result<Graph, GraphIoError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Writes the graph as `%%MatrixMarket matrix coordinate pattern general`.
pub fn write_matrix_market<W: Write>(g: &Graph, writer: W) -> Result<(), GraphIoError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(w, "% written by gorder-rs")?;
    writeln!(w, "{} {} {}", g.n(), g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(w, "{} {}", u + 1, v + 1)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a `.mtx` file to a path.
pub fn write_matrix_market_path<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphIoError> {
    write_matrix_market(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (3, 0), (2, 2)]);
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let h = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn one_based_indices() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n3 1\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn symmetric_expands() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(0, 1));
        // diagonal entry: self-loop dropped by the builder's default policy
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn values_ignored() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 3.5\n2 1 -1.0\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text =
            "%%MatrixMarket matrix coordinate pattern general\n% a comment\n\n2 2 1\n% more\n1 2\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn rejects_non_mm() {
        assert!(matches!(
            read_matrix_market("1 2\n".as_bytes()),
            Err(GraphIoError::BadMagic)
        ));
    }

    #[test]
    fn rejects_out_of_bounds_with_line() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        match read_matrix_market(text.as_bytes()) {
            Err(GraphIoError::IdOutOfRange { line, value, max }) => {
                assert_eq!(line, 3);
                assert_eq!(value, 3);
                assert_eq!(max, 2);
            }
            other => panic!("expected IdOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn rejects_zero_index() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 0\n";
        match read_matrix_market(text.as_bytes()) {
            Err(GraphIoError::IdOutOfRange { line, value, .. }) => {
                assert_eq!(line, 3);
                assert_eq!(value, 0);
            }
            other => panic!("expected IdOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn rejects_fewer_entries_than_declared() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n3 3 3\n1 2\n2 3\n";
        match read_matrix_market(text.as_bytes()) {
            Err(GraphIoError::HeaderMismatch {
                declared, found, ..
            }) => {
                assert_eq!(declared, 3);
                assert_eq!(found, 2);
            }
            other => panic!("expected HeaderMismatch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_more_entries_than_declared() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 2\n2 3\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(GraphIoError::HeaderMismatch { .. })
        ));
    }

    #[test]
    fn rejects_oversized_dimension() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n5000000000 1 0\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(GraphIoError::Corrupt("dimension exceeds u32"))
        ));
    }

    #[test]
    fn huge_declared_nnz_does_not_allocate() {
        // nnz = u64::MAX in the header: the capped preallocation means
        // this fails with a clean mismatch, not an OOM.
        let text = format!(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 {}\n1 2\n",
            u64::MAX
        );
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(GraphIoError::HeaderMismatch { .. })
        ));
    }

    #[test]
    fn rejects_truncated_header_only() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rectangular_uses_max_dimension() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 5 1\n1 5\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 5);
        assert!(g.has_edge(0, 4));
    }
}
