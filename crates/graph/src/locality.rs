//! Layout-locality diagnostics.
//!
//! Cheap, ordering-sensitive metrics used by the ablation benches and the
//! EXPERIMENTS notebook to quantify *why* one arrangement beats another
//! without running a full cache simulation:
//!
//! * [`mean_edge_span`] / [`median_edge_span`] — how far apart edge
//!   endpoints' ids are (MinLA's objective, averaged);
//! * [`line_locality`] — fraction of edges whose endpoints share a cache
//!   line of `line_elems` node-indexed attribute slots;
//! * [`window_hit_ratio`] — fraction of edges whose endpoints are within
//!   a window `w` (the unnormalised cousin of Gorder's `F`, counting
//!   neighbour pairs only).

use crate::csr::Graph;

/// Mean |u − v| over all directed edges. 0 on an edgeless graph.
pub fn mean_edge_span(g: &Graph) -> f64 {
    if g.m() == 0 {
        return 0.0;
    }
    let total: u64 = g.edges().map(|(u, v)| u64::from(u.abs_diff(v))).sum();
    total as f64 / g.m() as f64
}

/// Median |u − v| over all directed edges. 0 on an edgeless graph.
pub fn median_edge_span(g: &Graph) -> u32 {
    let mut spans: Vec<u32> = g.edges().map(|(u, v)| u.abs_diff(v)).collect();
    if spans.is_empty() {
        return 0;
    }
    let mid = spans.len() / 2;
    *spans.select_nth_unstable(mid).1
}

/// Fraction of edges whose endpoints fall on the same cache line, where a
/// line holds `line_elems` consecutive node-indexed elements (e.g. 16 for
/// `u32` attributes on 64-byte lines).
pub fn line_locality(g: &Graph, line_elems: u32) -> f64 {
    assert!(line_elems > 0, "a cache line holds at least one element");
    if g.m() == 0 {
        return 0.0;
    }
    let same = g
        .edges()
        .filter(|&(u, v)| u / line_elems == v / line_elems)
        .count();
    same as f64 / g.m() as f64
}

/// Fraction of edges with |u − v| ≤ w.
pub fn window_hit_ratio(g: &Graph, w: u32) -> f64 {
    if g.m() == 0 {
        return 0.0;
    }
    let close = g.edges().filter(|&(u, v)| u.abs_diff(v) <= w).count();
    close as f64 / g.m() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path() -> Graph {
        Graph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)])
    }

    #[test]
    fn spans_on_path() {
        let g = path();
        assert_eq!(mean_edge_span(&g), 1.0);
        assert_eq!(median_edge_span(&g), 1);
    }

    #[test]
    fn spans_on_long_jump() {
        let g = Graph::from_edges(10, &[(0, 9), (0, 1)]);
        assert_eq!(mean_edge_span(&g), 5.0);
        // two spans {1, 9} → upper median 9
        assert_eq!(median_edge_span(&g), 9);
    }

    #[test]
    fn line_locality_bounds() {
        let g = path();
        assert_eq!(line_locality(&g, 8), 1.0, "whole path fits one 8-slot line");
        let jump = Graph::from_edges(32, &[(0, 31)]);
        assert_eq!(line_locality(&jump, 8), 0.0);
    }

    #[test]
    fn window_ratio() {
        let g = Graph::from_edges(10, &[(0, 1), (0, 5), (0, 9)]);
        assert!((window_hit_ratio(&g, 1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((window_hit_ratio(&g, 5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(window_hit_ratio(&g, 9), 1.0);
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = Graph::empty(4);
        assert_eq!(mean_edge_span(&g), 0.0);
        assert_eq!(median_edge_span(&g), 0);
        assert_eq!(line_locality(&g, 16), 0.0);
        assert_eq!(window_hit_ratio(&g, 4), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_line_rejected() {
        line_locality(&path(), 0);
    }
}
