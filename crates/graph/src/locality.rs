//! Layout-locality diagnostics.
//!
//! Cheap, ordering-sensitive metrics used by the ablation benches and the
//! EXPERIMENTS notebook to quantify *why* one arrangement beats another
//! without running a full cache simulation:
//!
//! * [`mean_edge_span`] / [`median_edge_span`] — how far apart edge
//!   endpoints' ids are (MinLA's objective, averaged);
//! * [`line_locality`] — fraction of edges whose endpoints share a cache
//!   line of `line_elems` node-indexed attribute slots;
//! * [`window_hit_ratio`] — fraction of edges whose endpoints are within
//!   a window `w` (the unnormalised cousin of Gorder's `F`, counting
//!   neighbour pairs only);
//! * [`edge_span_histogram`] — the whole span distribution in fixed
//!   power-of-two buckets, for the observability trace.

use crate::csr::Graph;
use gorder_obs::Histogram;

/// Bucket upper bounds for [`edge_span_histogram`]: powers of two from 1
/// to 2²³ (plus the implicit overflow bucket). Fixed — not derived from
/// the graph — so histograms from different datasets, orderings, or
/// thread counts are always comparable bin-for-bin.
pub const EDGE_SPAN_BOUNDS: [f64; 24] = {
    let mut b = [0.0; 24];
    let mut i = 0;
    while i < 24 {
        b[i] = (1u64 << i) as f64;
        i += 1;
    }
    b
};

/// Mean |u − v| over all directed edges. 0 on an edgeless graph.
pub fn mean_edge_span(g: &Graph) -> f64 {
    if g.m() == 0 {
        return 0.0;
    }
    let total: u64 = g.edges().map(|(u, v)| u64::from(u.abs_diff(v))).sum();
    total as f64 / g.m() as f64
}

/// Median |u − v| over all directed edges. 0 on an edgeless graph.
pub fn median_edge_span(g: &Graph) -> u32 {
    let mut spans: Vec<u32> = g.edges().map(|(u, v)| u.abs_diff(v)).collect();
    if spans.is_empty() {
        return 0;
    }
    let mid = spans.len() / 2;
    *spans.select_nth_unstable(mid).1
}

/// Fraction of edges whose endpoints fall on the same cache line, where a
/// line holds `line_elems` consecutive node-indexed elements (e.g. 16 for
/// `u32` attributes on 64-byte lines).
pub fn line_locality(g: &Graph, line_elems: u32) -> f64 {
    assert!(line_elems > 0, "a cache line holds at least one element");
    if g.m() == 0 {
        return 0.0;
    }
    let same = g
        .edges()
        .filter(|&(u, v)| u / line_elems == v / line_elems)
        .count();
    same as f64 / g.m() as f64
}

/// Distribution of |u − v| over all directed edges, in the fixed
/// [`EDGE_SPAN_BOUNDS`] buckets. The shape (mass near the left edge vs a
/// long tail) is the locality picture a single mean/median hides, and
/// fixed bounds make it directly comparable across orderings.
pub fn edge_span_histogram(g: &Graph) -> Histogram {
    let mut h = Histogram::new(&EDGE_SPAN_BOUNDS);
    for (u, v) in g.edges() {
        h.observe(f64::from(u.abs_diff(v)));
    }
    h
}

/// Fraction of edges with |u − v| ≤ w.
pub fn window_hit_ratio(g: &Graph, w: u32) -> f64 {
    if g.m() == 0 {
        return 0.0;
    }
    let close = g.edges().filter(|&(u, v)| u.abs_diff(v) <= w).count();
    close as f64 / g.m() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path() -> Graph {
        Graph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)])
    }

    #[test]
    fn spans_on_path() {
        let g = path();
        assert_eq!(mean_edge_span(&g), 1.0);
        assert_eq!(median_edge_span(&g), 1);
    }

    #[test]
    fn spans_on_long_jump() {
        let g = Graph::from_edges(10, &[(0, 9), (0, 1)]);
        assert_eq!(mean_edge_span(&g), 5.0);
        // two spans {1, 9} → upper median 9
        assert_eq!(median_edge_span(&g), 9);
    }

    #[test]
    fn line_locality_bounds() {
        let g = path();
        assert_eq!(line_locality(&g, 8), 1.0, "whole path fits one 8-slot line");
        let jump = Graph::from_edges(32, &[(0, 31)]);
        assert_eq!(line_locality(&jump, 8), 0.0);
    }

    #[test]
    fn window_ratio() {
        let g = Graph::from_edges(10, &[(0, 1), (0, 5), (0, 9)]);
        assert!((window_hit_ratio(&g, 1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((window_hit_ratio(&g, 5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(window_hit_ratio(&g, 9), 1.0);
    }

    #[test]
    fn edge_span_histogram_buckets_spans() {
        // Spans on this graph: 1, 1, 9 → buckets ≤1 get two, ≤16 one.
        let g = Graph::from_edges(10, &[(0, 1), (1, 2), (0, 9)]);
        let h = edge_span_histogram(&g);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts()[0], 2, "two unit spans in the ≤1 bucket");
        assert_eq!(h.counts()[4], 1, "span 9 lands in the ≤16 bucket");
        assert_eq!(h.sum(), 11.0);
        // Bounds are the fixed spec, independent of this graph.
        assert_eq!(h.bounds(), &EDGE_SPAN_BOUNDS);
        assert_eq!(h.bounds()[0], 1.0);
        assert_eq!(h.bounds()[23], (1u64 << 23) as f64);
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = Graph::empty(4);
        assert_eq!(mean_edge_span(&g), 0.0);
        assert_eq!(median_edge_span(&g), 0);
        assert_eq!(line_locality(&g, 16), 0.0);
        assert_eq!(window_hit_ratio(&g, 4), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_line_rejected() {
        line_locality(&path(), 0);
    }
}
