//! Quick structural summaries of a graph.
//!
//! Used by the Table 1 harness (dataset features) and by generator tests to
//! assert the synthetic graphs have the paper's qualitative properties:
//! sparse, small diameter, skewed degree distribution.

use crate::csr::Graph;
use crate::NodeId;

/// Degree-distribution and size summary of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub n: u32,
    /// Directed edge count.
    pub m: u64,
    /// Maximum out-degree.
    pub max_out_degree: u32,
    /// Maximum in-degree.
    pub max_in_degree: u32,
    /// Mean out-degree (= m / n).
    pub mean_degree: f64,
    /// Fraction of directed edges whose reverse edge also exists.
    pub reciprocity: f64,
    /// Number of nodes with zero total degree.
    pub isolated: u32,
}

impl GraphStats {
    /// Computes all statistics in one pass over the graph.
    pub fn compute(g: &Graph) -> GraphStats {
        let mut max_out = 0;
        let mut max_in = 0;
        let mut isolated = 0;
        let mut reciprocal_edges: u64 = 0;
        for u in g.nodes() {
            max_out = max_out.max(g.out_degree(u));
            max_in = max_in.max(g.in_degree(u));
            if g.degree(u) == 0 {
                isolated += 1;
            }
            for &v in g.out_neighbors(u) {
                if g.has_edge(v, u) {
                    reciprocal_edges += 1;
                }
            }
        }
        let m = g.m();
        GraphStats {
            n: g.n(),
            m,
            max_out_degree: max_out,
            max_in_degree: max_in,
            mean_degree: if g.n() == 0 {
                0.0
            } else {
                m as f64 / f64::from(g.n())
            },
            reciprocity: if m == 0 {
                0.0
            } else {
                reciprocal_edges as f64 / m as f64
            },
            isolated,
        }
    }
}

/// Out-degree histogram: `hist[d]` = number of nodes with out-degree `d`.
pub fn out_degree_histogram(g: &Graph) -> Vec<u32> {
    let mut hist = Vec::new();
    for u in g.nodes() {
        let d = g.out_degree(u) as usize;
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Gini coefficient of the total-degree distribution — a scalar skewness
/// measure. ~0 for regular graphs, → 1 for extremely hub-dominated graphs.
/// Real social/web graphs sit well above random graphs of equal density.
pub fn degree_gini(g: &Graph) -> f64 {
    let n = g.n() as usize;
    if n == 0 {
        return 0.0;
    }
    let mut degs: Vec<u64> = g.nodes().map(|u| u64::from(g.degree(u))).collect();
    degs.sort_unstable();
    let total: u64 = degs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // G = (2 * Σ i*x_i) / (n * Σ x_i) - (n + 1) / n, with i starting at 1
    let weighted: f64 = degs
        .iter()
        .enumerate()
        .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
        .sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Approximate diameter estimate: the maximum BFS eccentricity over
/// `samples` pseudo-randomly chosen source nodes (treating edges as
/// undirected so disconnected directions don't report infinity). Cheap
/// sanity metric for generator tests; the benchmark-grade Diameter
/// algorithm lives in `gorder-algos`.
pub fn approx_diameter(g: &Graph, samples: u32, seed: u64) -> u32 {
    if g.n() == 0 {
        return 0;
    }
    let mut best = 0;
    let mut state = seed | 1;
    let mut dist = vec![u32::MAX; g.n() as usize];
    let mut queue: Vec<NodeId> = Vec::new();
    for _ in 0..samples {
        // xorshift64* — deterministic, dependency-free source sampling
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let src = (state.wrapping_mul(0x2545F4914F6CDD1D) % u64::from(g.n())) as NodeId;
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        dist[src as usize] = 0;
        queue.clear();
        queue.push(src);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let du = dist[u as usize];
            best = best.max(du);
            for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    queue.push(v);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: u32) -> Graph {
        let edges: Vec<(NodeId, NodeId)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn stats_on_cycle() {
        let g = cycle(10);
        let s = GraphStats::compute(&g);
        assert_eq!(s.n, 10);
        assert_eq!(s.m, 10);
        assert_eq!(s.max_out_degree, 1);
        assert_eq!(s.max_in_degree, 1);
        assert!((s.mean_degree - 1.0).abs() < 1e-12);
        assert_eq!(s.isolated, 0);
        assert_eq!(s.reciprocity, 0.0);
    }

    #[test]
    fn reciprocity_full_on_bidirected() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
        let s = GraphStats::compute(&g);
        assert!((s.reciprocity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_counted() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        assert_eq!(GraphStats::compute(&g).isolated, 2);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let hist = out_degree_histogram(&g);
        assert_eq!(hist.iter().sum::<u32>(), 5);
        assert_eq!(hist[0], 3); // nodes 2, 3, 4
        assert_eq!(hist[1], 1); // node 1
        assert_eq!(hist[3], 1); // node 0
    }

    #[test]
    fn gini_zero_for_regular() {
        let g = cycle(32);
        assert!(degree_gini(&g).abs() < 1e-9);
    }

    #[test]
    fn gini_positive_for_star() {
        let edges: Vec<(NodeId, NodeId)> = (1..50).map(|v| (0, v)).collect();
        let g = Graph::from_edges(50, &edges);
        assert!(degree_gini(&g) > 0.4, "star graph should be highly skewed");
    }

    #[test]
    fn approx_diameter_cycle() {
        // undirected eccentricity of a 10-cycle from any node is 5
        let d = approx_diameter(&cycle(10), 4, 123);
        assert_eq!(d, 5);
    }

    #[test]
    fn approx_diameter_empty() {
        assert_eq!(approx_diameter(&Graph::empty(0), 3, 1), 0);
    }
}
