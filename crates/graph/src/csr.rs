//! Compressed Sparse Row storage for directed graphs.
//!
//! A CSR graph stores all neighbour lists in one shared `targets` array of
//! length `m`, with an `offsets` array of length `n + 1` such that the
//! out-neighbours of node `u` are `targets[offsets[u] .. offsets[u + 1]]`.
//! Compared to a per-node `Vec<Vec<NodeId>>` adjacency list this removes a
//! pointer chase per node and keeps consecutive nodes' neighbour lists
//! adjacent in memory — which is precisely the property graph reordering
//! exploits (Figure 2 of the replication).

use crate::permutation::Permutation;
use crate::NodeId;

/// A directed graph in CSR form, storing both directions.
///
/// Immutable once built: every ordering produces a fresh relabelled graph
/// via [`Graph::relabel`], so algorithm runs on different orderings operate
/// on structurally identical but differently laid-out data.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    n: u32,
    out_offsets: Box<[u64]>,
    out_targets: Box<[NodeId]>,
    in_offsets: Box<[u64]>,
    in_targets: Box<[NodeId]>,
}

impl Graph {
    /// Builds a graph from an edge list. Duplicate edges are collapsed and
    /// self-loops dropped (the paper's datasets are simple directed graphs).
    ///
    /// `n` is the number of nodes; every endpoint must be `< n`.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range. Use [`GraphBuilder`] for a
    /// checked, configurable construction path.
    pub fn from_edges(n: u32, edges: &[(NodeId, NodeId)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// The empty graph on `n` nodes.
    pub fn empty(n: u32) -> Self {
        Graph::from_edges(n, &[])
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of (directed) edges.
    #[inline]
    pub fn m(&self) -> u64 {
        self.out_targets.len() as u64
    }

    /// Out-neighbours of `u`, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.out_offsets[u as usize] as usize;
        let hi = self.out_offsets[u as usize + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// In-neighbours of `u`, sorted ascending.
    #[inline]
    pub fn in_neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.in_offsets[u as usize] as usize;
        let hi = self.in_offsets[u as usize + 1] as usize;
        &self.in_targets[lo..hi]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> u32 {
        (self.out_offsets[u as usize + 1] - self.out_offsets[u as usize]) as u32
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> u32 {
        (self.in_offsets[u as usize + 1] - self.in_offsets[u as usize]) as u32
    }

    /// Total degree (in + out) of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> u32 {
        self.out_degree(u) + self.in_degree(u)
    }

    /// Whether the directed edge `(u, v)` exists. O(log deg(u)).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all directed edges `(u, v)` in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n).flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Iterates over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.n
    }

    /// Raw out-CSR arrays `(offsets, targets)`. Exposed for the cache
    /// simulator, which needs the exact memory layout to replay address
    /// streams.
    pub fn out_csr(&self) -> (&[u64], &[NodeId]) {
        (&self.out_offsets, &self.out_targets)
    }

    /// Raw in-CSR arrays `(offsets, targets)`.
    pub fn in_csr(&self) -> (&[u64], &[NodeId]) {
        (&self.in_offsets, &self.in_targets)
    }

    /// Node of maximum total degree; ties broken by smallest id. `None` on
    /// the empty graph. Used as a deterministic "interesting" source node.
    pub fn max_degree_node(&self) -> Option<NodeId> {
        (0..self.n).max_by_key(|&u| (self.degree(u), std::cmp::Reverse(u)))
    }

    /// Produces the graph with every node `u` renamed to `perm[u]`.
    ///
    /// The result is structurally identical (isomorphic via `perm`) with
    /// neighbour lists re-sorted, so algorithms traverse the same logical
    /// graph through a different memory layout.
    pub fn relabel(&self, perm: &Permutation) -> Graph {
        assert_eq!(
            perm.len(),
            self.n,
            "permutation is over {} nodes but graph has {}",
            perm.len(),
            self.n
        );
        let n = self.n as usize;
        // Out-degrees of the renamed nodes.
        let mut out_offsets = vec![0u64; n + 1];
        for u in 0..self.n {
            out_offsets[perm.apply(u) as usize + 1] = u64::from(self.out_degree(u));
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = vec![0 as NodeId; self.out_targets.len()];
        for u in 0..self.n {
            let nu = perm.apply(u) as usize;
            let lo = out_offsets[nu] as usize;
            for (slot, &v) in out_targets[lo..].iter_mut().zip(self.out_neighbors(u)) {
                *slot = perm.apply(v);
            }
            let hi = lo + self.out_degree(u) as usize;
            out_targets[lo..hi].sort_unstable();
        }
        let (in_offsets, in_targets) = reverse_csr(self.n, &out_offsets, &out_targets);
        Graph {
            n: self.n,
            out_offsets: out_offsets.into_boxed_slice(),
            out_targets: out_targets.into_boxed_slice(),
            in_offsets: in_offsets.into_boxed_slice(),
            in_targets: in_targets.into_boxed_slice(),
        }
    }

    /// The transpose graph (every edge reversed). O(n + m), no re-sorting
    /// needed because both CSR directions are already stored.
    pub fn transpose(&self) -> Graph {
        Graph {
            n: self.n,
            out_offsets: self.in_offsets.clone(),
            out_targets: self.in_targets.clone(),
            in_offsets: self.out_offsets.clone(),
            in_targets: self.out_targets.clone(),
        }
    }

    /// Collects all edges into a vector (mainly for tests and I/O).
    pub fn edge_vec(&self) -> Vec<(NodeId, NodeId)> {
        self.edges().collect()
    }

    /// Approximate resident size in bytes of the four CSR arrays.
    pub fn memory_bytes(&self) -> usize {
        (self.out_offsets.len() + self.in_offsets.len()) * std::mem::size_of::<u64>()
            + (self.out_targets.len() + self.in_targets.len()) * std::mem::size_of::<NodeId>()
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n)
            .field("m", &self.m())
            .finish()
    }
}

/// Builds the reverse CSR (in-adjacency) from an out-CSR via counting sort.
/// Targets come out sorted because sources are scanned in ascending order.
fn reverse_csr(n: u32, offsets: &[u64], targets: &[NodeId]) -> (Vec<u64>, Vec<NodeId>) {
    let n = n as usize;
    let mut in_offsets = vec![0u64; n + 1];
    for &v in targets {
        in_offsets[v as usize + 1] += 1;
    }
    for i in 0..n {
        in_offsets[i + 1] += in_offsets[i];
    }
    let mut cursor: Vec<u64> = in_offsets[..n].to_vec();
    let mut in_targets = vec![0 as NodeId; targets.len()];
    for u in 0..n {
        let lo = offsets[u] as usize;
        let hi = offsets[u + 1] as usize;
        for &v in &targets[lo..hi] {
            let c = &mut cursor[v as usize];
            in_targets[*c as usize] = u as NodeId;
            *c += 1;
        }
    }
    (in_offsets, in_targets)
}

/// Incremental, checked construction of a [`Graph`].
///
/// Collects edges, then sorts, deduplicates, and (by default) drops
/// self-loops at [`GraphBuilder::build`] time.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: u32,
    edges: Vec<(NodeId, NodeId)>,
    keep_self_loops: bool,
}

impl GraphBuilder {
    /// A builder for a graph on `n` nodes.
    pub fn new(n: u32) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            keep_self_loops: false,
        }
    }

    /// Pre-allocates capacity for `m` edges.
    pub fn with_capacity(n: u32, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
            keep_self_loops: false,
        }
    }

    /// Keep self-loops instead of dropping them (default: drop).
    pub fn keep_self_loops(mut self, keep: bool) -> Self {
        self.keep_self_loops = keep;
        self
    }

    /// Number of nodes this builder was created for.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Number of edges added so far (before dedup).
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the directed edge `(u, v)`.
    ///
    /// # Panics
    /// Panics if `u >= n` or `v >= n`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            u < self.n && v < self.n,
            "edge ({u}, {v}) out of range for n = {}",
            self.n
        );
        self.edges.push((u, v));
    }

    /// Adds both `(u, v)` and `(v, u)`.
    pub fn add_undirected_edge(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Finalises the CSR arrays.
    pub fn build(mut self) -> Graph {
        if !self.keep_self_loops {
            self.edges.retain(|&(u, v)| u != v);
        }
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n as usize;
        let mut out_offsets = vec![0u64; n + 1];
        for &(u, _) in &self.edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<NodeId> = self.edges.iter().map(|&(_, v)| v).collect();
        let (in_offsets, in_targets) = reverse_csr(self.n, &out_offsets, &out_targets);
        Graph {
            n: self.n,
            out_offsets: out_offsets.into_boxed_slice(),
            out_targets: out_targets.into_boxed_slice(),
            in_offsets: in_offsets.into_boxed_slice(),
            in_targets: in_targets.into_boxed_slice(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0
        Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 5);
    }

    #[test]
    fn out_neighbors_sorted() {
        let g = Graph::from_edges(4, &[(0, 3), (0, 1), (0, 2)]);
        assert_eq!(g.out_neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn in_neighbors() {
        let g = diamond();
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[3]);
        assert_eq!(g.in_neighbors(1), &[0]);
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.in_degree(3), 2);
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 1), (1, 1), (1, 2)]);
        assert_eq!(g.m(), 2);
        assert_eq!(g.out_neighbors(1), &[2]);
    }

    #[test]
    fn self_loops_kept_when_asked() {
        let mut b = GraphBuilder::new(3).keep_self_loops(true);
        b.add_edge(1, 1);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(1, 1));
    }

    #[test]
    fn has_edge() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(3, 3));
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let edges = vec![(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)];
        let g = Graph::from_edges(4, &edges);
        let mut collected = g.edge_vec();
        collected.sort_unstable();
        assert_eq!(collected, edges);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        for u in g.nodes() {
            assert!(g.out_neighbors(u).is_empty());
            assert!(g.in_neighbors(u).is_empty());
        }
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree_node(), None);
    }

    #[test]
    fn transpose_inverts_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.m(), g.m());
        for (u, v) in g.edges() {
            assert!(t.has_edge(v, u));
        }
        // Transposing twice gives back the original.
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn relabel_identity_is_noop() {
        let g = diamond();
        let id = Permutation::identity(4);
        assert_eq!(g.relabel(&id), g);
    }

    #[test]
    fn relabel_reverse() {
        let g = diamond();
        // perm maps u -> 3 - u
        let perm = Permutation::try_new(vec![3, 2, 1, 0]).unwrap();
        let h = g.relabel(&perm);
        assert_eq!(h.m(), g.m());
        for (u, v) in g.edges() {
            assert!(h.has_edge(3 - u, 3 - v));
        }
        // In-adjacency is consistent with out-adjacency.
        for (u, v) in h.edges() {
            assert!(h.in_neighbors(v).contains(&u));
        }
    }

    #[test]
    fn max_degree_node_tie_break() {
        // nodes 0 and 1 both have degree 2 (one out, one in); smallest id wins
        let g = Graph::from_edges(3, &[(0, 1), (1, 0)]);
        assert_eq!(g.max_degree_node(), Some(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn memory_bytes_positive() {
        let g = diamond();
        // 2 offset arrays of 5 u64 + 2 target arrays of 5 u32
        assert_eq!(g.memory_bytes(), 2 * 5 * 8 + 2 * 5 * 4);
    }
}
