//! Induced subgraphs and node-set extraction.
//!
//! Utilities for carving a graph down to a node subset with dense
//! re-numbering — used by the partition-parallel Gorder, the dynamic-graph
//! experiments, and anyone who wants to run the benchmark suite on (say)
//! one community of a larger network.

use crate::csr::{Graph, GraphBuilder};
use crate::NodeId;

/// The mapping produced by an induced-subgraph extraction.
#[derive(Debug, Clone)]
pub struct SubgraphMap {
    /// The extracted graph, nodes renumbered `0..keep.len()`.
    pub graph: Graph,
    /// `original[i]` = id in the parent graph of subgraph node `i`.
    pub original: Vec<NodeId>,
}

impl SubgraphMap {
    /// Parent-graph id of subgraph node `u`.
    pub fn to_original(&self, u: NodeId) -> NodeId {
        self.original[u as usize]
    }
}

/// Extracts the subgraph induced by `keep` (order defines the new ids;
/// duplicates are rejected).
///
/// # Panics
/// Panics if `keep` contains an out-of-range or duplicate id.
pub fn induced(g: &Graph, keep: &[NodeId]) -> SubgraphMap {
    let mut new_id = vec![NodeId::MAX; g.n() as usize];
    for (i, &u) in keep.iter().enumerate() {
        assert!(u < g.n(), "node {u} out of range");
        assert_eq!(
            new_id[u as usize],
            NodeId::MAX,
            "duplicate node {u} in keep set"
        );
        new_id[u as usize] = i as NodeId;
    }
    let mut b = GraphBuilder::new(keep.len() as u32);
    for (i, &u) in keep.iter().enumerate() {
        for &v in g.out_neighbors(u) {
            let nv = new_id[v as usize];
            if nv != NodeId::MAX {
                b.add_edge(i as NodeId, nv);
            }
        }
    }
    SubgraphMap {
        graph: b.build(),
        original: keep.to_vec(),
    }
}

/// Extracts the subgraph induced by a contiguous id range `[lo, hi)`.
pub fn induced_range(g: &Graph, lo: NodeId, hi: NodeId) -> SubgraphMap {
    assert!(
        lo <= hi && hi <= g.n(),
        "invalid range [{lo}, {hi}) for n = {}",
        g.n()
    );
    let keep: Vec<NodeId> = (lo..hi).collect();
    induced(g, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Graph {
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (1, 4)])
    }

    #[test]
    fn keeps_internal_edges_only() {
        let sub = induced(&g(), &[0, 1, 2]);
        assert_eq!(sub.graph.n(), 3);
        assert_eq!(sub.graph.m(), 3, "the (1,4) edge crosses out and must drop");
        assert!(sub.graph.has_edge(0, 1));
        assert!(sub.graph.has_edge(2, 0));
    }

    #[test]
    fn keep_order_defines_ids() {
        let sub = induced(&g(), &[4, 1, 3]);
        // 3 → 4 becomes 2 → 0; 1 → 4 becomes 1 → 0
        assert!(sub.graph.has_edge(2, 0));
        assert!(sub.graph.has_edge(1, 0));
        assert_eq!(sub.to_original(0), 4);
        assert_eq!(sub.to_original(2), 3);
    }

    #[test]
    fn range_extraction() {
        let sub = induced_range(&g(), 3, 6);
        assert_eq!(sub.graph.n(), 3);
        assert_eq!(sub.graph.m(), 2);
        assert_eq!(sub.original, vec![3, 4, 5]);
    }

    #[test]
    fn empty_keep() {
        let sub = induced(&g(), &[]);
        assert_eq!(sub.graph.n(), 0);
        assert_eq!(sub.graph.m(), 0);
    }

    #[test]
    fn whole_graph_roundtrip() {
        let original = g();
        let keep: Vec<NodeId> = original.nodes().collect();
        let sub = induced(&original, &keep);
        assert_eq!(sub.graph, original);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicates_rejected() {
        induced(&g(), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        induced(&g(), &[9]);
    }
}
