//! # gorder-graph — directed graph substrate in Compressed Sparse Row form
//!
//! This crate is the storage substrate for the Gorder reproduction
//! ("Speedup Graph Processing by Graph Ordering", SIGMOD 2016). Everything
//! above it — the orderings, the benchmark algorithms, the cache simulator —
//! operates on the [`Graph`] type defined here.
//!
//! ## Design
//!
//! * Node ids are [`NodeId`] (`u32`). The paper's graphs stay under 2³²
//!   nodes, and a 4-byte id halves the memory traffic of a `usize` id,
//!   which is itself a cache-locality optimisation in the spirit of the
//!   paper.
//! * A [`Graph`] stores **both** the out-adjacency and the in-adjacency in
//!   CSR form. PageRank pulls over in-edges, Gorder scores common
//!   in-neighbours, and InDegSort sorts by in-degree, so the reverse graph
//!   is needed constantly; building it once up front is the only sane
//!   layout.
//! * Neighbour lists are sorted ascending, so "visit neighbours in
//!   lexicographic order" (the replication's BFS/DFS convention) is the
//!   natural CSR traversal order.
//! * [`Permutation`] is a validated bijection `old id → new id`;
//!   [`Graph::relabel`] materialises the reordered graph. Orderings produce
//!   placement sequences and convert them with
//!   [`Permutation::from_placement`].
//!
//! ## Modules
//!
//! * [`csr`] — the [`Graph`] type and its builder.
//! * [`permutation`] — validated node permutations.
//! * [`io`] — plain-text edge-list and compact binary graph formats.
//! * [`io_mm`] — Matrix Market (`.mtx`) interchange.
//! * [`gen`] — deterministic synthetic generators (preferential attachment,
//!   copying model, RMAT, Erdős–Rényi, stochastic block model).
//! * [`datasets`] — named recipes standing in for the paper's eight
//!   real-world datasets (plus the replication's `epinion`).
//! * [`stats`] — degree statistics and other quick summaries.
//! * [`locality`] — layout-locality diagnostics (edge spans, cache-line
//!   co-residency) used by ablations.
//! * [`compress`] — gap + varint compressed adjacency (the
//!   ordering/compression connection from the paper's discussion).
//! * [`subgraph`] — induced-subgraph extraction with dense renumbering.

pub mod compress;
pub mod csr;
pub mod datasets;
pub mod gen;
pub mod io;
pub mod io_mm;
pub mod locality;
pub mod permutation;
pub mod stats;
pub mod subgraph;

pub use csr::{Graph, GraphBuilder};
pub use permutation::{Permutation, PermutationError};

/// Node identifier. Dense in `0..n`.
pub type NodeId = u32;
