//! Gap-compressed adjacency — the ordering/compression connection.
//!
//! The paper's discussion points out (via Boldi & Vigna's WebGraph) that
//! the same property Gorder optimises — neighbours with nearby ids — also
//! shrinks compressed graph representations: sorted adjacency lists are
//! stored as *gaps* (`v₁, v₂−v₁, v₃−v₂, …`), and gap magnitude is exactly
//! what locality-aware orderings reduce.
//!
//! This module implements the classic gap + varint scheme:
//!
//! * the first neighbour is stored as a zig-zag-encoded offset from the
//!   source node (it may precede the source);
//! * subsequent neighbours as plain gaps (≥ 1, stored − 1);
//! * all values LEB128-varint encoded.
//!
//! [`CompressedGraph`] is a real, queryable structure (`out_neighbors`
//! decodes on the fly), so the compression experiment measures an honest
//! end-to-end representation, not just an entropy estimate.

use crate::csr::{Graph, GraphBuilder};
use crate::NodeId;

/// LEB128-encodes `x` into `out`.
fn put_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a LEB128 varint at `pos`, advancing it.
fn get_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0;
    loop {
        let byte = buf[*pos];
        *pos += 1;
        x |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return x;
        }
        shift += 7;
    }
}

/// Zig-zag encoding for signed offsets.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A gap + varint compressed directed graph (out-adjacency only).
pub struct CompressedGraph {
    n: u32,
    m: u64,
    /// Byte offset of each node's encoded list.
    offsets: Box<[u64]>,
    data: Box<[u8]>,
}

impl CompressedGraph {
    /// Compresses the out-adjacency of `g`.
    pub fn compress(g: &Graph) -> CompressedGraph {
        let n = g.n();
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut data = Vec::new();
        for u in g.nodes() {
            offsets.push(data.len() as u64);
            let neighbors = g.out_neighbors(u);
            if let Some((&first, rest)) = neighbors.split_first() {
                put_varint(&mut data, zigzag(i64::from(first) - i64::from(u)));
                let mut prev = first;
                for &v in rest {
                    debug_assert!(v > prev, "CSR lists are sorted strictly ascending");
                    put_varint(&mut data, u64::from(v - prev) - 1);
                    prev = v;
                }
            }
        }
        offsets.push(data.len() as u64);
        CompressedGraph {
            n,
            m: g.m(),
            offsets: offsets.into_boxed_slice(),
            data: data.into_boxed_slice(),
        }
    }

    /// Node count.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Edge count.
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Decodes the out-neighbours of `u`.
    pub fn out_neighbors(&self, u: NodeId) -> Vec<NodeId> {
        let mut pos = self.offsets[u as usize] as usize;
        let end = self.offsets[u as usize + 1] as usize;
        let mut out = Vec::new();
        if pos < end {
            let first = (i64::from(u) + unzigzag(get_varint(&self.data, &mut pos))) as NodeId;
            out.push(first);
            let mut prev = first;
            while pos < end {
                prev += get_varint(&self.data, &mut pos) as NodeId + 1;
                out.push(prev);
            }
        }
        out
    }

    /// Decompresses the whole graph.
    pub fn decompress(&self) -> Graph {
        let mut b = GraphBuilder::with_capacity(self.n, self.m as usize);
        for u in 0..self.n {
            for v in self.out_neighbors(u) {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// Size of the encoded adjacency data in bytes (excluding the offset
    /// index, which is ordering-independent).
    pub fn data_bytes(&self) -> usize {
        self.data.len()
    }

    /// Mean encoded bits per edge — the figure of merit the WebGraph
    /// literature reports, and the quantity orderings improve.
    pub fn bits_per_edge(&self) -> f64 {
        if self.m == 0 {
            0.0
        } else {
            self.data.len() as f64 * 8.0 / self.m as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{copying_model, erdos_renyi};
    use crate::Permutation;
    use rand::SeedableRng;

    #[test]
    fn varint_roundtrip() {
        let values = [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-5i64, -1, 0, 1, 42, i64::MIN / 2, i64::MAX / 2] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn compress_roundtrip_small() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 0), (2, 3), (4, 0), (4, 1)]);
        let c = CompressedGraph::compress(&g);
        assert_eq!(c.decompress(), g);
        assert_eq!(c.out_neighbors(0), vec![1, 4]);
        assert_eq!(c.out_neighbors(3), Vec::<NodeId>::new());
    }

    #[test]
    fn compress_roundtrip_generated() {
        let g = copying_model(800, 6, 0.6, 4);
        let c = CompressedGraph::compress(&g);
        assert_eq!(c.n(), g.n());
        assert_eq!(c.m(), g.m());
        assert_eq!(c.decompress(), g);
    }

    #[test]
    fn local_orderings_compress_better() {
        // A graph with strong locality compresses far better in its local
        // order than in a random one.
        let g = copying_model(1500, 8, 0.7, 9);
        let random = g.relabel(&Permutation::random(
            g.n(),
            &mut rand::rngs::StdRng::seed_from_u64(3),
        ));
        let local_bits = CompressedGraph::compress(&g).bits_per_edge();
        let random_bits = CompressedGraph::compress(&random).bits_per_edge();
        assert!(
            local_bits < random_bits,
            "local {local_bits:.2} b/e should beat random {random_bits:.2} b/e"
        );
    }

    #[test]
    fn beats_raw_representation_on_sparse_graphs() {
        let g = erdos_renyi(5000, 40_000, 2);
        let c = CompressedGraph::compress(&g);
        assert!(
            c.bits_per_edge() < 32.0,
            "varint gaps must beat 4-byte ids: {:.2} b/e",
            c.bits_per_edge()
        );
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        let c = CompressedGraph::compress(&g);
        assert_eq!(c.bits_per_edge(), 0.0);
        assert_eq!(c.decompress(), g);
    }
}
