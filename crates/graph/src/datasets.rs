//! Named dataset recipes standing in for the paper's real-world graphs.
//!
//! The paper evaluates on eight real datasets (plus the replication's
//! `epinion`), ranging from 30 M to 2 B edges. Downloading multi-gigabyte
//! crawls is out of scope for a laptop-scale reproduction, so each dataset
//! is replaced by a **deterministic synthetic recipe** of matching
//! *category* (social vs. web), degree skew, and original-order locality,
//! scaled down ~100–1000× (DESIGN.md §3–4). All recipes accept a `scale`
//! multiplier so harnesses can run quick or full.
//!
//! | recipe | category | model |
//! |---|---|---|
//! | `epinion_like` | social | preferential attachment (small) |
//! | `pokec_like` | social | preferential attachment + BFS-crawl order |
//! | `flickr_like` | social | preferential attachment, higher reciprocity |
//! | `livejournal_like` | social | SBM communities × preferential hubs |
//! | `wiki_like` | web | host-block copying model |
//! | `gplus_like` | social | preferential attachment, heavy skew |
//! | `pldarc_like` | web | host-block copying model |
//! | `twitter_like` | social | preferential attachment, celebrity hubs |
//! | `sdarc_like` | web | host-block copying model, largest |

use crate::csr::{Graph, GraphBuilder};
use crate::gen::{
    preferential_attachment, stochastic_block_model, web_graph, PrefAttachConfig, WebGraphConfig,
};
use crate::permutation::Permutation;
use crate::NodeId;

/// Whether a dataset models an online social network or a hyperlink graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Online social platform (nodes = users).
    Social,
    /// Web/hyperlink graph (nodes = pages).
    Web,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::Social => write!(f, "Social"),
            Category::Web => write!(f, "Web"),
        }
    }
}

/// A named synthetic stand-in for one of the paper's datasets.
#[derive(Debug, Clone, Copy)]
pub struct Dataset {
    /// Short name matching the paper's dataset name with a `-like` reading.
    pub name: &'static str,
    /// Social or web.
    pub category: Category,
    /// Base node count at `scale = 1.0`.
    pub base_n: u32,
    builder: fn(n: u32) -> Graph,
}

impl Dataset {
    /// Builds the graph at the given scale factor (`1.0` = the default
    /// laptop-scale size; the harness uses smaller scales for quick runs).
    pub fn build(&self, scale: f64) -> Graph {
        assert!(scale > 0.0, "scale must be positive");
        let n = ((f64::from(self.base_n) * scale).round() as u32).max(16);
        (self.builder)(n)
    }
}

/// Relabels a graph by BFS-crawl discovery order from its max-degree node.
///
/// Crawled social datasets are numbered in discovery order; applying this
/// to a generated graph endows its "Original" ordering with the same kind
/// of locality the paper observes in real data.
pub fn crawl_relabel(g: &Graph) -> Graph {
    let n = g.n();
    if n == 0 {
        return g.clone();
    }
    let mut placement: Vec<NodeId> = Vec::with_capacity(n as usize);
    let mut seen = vec![false; n as usize];
    let start = g.max_degree_node().expect("non-empty graph");
    let mut order_seed = vec![start];
    // restart from every still-unseen node (in id order) to cover all
    order_seed.extend(0..n);
    for s in order_seed {
        if seen[s as usize] {
            continue;
        }
        seen[s as usize] = true;
        let mut head = placement.len();
        placement.push(s);
        while head < placement.len() {
            let u = placement[head];
            head += 1;
            for &v in g.out_neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    placement.push(v);
                }
            }
        }
    }
    let perm = Permutation::from_placement(&placement).expect("BFS placement is a permutation");
    g.relabel(&perm)
}

/// Blends a preferential-attachment graph (hubs, reciprocity, arrival
/// order) with an SBM community overlay (dense friend groups). Real social
/// networks are both: heavy-tailed celebrity structure *and* community
/// structure; the overlay is what gives locality-seeking orderings
/// something to recover. Block ids are contiguous, standing in for the
/// community-correlated numbering of crawled datasets.
fn social_blend(pa: PrefAttachConfig, mean_block: u32, in_block_degree: f64, seed: u64) -> Graph {
    use rand::SeedableRng;
    let n = pa.n;
    let hubs = preferential_attachment(pa);
    let blocks = (n / mean_block).max(2);
    let block = n.div_ceil(blocks).max(2);
    let p_in = (in_block_degree / f64::from(block - 1)).min(1.0);
    let communities = stochastic_block_model(n, blocks, p_in, 0.0, seed);
    // Half the community mass stays aligned with the id order (cohorts:
    // users who joined together befriend each other — this is the
    // locality the Original order carries and the reason it beats
    // Random), and half is scattered across the id range (interest groups
    // independent of join date — the locality only a reordering can
    // recover).
    let cohorts = stochastic_block_model(n, blocks, p_in * 0.5, 0.0, seed ^ 0xA11);
    let scatter = Permutation::random(n, &mut rand::rngs::StdRng::seed_from_u64(seed ^ 0x5CA7));
    let interests = communities.relabel(&scatter);
    let mut b = GraphBuilder::with_capacity(n, (hubs.m() + cohorts.m() + interests.m()) as usize);
    for (u, v) in hubs.edges().chain(cohorts.edges()).chain(interests.edges()) {
        b.add_edge(u, v);
    }
    b.build()
}

fn epinion_builder(n: u32) -> Graph {
    social_blend(
        PrefAttachConfig {
            n,
            out_degree: 5,
            reciprocity: 0.35,
            uniform_mix: 0.2,
            closure_prob: 0.3,
            recency_bias: 0.3,
            seed: 0xE91,
        },
        40,
        4.0,
        0xE92,
    )
}

fn pokec_builder(n: u32) -> Graph {
    let g = social_blend(
        PrefAttachConfig {
            n,
            out_degree: 9,
            reciprocity: 0.45,
            uniform_mix: 0.15,
            closure_prob: 0.3,
            recency_bias: 0.3,
            seed: 0x90CEC,
        },
        60,
        8.0,
        0x90CED,
    );
    crawl_relabel(&g)
}

fn flickr_builder(n: u32) -> Graph {
    social_blend(
        PrefAttachConfig {
            n,
            out_degree: 7,
            reciprocity: 0.55,
            uniform_mix: 0.1,
            closure_prob: 0.45,
            recency_bias: 0.45,
            seed: 0xF11C4,
        },
        50,
        7.0,
        0xF11C5,
    )
}

fn livejournal_builder(n: u32) -> Graph {
    social_blend(
        PrefAttachConfig {
            n,
            out_degree: 6,
            reciprocity: 0.4,
            uniform_mix: 0.2,
            closure_prob: 0.3,
            recency_bias: 0.3,
            seed: 0x11E,
        },
        200,
        10.0,
        0x11F,
    )
}

fn wiki_builder(n: u32) -> Graph {
    web_graph(WebGraphConfig {
        n,
        mean_host_size: 30,
        nav_links: 3,
        ext_links: 16,
        copy_prob: 0.55,
        host_affinity: 0.65,
        fragmentation: 0.35,
        seed: 0x317A,
    })
}

fn gplus_builder(n: u32) -> Graph {
    social_blend(
        PrefAttachConfig {
            n,
            out_degree: 10,
            reciprocity: 0.2,
            uniform_mix: 0.05,
            closure_prob: 0.4,
            recency_bias: 0.35,
            seed: 0x6915,
        },
        80,
        5.0,
        0x6916,
    )
}

fn pldarc_builder(n: u32) -> Graph {
    web_graph(WebGraphConfig {
        n,
        mean_host_size: 24,
        nav_links: 2,
        ext_links: 11,
        copy_prob: 0.6,
        host_affinity: 0.65,
        fragmentation: 0.35,
        seed: 0x91D,
    })
}

fn twitter_builder(n: u32) -> Graph {
    social_blend(
        PrefAttachConfig {
            n,
            out_degree: 14,
            reciprocity: 0.25,
            uniform_mix: 0.03,
            closure_prob: 0.4,
            recency_bias: 0.3,
            seed: 0x7517,
        },
        100,
        9.0,
        0x7518,
    )
}

fn sdarc_builder(n: u32) -> Graph {
    web_graph(WebGraphConfig {
        n,
        mean_host_size: 28,
        nav_links: 3,
        ext_links: 13,
        copy_prob: 0.6,
        host_affinity: 0.65,
        fragmentation: 0.35,
        seed: 0x5DA,
    })
}

/// The replication's `epinion` (added small dataset for quick tests).
pub fn epinion_like() -> Dataset {
    Dataset {
        name: "epinion",
        category: Category::Social,
        base_n: 4_000,
        builder: epinion_builder,
    }
}

/// The paper's `pokec` (Slovak social network, SNAP).
pub fn pokec_like() -> Dataset {
    Dataset {
        name: "pokec",
        category: Category::Social,
        base_n: 20_000,
        builder: pokec_builder,
    }
}

/// The paper's `flickr` (Flickr growth, Konect).
pub fn flickr_like() -> Dataset {
    Dataset {
        name: "flickr",
        category: Category::Social,
        base_n: 25_000,
        builder: flickr_builder,
    }
}

/// The paper's `livejournal` (SNAP).
pub fn livejournal_like() -> Dataset {
    Dataset {
        name: "livejournal",
        category: Category::Social,
        base_n: 40_000,
        builder: livejournal_builder,
    }
}

/// The paper's `wiki` (English Wikipedia hyperlinks, Konect).
pub fn wiki_like() -> Dataset {
    Dataset {
        name: "wiki",
        category: Category::Web,
        base_n: 60_000,
        builder: wiki_builder,
    }
}

/// The paper's `gplus` (Google+ crawl, Gong et al.).
pub fn gplus_like() -> Dataset {
    Dataset {
        name: "gplus",
        category: Category::Social,
        base_n: 90_000,
        builder: gplus_builder,
    }
}

/// The paper's `pldarc` (pay-level-domain arcs, Web Data Commons).
pub fn pldarc_like() -> Dataset {
    Dataset {
        name: "pldarc",
        category: Category::Web,
        base_n: 120_000,
        builder: pldarc_builder,
    }
}

/// The paper's `twitter` (Kaist WWW2010 crawl).
pub fn twitter_like() -> Dataset {
    Dataset {
        name: "twitter",
        category: Category::Social,
        base_n: 150_000,
        builder: twitter_builder,
    }
}

/// The paper's `sdarc` (subdomain arcs, Web Data Commons — the largest).
pub fn sdarc_like() -> Dataset {
    Dataset {
        name: "sdarc",
        category: Category::Web,
        base_n: 200_000,
        builder: sdarc_builder,
    }
}

/// All nine recipes in the replication's presentation order (smallest to
/// largest: epinion first, sdarc last).
pub fn all() -> Vec<Dataset> {
    vec![
        epinion_like(),
        pokec_like(),
        flickr_like(),
        livejournal_like(),
        wiki_like(),
        gplus_like(),
        pldarc_like(),
        twitter_like(),
        sdarc_like(),
    ]
}

/// Looks a recipe up by name.
pub fn by_name(name: &str) -> Option<Dataset> {
    all().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{approx_diameter, degree_gini, GraphStats};

    #[test]
    fn all_has_nine() {
        assert_eq!(all().len(), 9);
    }

    #[test]
    fn by_name_works() {
        assert_eq!(by_name("wiki").unwrap().name, "wiki");
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn recipes_build_at_tiny_scale() {
        for d in all() {
            let g = d.build(0.02);
            assert!(g.n() >= 16, "{}: n = {}", d.name, g.n());
            assert!(g.m() > 0, "{}: no edges", d.name);
        }
    }

    #[test]
    fn recipes_are_deterministic() {
        for d in all() {
            assert_eq!(d.build(0.05), d.build(0.05), "{} not deterministic", d.name);
        }
    }

    #[test]
    fn recipes_are_sparse_and_skewed() {
        for d in all() {
            let g = d.build(0.1);
            let s = GraphStats::compute(&g);
            assert!(
                s.mean_degree < 64.0,
                "{}: too dense ({})",
                d.name,
                s.mean_degree
            );
            assert!(
                degree_gini(&g) > 0.15,
                "{}: degree distribution not skewed (gini = {})",
                d.name,
                degree_gini(&g)
            );
        }
    }

    #[test]
    fn recipes_have_small_diameter() {
        for d in all() {
            let g = d.build(0.1);
            let diam = approx_diameter(&g, 3, 99);
            assert!(
                diam > 0 && diam < 40,
                "{}: diameter estimate {diam}",
                d.name
            );
        }
    }

    #[test]
    fn crawl_relabel_preserves_structure() {
        let d = epinion_like();
        let g = d.build(0.05);
        let h = crawl_relabel(&g);
        assert_eq!(g.n(), h.n());
        assert_eq!(g.m(), h.m());
        let sg = GraphStats::compute(&g);
        let sh = GraphStats::compute(&h);
        assert_eq!(sg.max_in_degree, sh.max_in_degree);
        assert_eq!(sg.max_out_degree, sh.max_out_degree);
    }

    #[test]
    fn crawl_relabel_empty() {
        let g = Graph::empty(0);
        assert_eq!(crawl_relabel(&g).n(), 0);
    }

    #[test]
    fn scale_changes_size() {
        let d = pokec_like();
        assert!(d.build(0.02).n() < d.build(0.05).n());
    }
}
