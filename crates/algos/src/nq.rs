//! NQ — neighbour query.
//!
//! The paper's elementary benchmark: for every node `u`, access all
//! out-neighbours and combine a per-neighbour attribute. Following the
//! replication, the attribute is the neighbour's out-degree:
//! `q_u = Σ_{v ∈ N_u} d_v`. The degree lookup `d_v` is the cache-sensitive
//! access — neighbours with nearby ids hit the same cache lines of the
//! degree array.
//!
//! Implemented by the engine's NQ kernel; this module re-exports the
//! convenience function and wraps the kernel as a [`GraphAlgorithm`].

use crate::{engine_run, engine_run_plan, ExecPlan, GraphAlgorithm, KernelStats, RunCtx};
use gorder_graph::Graph;

pub use gorder_engine::kernels::nq::{neighbor_query, NqKernel};

/// [`GraphAlgorithm`] wrapper for NQ.
pub struct Nq;

impl GraphAlgorithm for Nq {
    fn name(&self) -> &'static str {
        "NQ"
    }

    fn run(&self, g: &Graph, ctx: &RunCtx) -> u64 {
        self.run_stats(g, ctx).0
    }

    fn run_stats(&self, g: &Graph, ctx: &RunCtx) -> (u64, KernelStats) {
        engine_run("NQ", g, ctx)
    }

    fn run_stats_plan(&self, g: &Graph, ctx: &RunCtx, plan: ExecPlan) -> (u64, KernelStats) {
        engine_run_plan("NQ", g, ctx, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::Permutation;

    fn g() -> Graph {
        // 0 -> {1, 2}; 1 -> {2}; 2 -> {}
        Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)])
    }

    #[test]
    fn sums_of_neighbor_degrees() {
        let q = neighbor_query(&g());
        // q_0 = d(1) + d(2) = 1 + 0; q_1 = d(2) = 0; q_2 = 0
        assert_eq!(q, vec![1, 0, 0]);
    }

    #[test]
    fn empty_graph() {
        assert!(neighbor_query(&Graph::empty(0)).is_empty());
        assert_eq!(neighbor_query(&Graph::empty(3)), vec![0, 0, 0]);
    }

    #[test]
    fn checksum_invariant_under_relabel() {
        let gg = g();
        let perm = Permutation::try_new(vec![2, 0, 1]).unwrap();
        let relabelled = gg.relabel(&perm);
        let ctx = RunCtx::default();
        assert_eq!(Nq.run(&gg, &ctx), Nq.run(&relabelled, &ctx));
    }

    #[test]
    fn per_node_values_map_through_permutation() {
        let gg = g();
        let perm = Permutation::try_new(vec![1, 2, 0]).unwrap();
        let relabelled = gg.relabel(&perm);
        let q0 = neighbor_query(&gg);
        let q1 = neighbor_query(&relabelled);
        for u in 0..3u32 {
            assert_eq!(q0[u as usize], q1[perm.apply(u) as usize]);
        }
    }

    #[test]
    fn checksum_is_total_of_query_values() {
        let gg = g();
        let total: u64 = neighbor_query(&gg).iter().sum();
        assert_eq!(Nq.run(&gg, &RunCtx::default()), total);
    }
}
