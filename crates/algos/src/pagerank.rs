//! PR — PageRank by power iteration.
//!
//! Pull-based formulation (Page et al. 1999): each iteration computes
//!
//! ```text
//! pr'[u] = (1 − α)/n + α · ( Σ_{x ∈ in(u)} pr[x] / outdeg(x)  +  D/n )
//! ```
//!
//! where `α` is the damping factor (paper: 0.85), `D` the total mass
//! sitting on dangling nodes (outdeg 0), and the iteration count is fixed
//! at 100 (the paper's approximation). The pull over `in(u)` produces the
//! random reads into the rank array whose locality the ordering controls —
//! PR is the paper's flagship cache-bound workload (Tables 3–4).

use crate::{GraphAlgorithm, RunCtx};
use gorder_graph::Graph;

/// Result of a PageRank run.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankResult {
    /// Final rank per node; sums to 1 (within FP error).
    pub rank: Vec<f64>,
    /// Iterations executed.
    pub iterations: u32,
}

impl PageRankResult {
    /// Index of the highest-ranked node (smallest id on ties).
    pub fn top_node(&self) -> Option<u32> {
        self.rank
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
            .map(|(i, _)| i as u32)
    }
}

/// Runs `iterations` rounds of the power method with damping `alpha`.
pub fn pagerank(g: &Graph, iterations: u32, alpha: f64) -> PageRankResult {
    let n = g.n() as usize;
    if n == 0 {
        return PageRankResult {
            rank: Vec::new(),
            iterations,
        };
    }
    let inv_n = 1.0 / n as f64;
    // Precompute 1/outdeg to turn the inner loop into mul-adds.
    let inv_out: Vec<f64> = g
        .nodes()
        .map(|u| {
            let d = g.out_degree(u);
            if d == 0 {
                0.0
            } else {
                1.0 / f64::from(d)
            }
        })
        .collect();
    let mut rank = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        let dangling: f64 = g
            .nodes()
            .filter(|&u| g.out_degree(u) == 0)
            .map(|u| rank[u as usize])
            .sum();
        let base = (1.0 - alpha) * inv_n + alpha * dangling * inv_n;
        for u in g.nodes() {
            let mut acc = 0.0;
            for &x in g.in_neighbors(u) {
                acc += rank[x as usize] * inv_out[x as usize];
            }
            next[u as usize] = base + alpha * acc;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    PageRankResult { rank, iterations }
}

/// [`GraphAlgorithm`] wrapper for PR.
pub struct Pr;

impl GraphAlgorithm for Pr {
    fn name(&self) -> &'static str {
        "PR"
    }

    fn run(&self, g: &Graph, ctx: &RunCtx) -> u64 {
        let r = pagerank(g, ctx.pr_iterations, ctx.damping);
        // Quantised total mass: invariant under relabeling up to FP
        // summation order; coarse quantisation (1e6) absorbs that.
        let total: f64 = r.rank.iter().sum();
        (total * 1e6).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::Permutation;

    const EPS: f64 = 1e-9;

    #[test]
    fn mass_conserved() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 0), (0, 4)]);
        let r = pagerank(&g, 50, 0.85);
        let total: f64 = r.rank.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = pagerank(&g, 100, 0.85);
        for &x in &r.rank {
            assert!((x - 0.25).abs() < EPS, "rank = {x}");
        }
    }

    #[test]
    fn sink_of_star_ranks_highest() {
        let g = Graph::from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let r = pagerank(&g, 100, 0.85);
        assert_eq!(r.top_node(), Some(0));
        assert!(r.rank[0] > 0.4);
    }

    #[test]
    fn dangling_mass_redistributed() {
        // 0 -> 1, 1 is dangling; without redistribution the total decays.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let r = pagerank(&g, 100, 0.85);
        let total: f64 = r.rank.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(r.rank[1] > r.rank[0], "sink accumulates rank");
    }

    #[test]
    fn values_map_through_permutation() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 1), (4, 2), (5, 4), (2, 5)]);
        let perm = Permutation::try_new(vec![4, 2, 0, 5, 1, 3]).unwrap();
        let h = g.relabel(&perm);
        let rg = pagerank(&g, 60, 0.85);
        let rh = pagerank(&h, 60, 0.85);
        for u in 0..6u32 {
            let a = rg.rank[u as usize];
            let b = rh.rank[perm.apply(u) as usize];
            assert!((a - b).abs() < 1e-12, "node {u}: {a} vs {b}");
        }
    }

    #[test]
    fn zero_iterations_gives_uniform() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let r = pagerank(&g, 0, 0.85);
        for &x in &r.rank {
            assert!((x - 1.0 / 3.0).abs() < EPS);
        }
    }

    #[test]
    fn alpha_zero_gives_uniform() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (3, 2)]);
        let r = pagerank(&g, 20, 0.0);
        for &x in &r.rank {
            assert!((x - 0.25).abs() < EPS);
        }
    }

    #[test]
    fn empty_graph() {
        let r = pagerank(&Graph::empty(0), 10, 0.85);
        assert!(r.rank.is_empty());
        assert_eq!(Pr.run(&Graph::empty(0), &RunCtx::default()), 0);
    }
}
