//! PR — PageRank by power iteration.
//!
//! Pull-based formulation (Page et al. 1999): each iteration computes
//!
//! ```text
//! pr'[u] = (1 − α)/n + α · ( Σ_{x ∈ in(u)} pr[x] / outdeg(x)  +  D/n )
//! ```
//!
//! where `α` is the damping factor (paper: 0.85), `D` the total mass
//! sitting on dangling nodes (outdeg 0), and the iteration count is fixed
//! at 100 (the paper's approximation). The pull over `in(u)` produces the
//! random reads into the rank array whose locality the ordering controls —
//! PR is the paper's flagship cache-bound workload (Tables 3–4).
//!
//! Implemented by the engine's PR kernel (one power iteration per engine
//! iterate, identical floating-point accumulation order); this module
//! re-exports the convenience function and wraps the kernel as a
//! [`GraphAlgorithm`].

use crate::{engine_run, engine_run_plan, ExecPlan, GraphAlgorithm, KernelStats, RunCtx};
use gorder_graph::Graph;

pub use gorder_engine::kernels::pagerank::{pagerank, PageRankResult, PrKernel};

/// [`GraphAlgorithm`] wrapper for PR.
pub struct Pr;

impl GraphAlgorithm for Pr {
    fn name(&self) -> &'static str {
        "PR"
    }

    fn run(&self, g: &Graph, ctx: &RunCtx) -> u64 {
        self.run_stats(g, ctx).0
    }

    fn run_stats(&self, g: &Graph, ctx: &RunCtx) -> (u64, KernelStats) {
        engine_run("PR", g, ctx)
    }

    fn run_stats_plan(&self, g: &Graph, ctx: &RunCtx, plan: ExecPlan) -> (u64, KernelStats) {
        engine_run_plan("PR", g, ctx, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::Permutation;

    const EPS: f64 = 1e-9;

    #[test]
    fn mass_conserved() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 0), (0, 4)]);
        let r = pagerank(&g, 50, 0.85);
        let total: f64 = r.rank.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = pagerank(&g, 100, 0.85);
        for &x in &r.rank {
            assert!((x - 0.25).abs() < EPS, "rank = {x}");
        }
    }

    #[test]
    fn sink_of_star_ranks_highest() {
        let g = Graph::from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let r = pagerank(&g, 100, 0.85);
        assert_eq!(r.top_node(), Some(0));
        assert!(r.rank[0] > 0.4);
    }

    #[test]
    fn dangling_mass_redistributed() {
        // 0 -> 1, 1 is dangling; without redistribution the total decays.
        let g = Graph::from_edges(2, &[(0, 1)]);
        let r = pagerank(&g, 100, 0.85);
        let total: f64 = r.rank.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(r.rank[1] > r.rank[0], "sink accumulates rank");
    }

    #[test]
    fn values_map_through_permutation() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 1), (4, 2), (5, 4), (2, 5)]);
        let perm = Permutation::try_new(vec![4, 2, 0, 5, 1, 3]).unwrap();
        let h = g.relabel(&perm);
        let rg = pagerank(&g, 60, 0.85);
        let rh = pagerank(&h, 60, 0.85);
        for u in 0..6u32 {
            let a = rg.rank[u as usize];
            let b = rh.rank[perm.apply(u) as usize];
            assert!((a - b).abs() < 1e-12, "node {u}: {a} vs {b}");
        }
    }

    #[test]
    fn zero_iterations_gives_uniform() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let r = pagerank(&g, 0, 0.85);
        for &x in &r.rank {
            assert!((x - 1.0 / 3.0).abs() < EPS);
        }
    }

    #[test]
    fn alpha_zero_gives_uniform() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (3, 2)]);
        let r = pagerank(&g, 20, 0.0);
        for &x in &r.rank {
            assert!((x - 0.25).abs() < EPS);
        }
    }

    #[test]
    fn empty_graph() {
        let r = pagerank(&Graph::empty(0), 10, 0.85);
        assert!(r.rank.is_empty());
        assert_eq!(Pr.run(&Graph::empty(0), &RunCtx::default()), 0);
    }

    #[test]
    fn stats_count_one_iteration_per_round() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let ctx = RunCtx {
            pr_iterations: 7,
            ..Default::default()
        };
        let (_, stats) = Pr.run_stats(&g, &ctx);
        assert_eq!(stats.iterations, 7);
        assert_eq!(stats.edges_relaxed, 7 * g.m());
    }
}
