//! Kcore — core decomposition by peeling.
//!
//! Repeatedly removes the node of minimum remaining degree; the core number
//! of a node is the largest `k` such that it survives into the `k`-core.
//! Degree here is the *total* (in + out) degree — the decomposition treats
//! the directed graph as its undirected multigraph view, the usual
//! convention for core decomposition on directed benchmark graphs.
//!
//! Two implementations, identical results:
//!
//! * [`kcore`] — the O(m) bucket-queue peeling of Batagelj–Zaveršnik,
//!   implemented as the engine's Kcore kernel (one node peeled per engine
//!   iterate) and re-exported here,
//! * [`kcore_binary_heap`] — the O(m log n) lazy binary-heap variant the
//!   replication used, kept native in this crate.
//!
//! The harness benches them against each other (an ablation the
//! replication's "binary heap … quasi-linear" remark invites).

use crate::{engine_run, engine_run_plan, ExecPlan, GraphAlgorithm, KernelStats, RunCtx};
use gorder_graph::{Graph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

pub use gorder_engine::kernels::kcore::{kcore, KcoreKernel, KcoreResult};

/// Lazy binary-heap peeling, O(m log n). Same result as [`kcore`].
pub fn kcore_binary_heap(g: &Graph) -> KcoreResult {
    let n = g.n() as usize;
    if n == 0 {
        return KcoreResult { core: Vec::new() };
    }
    let mut deg: Vec<u32> = g.nodes().map(|u| g.degree(u)).collect();
    let mut heap: BinaryHeap<Reverse<(u32, NodeId)>> = (0..n as u32)
        .map(|u| Reverse((deg[u as usize], u)))
        .collect();
    let mut removed = vec![false; n];
    let mut core = vec![0u32; n];
    let mut current = 0u32;
    while let Some(Reverse((d, u))) = heap.pop() {
        if removed[u as usize] || d != deg[u as usize] {
            continue; // stale entry
        }
        removed[u as usize] = true;
        current = current.max(d);
        core[u as usize] = current;
        for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
            if !removed[v as usize] && deg[v as usize] > 0 {
                deg[v as usize] -= 1;
                heap.push(Reverse((deg[v as usize], v)));
            }
        }
    }
    KcoreResult { core }
}

/// [`GraphAlgorithm`] wrapper for Kcore (bucket-queue variant).
pub struct Kcore;

impl GraphAlgorithm for Kcore {
    fn name(&self) -> &'static str {
        "Kcore"
    }

    fn run(&self, g: &Graph, ctx: &RunCtx) -> u64 {
        self.run_stats(g, ctx).0
    }

    fn run_stats(&self, g: &Graph, ctx: &RunCtx) -> (u64, KernelStats) {
        engine_run("Kcore", g, ctx)
    }

    fn run_stats_plan(&self, g: &Graph, ctx: &RunCtx, plan: ExecPlan) -> (u64, KernelStats) {
        engine_run_plan("Kcore", g, ctx, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::gen::{preferential_attachment, PrefAttachConfig};
    use gorder_graph::Permutation;

    /// Reference: naive repeated minimum-degree removal.
    fn naive_kcore(g: &Graph) -> Vec<u32> {
        let n = g.n() as usize;
        let mut alive = vec![true; n];
        let mut deg: Vec<u32> = g.nodes().map(|u| g.degree(u)).collect();
        let mut core = vec![0u32; n];
        let mut level = 0u32;
        for _ in 0..n {
            let u = (0..n)
                .filter(|&u| alive[u])
                .min_by_key(|&u| deg[u])
                .unwrap();
            level = level.max(deg[u]);
            core[u] = level;
            alive[u] = false;
            for &v in g
                .out_neighbors(u as NodeId)
                .iter()
                .chain(g.in_neighbors(u as NodeId))
            {
                if alive[v as usize] {
                    deg[v as usize] -= 1;
                }
            }
        }
        core
    }

    #[test]
    fn triangle_is_two_core() {
        // undirected-view degrees: each node has degree 2
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let r = kcore(&g);
        assert_eq!(r.core, vec![2, 2, 2]);
        assert_eq!(r.degeneracy(), 2);
    }

    #[test]
    fn pendant_has_lower_core() {
        // triangle 0-1-2 plus pendant 3 hanging off 0
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        let r = kcore(&g);
        assert_eq!(r.core[3], 1);
        assert_eq!(r.core[0], 2);
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..5 {
            let g = preferential_attachment(PrefAttachConfig {
                n: 120,
                out_degree: 4,
                reciprocity: 0.3,
                uniform_mix: 0.2,
                closure_prob: 0.3,
                recency_bias: 0.3,
                seed,
            });
            assert_eq!(kcore(&g).core, naive_kcore(&g), "seed {seed}");
        }
    }

    #[test]
    fn heap_variant_matches_bucket_variant() {
        for seed in 0..5 {
            let g = preferential_attachment(PrefAttachConfig {
                n: 200,
                out_degree: 5,
                reciprocity: 0.4,
                uniform_mix: 0.1,
                closure_prob: 0.3,
                recency_bias: 0.3,
                seed: seed + 100,
            });
            assert_eq!(kcore(&g).core, kcore_binary_heap(&g).core, "seed {seed}");
        }
    }

    #[test]
    fn core_numbers_invariant_under_relabel() {
        let g = preferential_attachment(PrefAttachConfig {
            n: 150,
            out_degree: 4,
            reciprocity: 0.2,
            uniform_mix: 0.2,
            closure_prob: 0.3,
            recency_bias: 0.3,
            seed: 7,
        });
        let perm = Permutation::try_new({
            let mut v: Vec<u32> = (0..150).collect();
            v.reverse();
            v
        })
        .unwrap();
        let h = g.relabel(&perm);
        let cg = kcore(&g).core;
        let ch = kcore(&h).core;
        for u in 0..150u32 {
            assert_eq!(cg[u as usize], ch[perm.apply(u) as usize]);
        }
        let ctx = RunCtx::default();
        assert_eq!(Kcore.run(&g, &ctx), Kcore.run(&h, &ctx));
    }

    #[test]
    fn isolated_nodes_are_zero_core() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 0)]);
        let r = kcore(&g);
        assert_eq!(r.core[2], 0);
        assert_eq!(r.core[3], 0);
        // the bidirected pair has multigraph degree 2 each
        assert_eq!(r.core[0], 2);
    }

    #[test]
    fn empty() {
        assert_eq!(kcore(&Graph::empty(0)).degeneracy(), 0);
        assert_eq!(kcore_binary_heap(&Graph::empty(0)).degeneracy(), 0);
    }
}
