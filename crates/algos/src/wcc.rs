//! WCC — weakly connected components (extension algorithm).
//!
//! Not part of the paper's nine-algorithm suite; included because the
//! paper's discussion argues Gorder "could speed up other graph
//! algorithms as well". Two classic implementations with identical
//! results:
//!
//! * [`wcc`] — BFS over the symmetrised view (frontier-local accesses,
//!   ordering-sensitive like the paper's BFS);
//! * [`wcc_union_find`] — union–find with path halving + union by size
//!   (edge-order scans with pointer chasing through the parent array —
//!   a different, also ordering-sensitive access pattern).

use crate::{GraphAlgorithm, RunCtx};
use gorder_graph::{Graph, NodeId};

/// Result of a WCC decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WccResult {
    /// Dense component id per node.
    pub component: Vec<u32>,
    /// Size of each component.
    pub sizes: Vec<u32>,
}

impl WccResult {
    /// Number of weakly connected components.
    pub fn count(&self) -> u32 {
        self.sizes.len() as u32
    }

    /// Size of the largest component.
    pub fn largest(&self) -> u32 {
        self.sizes.iter().copied().max().unwrap_or(0)
    }
}

/// BFS-based WCC over the symmetrised view.
pub fn wcc(g: &Graph) -> WccResult {
    let n = g.n() as usize;
    let mut component = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue: Vec<NodeId> = Vec::new();
    for root in g.nodes() {
        if component[root as usize] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        component[root as usize] = id;
        queue.clear();
        queue.push(root);
        let mut head = 0;
        let mut size = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            size += 1;
            for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                if component[v as usize] == u32::MAX {
                    component[v as usize] = id;
                    queue.push(v);
                }
            }
        }
        sizes.push(size);
    }
    WccResult { component, sizes }
}

/// Union–find WCC (path halving, union by size).
pub fn wcc_union_find(g: &Graph) -> WccResult {
    let n = g.n() as usize;
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut size: Vec<u32> = vec![1; n];
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize]; // halving
            x = parent[x as usize];
        }
        x
    }
    for (u, v) in g.edges() {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            let (big, small) = if size[ru as usize] >= size[rv as usize] {
                (ru, rv)
            } else {
                (rv, ru)
            };
            parent[small as usize] = big;
            size[big as usize] += size[small as usize];
        }
    }
    // compress to dense component ids
    let mut component = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    for u in 0..n as u32 {
        let r = find(&mut parent, u);
        if component[r as usize] == u32::MAX {
            component[r as usize] = sizes.len() as u32;
            sizes.push(0);
        }
        let id = component[r as usize];
        component[u as usize] = id;
        sizes[id as usize] += 1;
    }
    WccResult { component, sizes }
}

/// [`GraphAlgorithm`] wrapper for WCC (BFS variant).
pub struct Wcc;

impl GraphAlgorithm for Wcc {
    fn name(&self) -> &'static str {
        "WCC"
    }

    fn run(&self, g: &Graph, _ctx: &RunCtx) -> u64 {
        let r = wcc(g);
        r.sizes.iter().fold(u64::from(r.count()), |acc, &s| {
            acc.wrapping_add(u64::from(s) * u64::from(s))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::gen::erdos_renyi;
    use gorder_graph::Permutation;
    use rand::SeedableRng;

    #[test]
    fn direction_is_ignored() {
        // 0 -> 1 <- 2: weakly one component
        let g = Graph::from_edges(3, &[(0, 1), (2, 1)]);
        let r = wcc(&g);
        assert_eq!(r.count(), 1);
        assert_eq!(r.largest(), 3);
    }

    #[test]
    fn separate_components_counted() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let r = wcc(&g);
        assert_eq!(r.count(), 3); // {0,1}, {2,3}, {4}
        let mut sizes = r.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 2]);
    }

    #[test]
    fn union_find_matches_bfs() {
        for seed in 0..5 {
            let g = erdos_renyi(300, 350, seed); // sparse → many components
            let a = wcc(&g);
            let b = wcc_union_find(&g);
            assert_eq!(a.count(), b.count(), "seed {seed}");
            // same partition: component labels may differ, membership not
            for u in g.nodes() {
                for v in g.nodes() {
                    let same_a = a.component[u as usize] == a.component[v as usize];
                    let same_b = b.component[u as usize] == b.component[v as usize];
                    assert_eq!(same_a, same_b, "seed {seed}, pair ({u}, {v})");
                }
            }
        }
    }

    #[test]
    fn checksum_invariant_under_relabel() {
        let g = erdos_renyi(200, 300, 7);
        let perm = Permutation::random(g.n(), &mut rand::rngs::StdRng::seed_from_u64(1));
        let ctx = RunCtx::default();
        assert_eq!(Wcc.run(&g, &ctx), Wcc.run(&g.relabel(&perm), &ctx));
    }

    #[test]
    fn empty_and_isolated() {
        assert_eq!(wcc(&Graph::empty(0)).count(), 0);
        assert_eq!(wcc(&Graph::empty(4)).count(), 4);
        assert_eq!(wcc_union_find(&Graph::empty(4)).count(), 4);
    }

    #[test]
    fn wcc_at_least_as_coarse_as_scc() {
        let g = erdos_renyi(150, 400, 3);
        let w = wcc(&g);
        let s = crate::scc::scc(&g);
        assert!(w.count() <= s.count());
        // nodes in the same SCC are necessarily in the same WCC
        for u in g.nodes() {
            for v in g.nodes() {
                if s.component[u as usize] == s.component[v as usize] {
                    assert_eq!(w.component[u as usize], w.component[v as usize]);
                }
            }
        }
    }
}
