//! Label propagation community detection (extension algorithm).
//!
//! Raghavan et al.'s near-linear community detector: every node starts
//! with its own label and repeatedly adopts the most frequent label among
//! its (symmetrised) neighbours, until labels stabilise or an iteration
//! cap is hit. The inner loop reads `label[v]` for every neighbour — the
//! same attribute-gather pattern as PageRank's pull, so it benefits from
//! node reordering the same way.
//!
//! Deterministic variant: nodes update in ascending id order
//! (synchronous-free, in-place), ties break toward the smallest label.

use crate::{GraphAlgorithm, RunCtx};
use gorder_graph::{Graph, NodeId};
use std::collections::HashMap;

/// Result of label propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelPropResult {
    /// Final label per node (a representative node id).
    pub label: Vec<NodeId>,
    /// Iterations executed (≤ the configured cap).
    pub iterations: u32,
}

impl LabelPropResult {
    /// Number of distinct communities.
    pub fn communities(&self) -> u32 {
        let mut labels: Vec<NodeId> = self.label.clone();
        labels.sort_unstable();
        labels.dedup();
        labels.len() as u32
    }
}

/// Runs label propagation for at most `max_iterations` passes.
pub fn label_propagation(g: &Graph, max_iterations: u32) -> LabelPropResult {
    let mut label: Vec<NodeId> = (0..g.n()).collect();
    let mut counts: HashMap<NodeId, u32> = HashMap::new();
    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        let mut changed = false;
        for u in g.nodes() {
            counts.clear();
            for &v in g.out_neighbors(u).iter().chain(g.in_neighbors(u)) {
                *counts.entry(label[v as usize]).or_insert(0) += 1;
            }
            if counts.is_empty() {
                continue;
            }
            // most frequent label, ties to the smallest label value
            let best = counts
                .iter()
                .map(|(&l, &c)| (c, std::cmp::Reverse(l)))
                .max()
                .map(|(_, std::cmp::Reverse(l))| l)
                .expect("counts non-empty");
            if best != label[u as usize] {
                label[u as usize] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    LabelPropResult { label, iterations }
}

/// [`GraphAlgorithm`] wrapper for label propagation (cap 20 passes).
pub struct LabelProp;

impl GraphAlgorithm for LabelProp {
    fn name(&self) -> &'static str {
        "LP"
    }

    fn run(&self, g: &Graph, _ctx: &RunCtx) -> u64 {
        let r = label_propagation(g, 20);
        // community count is stable; exact labels depend on ids
        u64::from(r.communities()) << 8 | u64::from(r.iterations.min(255))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::gen::stochastic_block_model;

    #[test]
    fn clique_converges_to_one_label() {
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        let g = Graph::from_edges(5, &edges);
        let r = label_propagation(&g, 20);
        assert!(r.label.iter().all(|&l| l == r.label[0]));
        assert_eq!(r.communities(), 1);
    }

    #[test]
    fn isolated_nodes_keep_their_labels() {
        let g = Graph::empty(3);
        let r = label_propagation(&g, 5);
        assert_eq!(r.label, vec![0, 1, 2]);
        assert_eq!(r.communities(), 3);
        assert_eq!(r.iterations, 1, "no changes → stop after one pass");
    }

    #[test]
    fn two_cliques_with_bridge_stay_separate() {
        let mut edges = Vec::new();
        for base in [0u32, 5] {
            for a in 0..5u32 {
                for b in 0..5u32 {
                    if a != b {
                        edges.push((base + a, base + b));
                    }
                }
            }
        }
        edges.push((0, 5)); // single weak bridge
        let g = Graph::from_edges(10, &edges);
        let r = label_propagation(&g, 30);
        assert_eq!(r.communities(), 2);
        assert_ne!(r.label[0], r.label[5]);
    }

    #[test]
    fn finds_planted_blocks() {
        let g = stochastic_block_model(200, 4, 0.4, 0.002, 7);
        let r = label_propagation(&g, 30);
        // most nodes of block 0 should share a label
        let block0: Vec<NodeId> = (0..50).collect();
        let mut freq: HashMap<NodeId, u32> = HashMap::new();
        for &u in &block0 {
            *freq.entry(r.label[u as usize]).or_insert(0) += 1;
        }
        let dominant = freq.values().copied().max().unwrap();
        assert!(
            dominant >= 40,
            "block 0 should be mostly one community: {dominant}/50"
        );
        assert!(r.communities() <= 20);
    }

    #[test]
    fn iteration_cap_respected() {
        let g = stochastic_block_model(100, 2, 0.3, 0.05, 1);
        let r = label_propagation(&g, 2);
        assert!(r.iterations <= 2);
    }
}
