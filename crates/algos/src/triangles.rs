//! Triangle counting (extension algorithm).
//!
//! Counts triangles in the symmetrised simple graph with the standard
//! forward/compact algorithm: orient every undirected edge from the
//! lower-degree endpoint to the higher (ties by id), then intersect
//! out-lists of edge endpoints. O(m^{3/2}) worst case, far better on
//! skewed graphs. The intersection loops read neighbour lists of *pairs*
//! of adjacent nodes — co-access that node orderings directly influence,
//! which is why triangle counting is a favourite beneficiary in the
//! reordering literature that followed the paper.

use crate::{GraphAlgorithm, RunCtx};
use gorder_graph::{Graph, NodeId};

/// Counts triangles in the symmetrised simple graph.
pub fn count_triangles(g: &Graph) -> u64 {
    let n = g.n() as usize;
    // Build the symmetrised simple adjacency once.
    let mut undirected: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for u in g.nodes() {
        let mut merged: Vec<NodeId> = g
            .out_neighbors(u)
            .iter()
            .chain(g.in_neighbors(u))
            .copied()
            .collect();
        merged.sort_unstable();
        merged.dedup();
        merged.retain(|&v| v != u);
        undirected[u as usize] = merged;
    }
    let rank = |u: NodeId| (undirected[u as usize].len(), u);
    // Forward edges: keep only v with rank(v) > rank(u).
    let forward: Vec<Vec<NodeId>> = (0..n as u32)
        .map(|u| {
            undirected[u as usize]
                .iter()
                .copied()
                .filter(|&v| rank(v) > rank(u))
                .collect()
        })
        .collect();
    let mut count = 0u64;
    for u in 0..n {
        for &v in &forward[u] {
            // intersect forward[u] with forward[v]
            let (a, b) = (&forward[u], &forward[v as usize]);
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// Global clustering coefficient: `3·triangles / open-wedges`.
pub fn clustering_coefficient(g: &Graph) -> f64 {
    let triangles = count_triangles(g);
    // wedges = Σ d(d−1)/2 over simple undirected degrees
    let mut wedges = 0u64;
    for u in g.nodes() {
        let mut merged: Vec<NodeId> = g
            .out_neighbors(u)
            .iter()
            .chain(g.in_neighbors(u))
            .copied()
            .collect();
        merged.sort_unstable();
        merged.dedup();
        merged.retain(|&v| v != u);
        let d = merged.len() as u64;
        wedges += d * d.saturating_sub(1) / 2;
    }
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / wedges as f64
    }
}

/// [`GraphAlgorithm`] wrapper for triangle counting.
pub struct Triangles;

impl GraphAlgorithm for Triangles {
    fn name(&self) -> &'static str {
        "Tri"
    }

    fn run(&self, g: &Graph, _ctx: &RunCtx) -> u64 {
        count_triangles(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::gen::{preferential_attachment, PrefAttachConfig};
    use gorder_graph::Permutation;
    use rand::SeedableRng;

    /// O(n³) reference count on the symmetrised simple graph.
    fn naive(g: &Graph) -> u64 {
        let n = g.n();
        let adj = |u: NodeId, v: NodeId| g.has_edge(u, v) || g.has_edge(v, u);
        let mut count = 0;
        for a in 0..n {
            for b in a + 1..n {
                for c in b + 1..n {
                    if adj(a, b) && adj(b, c) && adj(a, c) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    #[test]
    fn single_triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(count_triangles(&g), 1);
    }

    #[test]
    fn direction_and_reciprocity_do_not_double_count() {
        // fully bidirected triangle is still one triangle
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2)]);
        assert_eq!(count_triangles(&g), 1);
    }

    #[test]
    fn square_has_none() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(count_triangles(&g), 0);
    }

    #[test]
    fn k4_has_four() {
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a < b {
                    edges.push((a, b));
                }
            }
        }
        let g = Graph::from_edges(4, &edges);
        assert_eq!(count_triangles(&g), 4);
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..4 {
            let g = preferential_attachment(PrefAttachConfig {
                n: 60,
                out_degree: 4,
                reciprocity: 0.4,
                uniform_mix: 0.3,
                closure_prob: 0.4,
                recency_bias: 0.2,
                seed,
            });
            assert_eq!(count_triangles(&g), naive(&g), "seed {seed}");
        }
    }

    #[test]
    fn invariant_under_relabel() {
        let g = preferential_attachment(PrefAttachConfig {
            n: 150,
            out_degree: 5,
            reciprocity: 0.3,
            uniform_mix: 0.2,
            closure_prob: 0.4,
            recency_bias: 0.2,
            seed: 9,
        });
        let perm = Permutation::random(g.n(), &mut rand::rngs::StdRng::seed_from_u64(2));
        assert_eq!(count_triangles(&g), count_triangles(&g.relabel(&perm)));
    }

    #[test]
    fn closure_raises_clustering() {
        let make = |closure| {
            preferential_attachment(PrefAttachConfig {
                n: 800,
                out_degree: 6,
                reciprocity: 0.3,
                uniform_mix: 0.2,
                closure_prob: closure,
                recency_bias: 0.2,
                seed: 5,
            })
        };
        let high = clustering_coefficient(&make(0.6));
        let low = clustering_coefficient(&make(0.0));
        assert!(
            high > 2.0 * low.max(1e-6),
            "closure should raise clustering: {high} vs {low}"
        );
    }

    #[test]
    fn empty() {
        assert_eq!(count_triangles(&Graph::empty(0)), 0);
        assert_eq!(clustering_coefficient(&Graph::empty(5)), 0.0);
    }
}
