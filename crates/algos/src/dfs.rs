//! DFS — depth-first search.
//!
//! Iterative (explicit stack — the paper's graphs are far too deep for
//! recursion), full coverage via restarts in ascending id order, children
//! visited in ascending id order. The ChDFS *ordering* in `gorder-orders`
//! is exactly this traversal's discovery order, which is why ChDFS makes
//! the DFS *algorithm* so fast in the replication's Figure 5.

use crate::{GraphAlgorithm, RunCtx};
use gorder_graph::{Graph, NodeId};

/// Result of a full-coverage DFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfsResult {
    /// Nodes in discovery (pre-) order.
    pub preorder: Vec<NodeId>,
    /// `discovery[u]` = index of `u` in `preorder`.
    pub discovery: Vec<u32>,
    /// Number of tree edges (n − number of restart roots).
    pub tree_edges: u32,
}

/// Runs a full-coverage iterative DFS starting at `source`.
///
/// Uses the standard "stack of (node, next-child-index)" formulation so
/// children are expanded lazily in ascending id order, exactly like the
/// recursive definition.
pub fn dfs(g: &Graph, source: NodeId) -> DfsResult {
    let n = g.n() as usize;
    let mut discovery = vec![u32::MAX; n];
    let mut preorder: Vec<NodeId> = Vec::with_capacity(n);
    let mut stack: Vec<(NodeId, u32)> = Vec::new();
    let mut tree_edges = 0;
    let starts = std::iter::once(source).chain(g.nodes());
    for s in starts {
        if n == 0 || discovery[s as usize] != u32::MAX {
            continue;
        }
        discovery[s as usize] = preorder.len() as u32;
        preorder.push(s);
        stack.push((s, 0));
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            let neighbors = g.out_neighbors(u);
            let mut advanced = false;
            while (*next as usize) < neighbors.len() {
                let v = neighbors[*next as usize];
                *next += 1;
                if discovery[v as usize] == u32::MAX {
                    discovery[v as usize] = preorder.len() as u32;
                    preorder.push(v);
                    tree_edges += 1;
                    stack.push((v, 0));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                stack.pop();
            }
        }
    }
    DfsResult {
        preorder,
        discovery,
        tree_edges,
    }
}

/// [`GraphAlgorithm`] wrapper for DFS.
pub struct Dfs;

impl GraphAlgorithm for Dfs {
    fn name(&self) -> &'static str {
        "DFS"
    }

    fn run(&self, g: &Graph, ctx: &RunCtx) -> u64 {
        if g.n() == 0 {
            return 0;
        }
        let r = dfs(g, ctx.source_for(g));
        // Node count and edge count are relabeling-invariant; discovery
        // order is not, so the checksum sticks to invariants while still
        // depending on the traversal having completed.
        (r.preorder.len() as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ u64::from(r.tree_edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preorder_on_tree() {
        // 0 -> {1, 4}; 1 -> {2, 3}
        let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 3)]);
        let r = dfs(&g, 0);
        assert_eq!(r.preorder, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.tree_edges, 4);
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        let n = 200_000u32;
        let edges: Vec<(NodeId, NodeId)> = (0..n - 1).map(|u| (u, u + 1)).collect();
        let g = Graph::from_edges(n, &edges);
        let r = dfs(&g, 0);
        assert_eq!(r.preorder.len(), n as usize);
        assert_eq!(r.tree_edges, n - 1);
    }

    #[test]
    fn back_edges_are_not_tree_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let r = dfs(&g, 0);
        assert_eq!(r.tree_edges, 2);
    }

    #[test]
    fn restart_coverage() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let r = dfs(&g, 0);
        assert_eq!(r.preorder.len(), 4);
        assert_eq!(r.tree_edges, 2); // two trees of one edge each
    }

    #[test]
    fn discovery_indexes_preorder() {
        let g = Graph::from_edges(5, &[(0, 2), (2, 1), (1, 3), (0, 4)]);
        let r = dfs(&g, 0);
        for (i, &u) in r.preorder.iter().enumerate() {
            assert_eq!(r.discovery[u as usize], i as u32);
        }
    }

    #[test]
    fn lexicographic_child_order() {
        let g = Graph::from_edges(4, &[(0, 2), (0, 1), (2, 3)]);
        let r = dfs(&g, 0);
        // child 1 before child 2 despite insertion order
        assert_eq!(r.preorder, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty() {
        assert_eq!(Dfs.run(&Graph::empty(0), &RunCtx::default()), 0);
    }
}
