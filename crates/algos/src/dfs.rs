//! DFS — depth-first search.
//!
//! Iterative (explicit stack — the paper's graphs are far too deep for
//! recursion), full coverage via restarts in ascending id order, children
//! visited in ascending id order. The ChDFS *ordering* in `gorder-orders`
//! is exactly this traversal's discovery order, which is why ChDFS makes
//! the DFS *algorithm* so fast in the replication's Figure 5.
//!
//! Implemented by the engine's DFS kernel; this module re-exports the
//! convenience function and wraps the kernel as a [`GraphAlgorithm`].

use crate::{engine_run, engine_run_plan, ExecPlan, GraphAlgorithm, KernelStats, RunCtx};
use gorder_graph::Graph;

pub use gorder_engine::kernels::dfs::{dfs, DfsKernel, DfsResult};

/// [`GraphAlgorithm`] wrapper for DFS.
pub struct Dfs;

impl GraphAlgorithm for Dfs {
    fn name(&self) -> &'static str {
        "DFS"
    }

    fn run(&self, g: &Graph, ctx: &RunCtx) -> u64 {
        self.run_stats(g, ctx).0
    }

    fn run_stats(&self, g: &Graph, ctx: &RunCtx) -> (u64, KernelStats) {
        engine_run("DFS", g, ctx)
    }

    fn run_stats_plan(&self, g: &Graph, ctx: &RunCtx, plan: ExecPlan) -> (u64, KernelStats) {
        engine_run_plan("DFS", g, ctx, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::NodeId;

    #[test]
    fn preorder_on_tree() {
        // 0 -> {1, 4}; 1 -> {2, 3}
        let g = Graph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (1, 3)]);
        let r = dfs(&g, 0);
        assert_eq!(r.preorder, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.tree_edges, 4);
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        let n = 200_000u32;
        let edges: Vec<(NodeId, NodeId)> = (0..n - 1).map(|u| (u, u + 1)).collect();
        let g = Graph::from_edges(n, &edges);
        let r = dfs(&g, 0);
        assert_eq!(r.preorder.len(), n as usize);
        assert_eq!(r.tree_edges, n - 1);
    }

    #[test]
    fn back_edges_are_not_tree_edges() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let r = dfs(&g, 0);
        assert_eq!(r.tree_edges, 2);
    }

    #[test]
    fn restart_coverage() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let r = dfs(&g, 0);
        assert_eq!(r.preorder.len(), 4);
        assert_eq!(r.tree_edges, 2); // two trees of one edge each
    }

    #[test]
    fn discovery_indexes_preorder() {
        let g = Graph::from_edges(5, &[(0, 2), (2, 1), (1, 3), (0, 4)]);
        let r = dfs(&g, 0);
        for (i, &u) in r.preorder.iter().enumerate() {
            assert_eq!(r.discovery[u as usize], i as u32);
        }
    }

    #[test]
    fn lexicographic_child_order() {
        let g = Graph::from_edges(4, &[(0, 2), (0, 1), (2, 3)]);
        let r = dfs(&g, 0);
        // child 1 before child 2 despite insertion order
        assert_eq!(r.preorder, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty() {
        assert_eq!(Dfs.run(&Graph::empty(0), &RunCtx::default()), 0);
    }
}
