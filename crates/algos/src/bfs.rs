//! BFS — breadth-first search.
//!
//! Full-coverage traversal: a BFS from the context source, then restarts
//! from every still-unvisited node in ascending id order, so every node and
//! every out-edge is touched exactly once regardless of connectivity.
//! Neighbours are visited in ascending id order (the CSR order).

use crate::{GraphAlgorithm, RunCtx};
use gorder_graph::{Graph, NodeId};

/// Result of a full-coverage BFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// `depth[u]` within its own BFS tree (every node is in exactly one).
    pub depth: Vec<u32>,
    /// Nodes in visit order.
    pub order: Vec<NodeId>,
    /// Number of nodes reached from the primary source (before restarts).
    pub primary_reached: u32,
}

/// Runs a full-coverage BFS starting at `source`.
pub fn bfs(g: &Graph, source: NodeId) -> BfsResult {
    let n = g.n() as usize;
    let mut depth = vec![u32::MAX; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut primary_reached = 0;
    let starts = std::iter::once(source).chain(g.nodes());
    for s in starts {
        if n == 0 || depth[s as usize] != u32::MAX {
            continue;
        }
        depth[s as usize] = 0;
        let frontier_start = order.len();
        order.push(s);
        let mut head = frontier_start;
        while head < order.len() {
            let u = order[head];
            head += 1;
            let du = depth[u as usize];
            for &v in g.out_neighbors(u) {
                if depth[v as usize] == u32::MAX {
                    depth[v as usize] = du + 1;
                    order.push(v);
                }
            }
        }
        if s == source {
            primary_reached = (order.len() - frontier_start) as u32;
        }
    }
    BfsResult {
        depth,
        order,
        primary_reached,
    }
}

/// [`GraphAlgorithm`] wrapper for BFS.
pub struct Bfs;

impl GraphAlgorithm for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn run(&self, g: &Graph, ctx: &RunCtx) -> u64 {
        if g.n() == 0 {
            return 0;
        }
        let r = bfs(g, ctx.source_for(g));
        // Depths from the primary source are invariant under relabeling
        // (BFS level sets do not depend on visit order within a level);
        // restart-tree depths are not, so only count the primary tree.
        // order[0..primary_reached] is exactly the primary tree.
        r.order[..r.primary_reached as usize]
            .iter()
            .fold(u64::from(r.primary_reached), |acc, &u| {
                acc.wrapping_add(u64::from(r.depth[u as usize]))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::Permutation;

    #[test]
    fn depths_on_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = bfs(&g, 0);
        assert_eq!(r.depth, vec![0, 1, 2, 3]);
        assert_eq!(r.order, vec![0, 1, 2, 3]);
        assert_eq!(r.primary_reached, 4);
    }

    #[test]
    fn lexicographic_neighbor_order() {
        let g = Graph::from_edges(4, &[(0, 3), (0, 1), (0, 2)]);
        let r = bfs(&g, 0);
        assert_eq!(r.order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn restarts_cover_disconnected_parts() {
        let g = Graph::from_edges(5, &[(0, 1), (3, 4)]);
        let r = bfs(&g, 0);
        assert_eq!(r.order.len(), 5);
        assert_eq!(r.primary_reached, 2);
        assert_eq!(r.depth[2], 0); // restart root
        assert_eq!(r.depth[4], 1);
    }

    #[test]
    fn source_respected() {
        let g = Graph::from_edges(3, &[(2, 0), (0, 1)]);
        let r = bfs(&g, 2);
        assert_eq!(r.depth, vec![1, 2, 0]);
        assert_eq!(r.primary_reached, 3);
    }

    #[test]
    fn checksum_invariant_with_mapped_source() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (5, 0)]);
        let perm = Permutation::try_new(vec![3, 1, 4, 0, 2, 5]).unwrap();
        let relabelled = g.relabel(&perm);
        let a = Bfs.run(
            &g,
            &RunCtx {
                source: Some(0),
                ..Default::default()
            },
        );
        let b = Bfs.run(
            &relabelled,
            &RunCtx {
                source: Some(perm.apply(0)),
                ..Default::default()
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(Bfs.run(&Graph::empty(0), &RunCtx::default()), 0);
    }

    #[test]
    fn single_node() {
        let r = bfs(&Graph::empty(1), 0);
        assert_eq!(r.depth, vec![0]);
        assert_eq!(r.primary_reached, 1);
    }
}
