//! BFS — breadth-first search.
//!
//! Full-coverage traversal: a BFS from the context source, then restarts
//! from every still-unvisited node in ascending id order, so every node and
//! every out-edge is touched exactly once regardless of connectivity.
//! Neighbours are visited in ascending id order (the CSR order).
//!
//! Implemented by the engine's BFS kernel (level-synchronous, one
//! frontier level per engine iterate — the visit order is identical to
//! the classic FIFO formulation); this module re-exports the convenience
//! function and wraps the kernel as a [`GraphAlgorithm`].

use crate::{engine_run, engine_run_plan, ExecPlan, GraphAlgorithm, KernelStats, RunCtx};
use gorder_graph::Graph;

pub use gorder_engine::kernels::bfs::{bfs, BfsKernel, BfsResult};

/// [`GraphAlgorithm`] wrapper for BFS.
pub struct Bfs;

impl GraphAlgorithm for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn run(&self, g: &Graph, ctx: &RunCtx) -> u64 {
        self.run_stats(g, ctx).0
    }

    fn run_stats(&self, g: &Graph, ctx: &RunCtx) -> (u64, KernelStats) {
        engine_run("BFS", g, ctx)
    }

    fn run_stats_plan(&self, g: &Graph, ctx: &RunCtx, plan: ExecPlan) -> (u64, KernelStats) {
        engine_run_plan("BFS", g, ctx, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::Permutation;

    #[test]
    fn depths_on_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = bfs(&g, 0);
        assert_eq!(r.depth, vec![0, 1, 2, 3]);
        assert_eq!(r.order, vec![0, 1, 2, 3]);
        assert_eq!(r.primary_reached, 4);
    }

    #[test]
    fn lexicographic_neighbor_order() {
        let g = Graph::from_edges(4, &[(0, 3), (0, 1), (0, 2)]);
        let r = bfs(&g, 0);
        assert_eq!(r.order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn restarts_cover_disconnected_parts() {
        let g = Graph::from_edges(5, &[(0, 1), (3, 4)]);
        let r = bfs(&g, 0);
        assert_eq!(r.order.len(), 5);
        assert_eq!(r.primary_reached, 2);
        assert_eq!(r.depth[2], 0); // restart root
        assert_eq!(r.depth[4], 1);
    }

    #[test]
    fn source_respected() {
        let g = Graph::from_edges(3, &[(2, 0), (0, 1)]);
        let r = bfs(&g, 2);
        assert_eq!(r.depth, vec![1, 2, 0]);
        assert_eq!(r.primary_reached, 3);
    }

    #[test]
    fn checksum_invariant_with_mapped_source() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (5, 0)]);
        let perm = Permutation::try_new(vec![3, 1, 4, 0, 2, 5]).unwrap();
        let relabelled = g.relabel(&perm);
        let a = Bfs.run(
            &g,
            &RunCtx {
                source: Some(0),
                ..Default::default()
            },
        );
        let b = Bfs.run(
            &relabelled,
            &RunCtx {
                source: Some(perm.apply(0)),
                ..Default::default()
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(Bfs.run(&Graph::empty(0), &RunCtx::default()), 0);
    }

    #[test]
    fn single_node() {
        let r = bfs(&Graph::empty(1), 0);
        assert_eq!(r.depth, vec![0]);
        assert_eq!(r.primary_reached, 1);
    }

    #[test]
    fn stats_count_every_edge_once() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let (_, stats) = Bfs.run_stats(&g, &RunCtx::default());
        assert_eq!(stats.edges_relaxed, g.m());
    }
}
