//! # gorder-algos — the paper's benchmark algorithm suite
//!
//! The Gorder evaluation measures nine "typical" graph algorithms under
//! every ordering (Section 2.1 of the replication):
//!
//! | key | algorithm | module |
//! |---|---|---|
//! | NQ | neighbour query (Σ of neighbour degrees) | [`nq`] |
//! | BFS | breadth-first search | [`bfs`] |
//! | DFS | depth-first search | [`dfs`] |
//! | SCC | strongly connected components (Tarjan) | [`scc`] |
//! | SP | shortest paths (Bellman–Ford) | [`sp`] |
//! | PR | PageRank (power iteration) | [`pagerank`] |
//! | DS | greedy dominating set | [`domset`] |
//! | Kcore | core decomposition (peeling) | [`kcore`] |
//! | Diam | diameter by repeated SP | [`diameter`] |
//!
//! Extension algorithms beyond the paper's suite — [`wcc`],
//! [`triangles`], [`labelprop`] — live behind [`extended`].
//!
//! Every module exposes a result-returning function (for use as a library)
//! and a unit struct implementing [`GraphAlgorithm`] (for the benchmark
//! harness, which iterates over `Vec<Box<dyn GraphAlgorithm>>`). The trait
//! returns a `u64` checksum so the optimiser cannot elide the traversal and
//! so cross-ordering equivalence is testable: checksums are built from
//! relabeling-invariant quantities (level sums, component-size polynomials,
//! …) wherever an algorithm's output is itself invariant.
//!
//! The nine paper algorithms are implemented once, as `gorder-engine`
//! kernels; this crate re-exports the engine's result types and
//! convenience functions and wraps each kernel in a [`GraphAlgorithm`]
//! adapter. [`GraphAlgorithm::run_stats`] surfaces the engine's
//! [`KernelStats`] (iterations, edges relaxed, frontier occupancy, phase
//! timings); the extension algorithms keep local implementations and
//! report default (empty) stats.
//!
//! Algorithms visit out-neighbours in ascending id order ("lexicographic",
//! the natural CSR order) to match the replication's convention.

pub mod betweenness;
pub mod bfs;
pub mod dfs;
pub mod diameter;
pub mod domset;
pub mod kcore;
pub mod labelprop;
pub mod nq;
pub mod pagerank;
pub mod scc;
pub mod sp;
pub mod triangles;
pub mod wcc;

use gorder_graph::Graph;

/// Shared run parameters for the benchmark suite (the engine's
/// [`gorder_engine::KernelCtx`] under its historical name).
///
/// The harness maps `source` through each ordering's permutation, so every
/// ordering computes from the same *logical* node.
pub use gorder_engine::KernelCtx as RunCtx;

/// Per-run execution metrics (re-exported from the engine).
pub use gorder_engine::KernelStats;

/// Execution plan for the engine-backed algorithms (re-exported from the
/// engine): serial or scoped-worker parallel. Plans never change
/// results — parallel runs are byte-identical to serial ones.
pub use gorder_engine::ExecPlan;

/// A benchmark algorithm: runs over a graph and returns a checksum that
/// (a) depends on the computed result, so work cannot be elided, and
/// (b) is invariant under relabeling where the underlying result is.
pub trait GraphAlgorithm: Send + Sync {
    /// Short name matching the paper's figure labels (NQ, BFS, …).
    fn name(&self) -> &'static str;
    /// Runs the algorithm.
    fn run(&self, g: &Graph, ctx: &RunCtx) -> u64;
    /// Runs the algorithm and also reports execution metrics. The nine
    /// engine-backed paper algorithms return real [`KernelStats`];
    /// algorithms without engine instrumentation fall back to default
    /// (zeroed) stats.
    fn run_stats(&self, g: &Graph, ctx: &RunCtx) -> (u64, KernelStats) {
        (self.run(g, ctx), KernelStats::default())
    }
    /// [`GraphAlgorithm::run_stats`] under an explicit [`ExecPlan`]. The
    /// engine-backed paper algorithms let the plan schedule their
    /// parallel-capable sections (results stay identical to the serial
    /// run); the default ignores the plan and runs serially, which is
    /// what the extension algorithms do.
    fn run_stats_plan(&self, g: &Graph, ctx: &RunCtx, plan: ExecPlan) -> (u64, KernelStats) {
        let _ = plan;
        self.run_stats(g, ctx)
    }
}

/// Runs the engine kernel labelled `name` and unpacks checksum + stats.
pub(crate) fn engine_run(name: &'static str, g: &Graph, ctx: &RunCtx) -> (u64, KernelStats) {
    engine_run_plan(name, g, ctx, ExecPlan::Serial)
}

/// [`engine_run`] under an explicit [`ExecPlan`].
pub(crate) fn engine_run_plan(
    name: &'static str,
    g: &Graph,
    ctx: &RunCtx,
    plan: ExecPlan,
) -> (u64, KernelStats) {
    let run = gorder_engine::run_by_name_plan(name, g, ctx, plan)
        .unwrap_or_else(|| panic!("{name} is a registered engine kernel"));
    (run.checksum, run.stats)
}

/// All nine algorithms in the paper's presentation order.
pub fn all() -> Vec<Box<dyn GraphAlgorithm>> {
    vec![
        Box::new(nq::Nq),
        Box::new(bfs::Bfs),
        Box::new(dfs::Dfs),
        Box::new(scc::Scc),
        Box::new(sp::Sp),
        Box::new(pagerank::Pr),
        Box::new(domset::Ds),
        Box::new(kcore::Kcore),
        Box::new(diameter::Diam),
    ]
}

/// The nine paper algorithms plus the extension algorithms (WCC,
/// triangle counting, label propagation) motivated by the paper's
/// discussion — "its consistent efficiency … suggests that it could
/// speed up other graph algorithms as well".
pub fn extended() -> Vec<Box<dyn GraphAlgorithm>> {
    let mut algos = all();
    algos.push(Box::new(wcc::Wcc));
    algos.push(Box::new(triangles::Triangles));
    algos.push(Box::new(labelprop::LabelProp));
    algos.push(Box::new(betweenness::Betweenness));
    algos
}

/// Looks an algorithm up by its paper label, case-insensitively
/// (searches the extended set).
pub fn by_name(name: &str) -> Option<Box<dyn GraphAlgorithm>> {
    extended()
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::gen::{preferential_attachment, PrefAttachConfig};

    #[test]
    fn registry_has_nine_in_paper_order() {
        let names: Vec<&str> = all().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["NQ", "BFS", "DFS", "SCC", "SP", "PR", "DS", "Kcore", "Diam"]
        );
    }

    #[test]
    fn extended_adds_four() {
        let names: Vec<&str> = extended().iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 13);
        assert_eq!(&names[9..], &["WCC", "Tri", "LP", "BC"]);
    }

    #[test]
    fn extended_algorithms_run() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let ctx = RunCtx::default();
        for a in extended() {
            let _ = a.run(&g, &ctx);
        }
    }

    #[test]
    fn by_name_roundtrip() {
        for a in all() {
            assert_eq!(by_name(a.name()).unwrap().name(), a.name());
        }
        assert!(by_name("XX").is_none());
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert_eq!(by_name("bfs").unwrap().name(), "BFS");
        assert_eq!(by_name("KCORE").unwrap().name(), "Kcore");
        assert_eq!(by_name("wcc").unwrap().name(), "WCC");
    }

    #[test]
    fn run_stats_checksum_matches_run() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let ctx = RunCtx {
            pr_iterations: 5,
            diameter_samples: 2,
            ..Default::default()
        };
        for a in extended() {
            let (checksum, _) = a.run_stats(&g, &ctx);
            assert_eq!(checksum, a.run(&g, &ctx), "{}", a.name());
        }
    }

    #[test]
    fn run_stats_plan_matches_serial_for_all_algorithms() {
        let g = preferential_attachment(PrefAttachConfig {
            n: 120,
            out_degree: 4,
            reciprocity: 0.3,
            uniform_mix: 0.1,
            closure_prob: 0.2,
            recency_bias: 0.3,
            seed: 11,
        });
        let ctx = RunCtx {
            pr_iterations: 5,
            diameter_samples: 3,
            ..Default::default()
        };
        for a in extended() {
            let (serial_sum, serial_stats) = a.run_stats(&g, &ctx);
            let (par_sum, par_stats) = a.run_stats_plan(&g, &ctx, ExecPlan::with_threads(4));
            assert_eq!(serial_sum, par_sum, "{} checksum", a.name());
            assert_eq!(
                serial_stats.iterations,
                par_stats.iterations,
                "{} iterations",
                a.name()
            );
            assert_eq!(
                serial_stats.edges_relaxed,
                par_stats.edges_relaxed,
                "{} edges",
                a.name()
            );
        }
    }

    #[test]
    fn engine_backed_algorithms_report_plan_threads() {
        let g = Graph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]);
        let ctx = RunCtx {
            pr_iterations: 3,
            ..Default::default()
        };
        let (_, stats) = pagerank::Pr.run_stats_plan(&g, &ctx, ExecPlan::with_threads(3));
        assert_eq!(stats.threads_used, 3);
        // Extension algorithms fall back to serial under any plan.
        let (_, stats) = wcc::Wcc.run_stats_plan(&g, &ctx, ExecPlan::with_threads(3));
        assert_eq!(stats.threads_used, 0, "default stats are zeroed");
    }

    #[test]
    fn paper_algorithms_report_engine_stats() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let ctx = RunCtx {
            pr_iterations: 3,
            diameter_samples: 2,
            ..Default::default()
        };
        for a in all() {
            let (_, stats) = a.run_stats(&g, &ctx);
            assert!(stats.iterations > 0, "{} reported no iterations", a.name());
        }
    }

    #[test]
    fn all_run_on_a_real_ish_graph() {
        let g = preferential_attachment(PrefAttachConfig {
            n: 500,
            out_degree: 5,
            reciprocity: 0.3,
            uniform_mix: 0.1,
            closure_prob: 0.3,
            recency_bias: 0.3,
            seed: 4,
        });
        let ctx = RunCtx {
            pr_iterations: 10,
            diameter_samples: 3,
            ..Default::default()
        };
        for a in all() {
            let _ = a.run(&g, &ctx); // must not panic
        }
    }

    #[test]
    fn all_run_on_empty_graph() {
        let g = Graph::empty(0);
        let ctx = RunCtx::default();
        for a in all() {
            let _ = a.run(&g, &ctx);
        }
    }

    #[test]
    fn source_for_prefers_explicit() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)]);
        let ctx = RunCtx {
            source: Some(2),
            ..Default::default()
        };
        assert_eq!(ctx.source_for(&g), 2);
        let ctx = RunCtx::default();
        assert_eq!(ctx.source_for(&g), 0); // max-degree node
    }
}
