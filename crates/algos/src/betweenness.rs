//! Approximate betweenness centrality (extension algorithm).
//!
//! Brandes' algorithm from a sampled set of source nodes: one BFS per
//! source plus a reverse dependency-accumulation sweep. Normalised by the
//! sample count, this is the standard unbiased estimator of betweenness.
//! The accumulation pass reads and writes `sigma`/`delta`/`dist` entries
//! for every edge of the BFS DAG in reverse level order — one of the most
//! cache-punishing access patterns in graph analytics, and a natural
//! beneficiary of reordering.

use crate::{GraphAlgorithm, RunCtx};
use gorder_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a betweenness estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct BetweennessResult {
    /// Estimated centrality per node (averaged over sources).
    pub score: Vec<f64>,
    /// Sources actually used.
    pub sources: Vec<NodeId>,
}

impl BetweennessResult {
    /// Node with the highest estimated centrality (smallest id on ties).
    ///
    /// Uses [`f64::total_cmp`] so a NaN score (conceivable if a caller
    /// post-processes the vector) selects deterministically instead of
    /// panicking.
    pub fn top_node(&self) -> Option<NodeId> {
        self.score
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i as NodeId)
    }
}

/// Brandes accumulation from the given sources (deterministic).
pub fn betweenness_from_sources(g: &Graph, sources: &[NodeId]) -> BetweennessResult {
    let n = g.n() as usize;
    let mut score = vec![0.0f64; n];
    let mut dist = vec![u32::MAX; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    for &s in sources {
        // forward BFS counting shortest paths
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        sigma.iter_mut().for_each(|x| *x = 0.0);
        delta.iter_mut().for_each(|x| *x = 0.0);
        order.clear();
        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        order.push(s);
        let mut head = 0;
        while head < order.len() {
            let u = order[head];
            head += 1;
            let du = dist[u as usize];
            for &v in g.out_neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    order.push(v);
                }
                if dist[v as usize] == du + 1 {
                    sigma[v as usize] += sigma[u as usize];
                }
            }
        }
        // reverse accumulation
        for &u in order.iter().rev() {
            let du = dist[u as usize];
            for &v in g.out_neighbors(u) {
                if dist[v as usize] == du + 1 {
                    delta[u as usize] +=
                        sigma[u as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
                }
            }
            if u != s {
                score[u as usize] += delta[u as usize];
            }
        }
    }
    if !sources.is_empty() {
        let inv = 1.0 / sources.len() as f64;
        score.iter_mut().for_each(|x| *x *= inv);
    }
    BetweennessResult {
        score,
        sources: sources.to_vec(),
    }
}

/// Betweenness from `samples` pseudo-random sources.
pub fn betweenness(g: &Graph, samples: u32, seed: u64) -> BetweennessResult {
    if g.n() == 0 {
        return BetweennessResult {
            score: Vec::new(),
            sources: Vec::new(),
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let sources: Vec<NodeId> = (0..samples).map(|_| rng.gen_range(0..g.n())).collect();
    betweenness_from_sources(g, &sources)
}

/// [`GraphAlgorithm`] wrapper (8 sampled sources).
pub struct Betweenness;

impl GraphAlgorithm for Betweenness {
    fn name(&self) -> &'static str {
        "BC"
    }

    fn run(&self, g: &Graph, ctx: &RunCtx) -> u64 {
        let r = betweenness(g, 8, ctx.seed);
        let total: f64 = r.score.iter().sum();
        (total * 1e3).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact betweenness = all nodes as sources.
    fn exact(g: &Graph) -> Vec<f64> {
        let sources: Vec<NodeId> = g.nodes().collect();
        let r = betweenness_from_sources(g, &sources);
        // undo the averaging to get raw pair-dependency sums
        r.score.iter().map(|&x| x * sources.len() as f64).collect()
    }

    #[test]
    fn path_center_dominates() {
        // directed path 0 → 1 → 2 → 3 → 4: node 2 lies on the most paths
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let b = exact(&g);
        // dependencies: node 2 is on 0→3, 0→4, 1→3, 1→4 = 4
        assert!((b[2] - 4.0).abs() < 1e-9, "b[2] = {}", b[2]);
        assert!(b[0].abs() < 1e-9, "endpoints carry nothing");
        assert!(b[2] > b[1] && b[2] > b[3]);
    }

    #[test]
    fn star_center_takes_all() {
        // bidirected star around 0 with 4 leaves
        let mut edges = Vec::new();
        for l in 1..=4u32 {
            edges.push((0, l));
            edges.push((l, 0));
        }
        let g = Graph::from_edges(5, &edges);
        let b = exact(&g);
        // every leaf pair's shortest path goes through 0: 4·3 = 12
        assert!((b[0] - 12.0).abs() < 1e-9, "b[0] = {}", b[0]);
        for leaf in &b[1..=4] {
            assert!(leaf.abs() < 1e-9);
        }
    }

    #[test]
    fn split_paths_share_dependency() {
        // 0 → {1, 2} → 3: two equal shortest paths to 3
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let b = exact(&g);
        assert!((b[1] - 0.5).abs() < 1e-12, "b[1] = {}", b[1]);
        assert!((b[2] - 0.5).abs() < 1e-12);
        assert_eq!(b[3], 0.0);
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let a = betweenness(&g, 4, 9);
        let b = betweenness(&g, 4, 9);
        assert_eq!(a, b);
        let full = exact(&g);
        // sampled estimate of the total is within the max possible range
        let est: f64 = a.score.iter().sum::<f64>() * g.n() as f64;
        let true_total: f64 = full.iter().sum();
        assert!(est <= true_total * f64::from(g.n()), "estimate wildly off");
    }

    #[test]
    fn scores_map_through_permutation() {
        use gorder_graph::Permutation;
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 2)]);
        let perm = Permutation::try_new(vec![3, 0, 4, 1, 2]).unwrap();
        let h = g.relabel(&perm);
        let sources: Vec<NodeId> = g.nodes().collect();
        let mapped: Vec<NodeId> = sources.iter().map(|&s| perm.apply(s)).collect();
        let bg = betweenness_from_sources(&g, &sources);
        let bh = betweenness_from_sources(&h, &mapped);
        for u in g.nodes() {
            let (a, b) = (bg.score[u as usize], bh.score[perm.apply(u) as usize]);
            assert!((a - b).abs() < 1e-12, "node {u}: {a} vs {b}");
        }
    }

    #[test]
    fn empty_graph() {
        let r = betweenness(&Graph::empty(0), 4, 1);
        assert!(r.score.is_empty());
    }

    #[test]
    fn top_node_is_total_on_nan_scores() {
        // The comparator must stay total when a score is NaN: no panic,
        // and a deterministic winner (positive NaN sorts above finite
        // values under total_cmp; ties break to the smallest id).
        let r = BetweennessResult {
            score: vec![0.5, f64::NAN, 2.0, f64::NAN],
            sources: vec![0],
        };
        assert_eq!(r.top_node(), Some(1));
        let r = BetweennessResult {
            score: vec![-f64::NAN, 3.0, 3.0],
            sources: vec![0],
        };
        assert_eq!(r.top_node(), Some(1), "smallest id among the 3.0 tie");
    }
}
