//! DS — greedy dominating set.
//!
//! The replication's description: repeatedly select the node covering the
//! most still-uncovered nodes, add it to the dominating set, and mark it
//! and its neighbours covered. A node `u` covers itself and its
//! out-neighbours; every node must end up covered.
//!
//! The classic greedy achieves an `H(Δ+1)` approximation. Selection uses a
//! lazy max-heap: gains only decrease, so a popped entry whose recorded
//! gain is stale is re-pushed with its current gain instead of being acted
//! on.

use crate::{GraphAlgorithm, RunCtx};
use gorder_graph::{Graph, NodeId};
use std::collections::BinaryHeap;

/// Result of the greedy dominating-set construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomSetResult {
    /// Selected nodes, in selection order.
    pub set: Vec<NodeId>,
    /// `covered_by[u]` = the selected node that first covered `u`.
    pub covered_by: Vec<NodeId>,
}

impl DomSetResult {
    /// Size of the dominating set.
    pub fn size(&self) -> u32 {
        self.set.len() as u32
    }
}

/// Runs the greedy dominating-set algorithm.
pub fn dominating_set(g: &Graph) -> DomSetResult {
    let n = g.n() as usize;
    let mut gain: Vec<u32> = g.nodes().map(|u| g.out_degree(u) + 1).collect();
    let mut covered = vec![false; n];
    let mut covered_by = vec![NodeId::MAX; n];
    let mut set: Vec<NodeId> = Vec::new();
    let mut heap: BinaryHeap<(u32, NodeId)> =
        (0..n as u32).map(|u| (gain[u as usize], u)).collect();
    let mut remaining = n;

    while remaining > 0 {
        let (claimed, u) = heap.pop().expect("uncovered nodes imply positive gains");
        let current = gain[u as usize];
        if claimed != current {
            heap.push((current, u)); // stale entry: requeue with true gain
            continue;
        }
        if current == 0 {
            continue; // everything u covers is already covered
        }
        set.push(u);
        // Cover u and its out-neighbours; each newly covered node w lowers
        // the gain of every potential coverer of w (w itself and in(w)).
        let mut newly: Vec<NodeId> = Vec::with_capacity(g.out_degree(u) as usize + 1);
        if !covered[u as usize] {
            newly.push(u);
        }
        for &w in g.out_neighbors(u) {
            if !covered[w as usize] {
                newly.push(w);
            }
        }
        for &w in &newly {
            covered[w as usize] = true;
            covered_by[w as usize] = u;
            remaining -= 1;
            gain[w as usize] -= 1;
            for &z in g.in_neighbors(w) {
                gain[z as usize] -= 1;
            }
        }
    }
    DomSetResult { set, covered_by }
}

/// [`GraphAlgorithm`] wrapper for DS.
pub struct Ds;

impl GraphAlgorithm for Ds {
    fn name(&self) -> &'static str {
        "DS"
    }

    fn run(&self, g: &Graph, _ctx: &RunCtx) -> u64 {
        // Greedy tie-breaking depends on ids, so the exact set is not
        // relabeling-invariant; the size is stable enough to be the
        // reported quantity (and what the paper's runtime depends on).
        u64::from(dominating_set(g).size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_dominating(g: &Graph, r: &DomSetResult) {
        let mut covered = vec![false; g.n() as usize];
        for &u in &r.set {
            covered[u as usize] = true;
            for &v in g.out_neighbors(u) {
                covered[v as usize] = true;
            }
        }
        for u in g.nodes() {
            assert!(covered[u as usize], "node {u} not dominated");
        }
    }

    #[test]
    fn star_needs_one() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let r = dominating_set(&g);
        assert_eq!(r.set, vec![0]);
        assert_dominating(&g, &r);
    }

    #[test]
    fn isolated_nodes_must_join() {
        let g = Graph::empty(4);
        let r = dominating_set(&g);
        assert_eq!(r.size(), 4);
        assert_dominating(&g, &r);
    }

    #[test]
    fn directed_coverage_only_via_out_edges() {
        // 1 -> 0: selecting 1 covers both; selecting 0 covers only 0.
        let g = Graph::from_edges(2, &[(1, 0)]);
        let r = dominating_set(&g);
        assert_eq!(r.set, vec![1]);
        assert_dominating(&g, &r);
    }

    #[test]
    fn path_greedy_is_valid() {
        let edges: Vec<(NodeId, NodeId)> = (0..9).map(|u| (u, u + 1)).collect();
        let g = Graph::from_edges(10, &edges);
        let r = dominating_set(&g);
        assert_dominating(&g, &r);
        assert!(r.size() <= 5, "greedy on a 10-path: {}", r.size());
    }

    #[test]
    fn covered_by_points_at_selector() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let r = dominating_set(&g);
        assert_dominating(&g, &r);
        for u in g.nodes() {
            let c = r.covered_by[u as usize];
            assert!(
                c == u || g.has_edge(c, u),
                "covered_by[{u}] = {c} neither self nor in-neighbor"
            );
            assert!(r.set.contains(&c));
        }
    }

    #[test]
    fn greedy_picks_max_gain_first() {
        // hub 0 covers 4 nodes; chain nodes cover 2 each
        let g = Graph::from_edges(7, &[(0, 1), (0, 2), (0, 3), (4, 5), (5, 6)]);
        let r = dominating_set(&g);
        assert_eq!(r.set[0], 0, "hub first");
        assert_dominating(&g, &r);
    }

    #[test]
    fn dense_graph_small_set() {
        // complete bidirected graph on 8 nodes: one node suffices
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in 0..8u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(8, &edges);
        let r = dominating_set(&g);
        assert_eq!(r.size(), 1);
    }

    #[test]
    fn empty() {
        let r = dominating_set(&Graph::empty(0));
        assert_eq!(r.size(), 0);
    }
}
