//! DS — greedy dominating set.
//!
//! The replication's description: repeatedly select the node covering the
//! most still-uncovered nodes, add it to the dominating set, and mark it
//! and its neighbours covered. A node `u` covers itself and its
//! out-neighbours; every node must end up covered.
//!
//! The classic greedy achieves an `H(Δ+1)` approximation. Selection uses a
//! lazy max-heap: gains only decrease, so a popped entry whose recorded
//! gain is stale is re-pushed with its current gain instead of being acted
//! on.
//!
//! Implemented by the engine's DS kernel (one selection per engine
//! iterate); this module re-exports the convenience function and wraps
//! the kernel as a [`GraphAlgorithm`].

use crate::{engine_run, engine_run_plan, ExecPlan, GraphAlgorithm, KernelStats, RunCtx};
use gorder_graph::Graph;

pub use gorder_engine::kernels::domset::{dominating_set, DomSetResult, DsKernel};

/// [`GraphAlgorithm`] wrapper for DS.
pub struct Ds;

impl GraphAlgorithm for Ds {
    fn name(&self) -> &'static str {
        "DS"
    }

    fn run(&self, g: &Graph, ctx: &RunCtx) -> u64 {
        self.run_stats(g, ctx).0
    }

    fn run_stats(&self, g: &Graph, ctx: &RunCtx) -> (u64, KernelStats) {
        engine_run("DS", g, ctx)
    }

    fn run_stats_plan(&self, g: &Graph, ctx: &RunCtx, plan: ExecPlan) -> (u64, KernelStats) {
        engine_run_plan("DS", g, ctx, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::NodeId;

    fn assert_dominating(g: &Graph, r: &DomSetResult) {
        let mut covered = vec![false; g.n() as usize];
        for &u in &r.set {
            covered[u as usize] = true;
            for &v in g.out_neighbors(u) {
                covered[v as usize] = true;
            }
        }
        for u in g.nodes() {
            assert!(covered[u as usize], "node {u} not dominated");
        }
    }

    #[test]
    fn star_needs_one() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let r = dominating_set(&g);
        assert_eq!(r.set, vec![0]);
        assert_dominating(&g, &r);
    }

    #[test]
    fn isolated_nodes_must_join() {
        let g = Graph::empty(4);
        let r = dominating_set(&g);
        assert_eq!(r.size(), 4);
        assert_dominating(&g, &r);
    }

    #[test]
    fn directed_coverage_only_via_out_edges() {
        // 1 -> 0: selecting 1 covers both; selecting 0 covers only 0.
        let g = Graph::from_edges(2, &[(1, 0)]);
        let r = dominating_set(&g);
        assert_eq!(r.set, vec![1]);
        assert_dominating(&g, &r);
    }

    #[test]
    fn path_greedy_is_valid() {
        let edges: Vec<(NodeId, NodeId)> = (0..9).map(|u| (u, u + 1)).collect();
        let g = Graph::from_edges(10, &edges);
        let r = dominating_set(&g);
        assert_dominating(&g, &r);
        assert!(r.size() <= 5, "greedy on a 10-path: {}", r.size());
    }

    #[test]
    fn covered_by_points_at_selector() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let r = dominating_set(&g);
        assert_dominating(&g, &r);
        for u in g.nodes() {
            let c = r.covered_by[u as usize];
            assert!(
                c == u || g.has_edge(c, u),
                "covered_by[{u}] = {c} neither self nor in-neighbor"
            );
            assert!(r.set.contains(&c));
        }
    }

    #[test]
    fn greedy_picks_max_gain_first() {
        // hub 0 covers 4 nodes; chain nodes cover 2 each
        let g = Graph::from_edges(7, &[(0, 1), (0, 2), (0, 3), (4, 5), (5, 6)]);
        let r = dominating_set(&g);
        assert_eq!(r.set[0], 0, "hub first");
        assert_dominating(&g, &r);
    }

    #[test]
    fn dense_graph_small_set() {
        // complete bidirected graph on 8 nodes: one node suffices
        let mut edges = Vec::new();
        for u in 0..8u32 {
            for v in 0..8u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(8, &edges);
        let r = dominating_set(&g);
        assert_eq!(r.size(), 1);
    }

    #[test]
    fn empty() {
        let r = dominating_set(&Graph::empty(0));
        assert_eq!(r.size(), 0);
    }
}
