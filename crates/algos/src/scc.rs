//! SCC — strongly connected components via Tarjan's algorithm.
//!
//! Iterative formulation of Tarjan 1972 (the replication's choice): one
//! DFS pass maintaining discovery indices and low-links, components popped
//! off an auxiliary stack when a root is found. Linear in n + m.
//!
//! Implemented by the engine's SCC kernel; this module re-exports the
//! convenience function and wraps the kernel as a [`GraphAlgorithm`].

use crate::{engine_run, engine_run_plan, ExecPlan, GraphAlgorithm, KernelStats, RunCtx};
use gorder_graph::Graph;

pub use gorder_engine::kernels::scc::{scc, SccKernel, SccResult};

/// [`GraphAlgorithm`] wrapper for SCC.
pub struct Scc;

impl GraphAlgorithm for Scc {
    fn name(&self) -> &'static str {
        "SCC"
    }

    fn run(&self, g: &Graph, ctx: &RunCtx) -> u64 {
        self.run_stats(g, ctx).0
    }

    fn run_stats(&self, g: &Graph, ctx: &RunCtx) -> (u64, KernelStats) {
        engine_run("SCC", g, ctx)
    }

    fn run_stats_plan(&self, g: &Graph, ctx: &RunCtx, plan: ExecPlan) -> (u64, KernelStats) {
        engine_run_plan("SCC", g, ctx, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::{NodeId, Permutation};

    #[test]
    fn single_cycle_is_one_component() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = scc(&g);
        assert_eq!(r.count(), 1);
        assert_eq!(r.largest(), 4);
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = scc(&g);
        assert_eq!(r.count(), 4);
        assert_eq!(r.largest(), 1);
    }

    #[test]
    fn two_cycles_with_bridge() {
        // cycle {0,1,2}, cycle {3,4}, bridge 2 -> 3
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3)]);
        let r = scc(&g);
        assert_eq!(r.count(), 2);
        assert_eq!(r.component[0], r.component[1]);
        assert_eq!(r.component[1], r.component[2]);
        assert_eq!(r.component[3], r.component[4]);
        assert_ne!(r.component[0], r.component[3]);
        let mut sizes = r.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // Floyd–Warshall reads naturally with indices
    fn members_are_mutually_reachable_invariant() {
        // self-check on a small random-ish graph using Floyd–Warshall
        let edges = [
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 2),
            (5, 0),
            (4, 5),
        ];
        let g = Graph::from_edges(6, &edges);
        let r = scc(&g);
        let n = 6usize;
        let mut reach = vec![vec![false; n]; n];
        for i in 0..n {
            reach[i][i] = true;
        }
        for &(u, v) in &edges {
            reach[u as usize][v as usize] = true;
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    reach[i][j] |= reach[i][k] && reach[k][j];
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                let same = r.component[i] == r.component[j];
                assert_eq!(same, reach[i][j] && reach[j][i], "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn checksum_invariant_under_relabel() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (4, 5)]);
        let perm = Permutation::try_new(vec![5, 3, 0, 1, 4, 2]).unwrap();
        let ctx = RunCtx::default();
        assert_eq!(Scc.run(&g, &ctx), Scc.run(&g.relabel(&perm), &ctx));
    }

    #[test]
    fn deep_cycle_iterative_safe() {
        let n = 150_000u32;
        let mut edges: Vec<(NodeId, NodeId)> = (0..n - 1).map(|u| (u, u + 1)).collect();
        edges.push((n - 1, 0));
        let g = Graph::from_edges(n, &edges);
        let r = scc(&g);
        assert_eq!(r.count(), 1);
        assert_eq!(r.largest(), n);
    }

    #[test]
    fn empty_and_isolated() {
        assert_eq!(scc(&Graph::empty(0)).count(), 0);
        let r = scc(&Graph::empty(3));
        assert_eq!(r.count(), 3);
        assert_eq!(r.largest(), 1);
    }
}
