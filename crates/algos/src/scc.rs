//! SCC — strongly connected components via Tarjan's algorithm.
//!
//! Iterative formulation of Tarjan 1972 (the replication's choice): one
//! DFS pass maintaining discovery indices and low-links, components popped
//! off an auxiliary stack when a root is found. Linear in n + m.

use crate::{GraphAlgorithm, RunCtx};
use gorder_graph::{Graph, NodeId};

/// Result of an SCC decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccResult {
    /// `component[u]` = dense component id (0-based, reverse topological
    /// discovery order as in Tarjan).
    pub component: Vec<u32>,
    /// Size of each component.
    pub sizes: Vec<u32>,
}

impl SccResult {
    /// Number of strongly connected components.
    pub fn count(&self) -> u32 {
        self.sizes.len() as u32
    }

    /// Size of the largest component (0 on the empty graph).
    pub fn largest(&self) -> u32 {
        self.sizes.iter().copied().max().unwrap_or(0)
    }
}

const UNVISITED: u32 = u32::MAX;

/// Computes strongly connected components with iterative Tarjan.
pub fn scc(g: &Graph) -> SccResult {
    let n = g.n() as usize;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![UNVISITED; n];
    let mut sizes: Vec<u32> = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    // call frames: (node, next child offset)
    let mut frames: Vec<(NodeId, u32)> = Vec::new();

    for root in g.nodes() {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (u, ref mut child)) = frames.last_mut() {
            let neighbors = g.out_neighbors(u);
            if (*child as usize) < neighbors.len() {
                let v = neighbors[*child as usize];
                *child += 1;
                if index[v as usize] == UNVISITED {
                    index[v as usize] = next_index;
                    lowlink[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                    frames.push((v, 0));
                } else if on_stack[v as usize] {
                    lowlink[u as usize] = lowlink[u as usize].min(index[v as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[u as usize]);
                }
                if lowlink[u as usize] == index[u as usize] {
                    // u is a root: pop its component
                    let id = sizes.len() as u32;
                    let mut size = 0;
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        component[w as usize] = id;
                        size += 1;
                        if w == u {
                            break;
                        }
                    }
                    sizes.push(size);
                }
            }
        }
    }
    SccResult { component, sizes }
}

/// [`GraphAlgorithm`] wrapper for SCC.
pub struct Scc;

impl GraphAlgorithm for Scc {
    fn name(&self) -> &'static str {
        "SCC"
    }

    fn run(&self, g: &Graph, _ctx: &RunCtx) -> u64 {
        let r = scc(g);
        // Component count and the multiset of sizes are invariant under
        // relabeling; Σ size² is a cheap multiset fingerprint.
        r.sizes.iter().fold(u64::from(r.count()), |acc, &s| {
            acc.wrapping_add(u64::from(s) * u64::from(s))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::Permutation;

    #[test]
    fn single_cycle_is_one_component() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = scc(&g);
        assert_eq!(r.count(), 1);
        assert_eq!(r.largest(), 4);
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = scc(&g);
        assert_eq!(r.count(), 4);
        assert_eq!(r.largest(), 1);
    }

    #[test]
    fn two_cycles_with_bridge() {
        // cycle {0,1,2}, cycle {3,4}, bridge 2 -> 3
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3)]);
        let r = scc(&g);
        assert_eq!(r.count(), 2);
        assert_eq!(r.component[0], r.component[1]);
        assert_eq!(r.component[1], r.component[2]);
        assert_eq!(r.component[3], r.component[4]);
        assert_ne!(r.component[0], r.component[3]);
        let mut sizes = r.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // Floyd–Warshall reads naturally with indices
    fn members_are_mutually_reachable_invariant() {
        // self-check on a small random-ish graph using Floyd–Warshall
        let edges = [
            (0, 1),
            (1, 2),
            (2, 0),
            (2, 3),
            (3, 4),
            (4, 2),
            (5, 0),
            (4, 5),
        ];
        let g = Graph::from_edges(6, &edges);
        let r = scc(&g);
        let n = 6usize;
        let mut reach = vec![vec![false; n]; n];
        for i in 0..n {
            reach[i][i] = true;
        }
        for &(u, v) in &edges {
            reach[u as usize][v as usize] = true;
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    reach[i][j] |= reach[i][k] && reach[k][j];
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                let same = r.component[i] == r.component[j];
                assert_eq!(same, reach[i][j] && reach[j][i], "pair ({i}, {j})");
            }
        }
    }

    #[test]
    fn checksum_invariant_under_relabel() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (4, 5)]);
        let perm = Permutation::try_new(vec![5, 3, 0, 1, 4, 2]).unwrap();
        let ctx = RunCtx::default();
        assert_eq!(Scc.run(&g, &ctx), Scc.run(&g.relabel(&perm), &ctx));
    }

    #[test]
    fn deep_cycle_iterative_safe() {
        let n = 150_000u32;
        let mut edges: Vec<(NodeId, NodeId)> = (0..n - 1).map(|u| (u, u + 1)).collect();
        edges.push((n - 1, 0));
        let g = Graph::from_edges(n, &edges);
        let r = scc(&g);
        assert_eq!(r.count(), 1);
        assert_eq!(r.largest(), n);
    }

    #[test]
    fn empty_and_isolated() {
        assert_eq!(scc(&Graph::empty(0)).count(), 0);
        let r = scc(&Graph::empty(3));
        assert_eq!(r.count(), 3);
        assert_eq!(r.largest(), 1);
    }
}
