//! Diam — diameter estimation by repeated shortest paths.
//!
//! The paper's method: run the SP algorithm (round-based Bellman–Ford)
//! from `R` random source nodes and report the largest finite distance
//! seen. The paper uses `R = 5000`; the estimate's accuracy is beside the
//! point — Diam exists in the benchmark suite as "many SP runs back to
//! back", the heaviest workload in Figure 5.
//!
//! Implemented by the engine's Diam kernel (one fully-relaxed source per
//! engine iterate, distance buffer reused across sources); this module
//! re-exports the convenience functions and wraps the kernel as a
//! [`GraphAlgorithm`].

use crate::{engine_run, engine_run_plan, ExecPlan, GraphAlgorithm, KernelStats, RunCtx};
use gorder_graph::Graph;

pub use gorder_engine::kernels::diameter::{
    diameter, diameter_from_sources, DiamKernel, DiameterResult,
};

/// [`GraphAlgorithm`] wrapper for Diam.
pub struct Diam;

impl GraphAlgorithm for Diam {
    fn name(&self) -> &'static str {
        "Diam"
    }

    fn run(&self, g: &Graph, ctx: &RunCtx) -> u64 {
        self.run_stats(g, ctx).0
    }

    fn run_stats(&self, g: &Graph, ctx: &RunCtx) -> (u64, KernelStats) {
        engine_run("Diam", g, ctx)
    }

    fn run_stats_plan(&self, g: &Graph, ctx: &RunCtx, plan: ExecPlan) -> (u64, KernelStats) {
        engine_run_plan("Diam", g, ctx, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::NodeId;

    #[test]
    fn exact_on_path_when_endpoint_sampled() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r = diameter_from_sources(&g, &[0]);
        assert_eq!(r.lower_bound, 4);
    }

    #[test]
    fn lower_bound_property() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        // interior source gives a smaller eccentricity — still a valid LB
        let r = diameter_from_sources(&g, &[2]);
        assert_eq!(r.lower_bound, 2);
        assert!(r.lower_bound <= 4);
    }

    #[test]
    fn more_sources_never_decrease_bound() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let few = diameter(&g, 2, 9).lower_bound;
        let many = diameter(&g, 12, 9).lower_bound;
        assert!(many >= few);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)]);
        assert_eq!(diameter(&g, 5, 77), diameter(&g, 5, 77));
    }

    #[test]
    fn cycle_diameter() {
        let n = 8u32;
        let edges: Vec<(NodeId, NodeId)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
        let g = Graph::from_edges(n, &edges);
        // directed cycle: eccentricity of every node is n − 1
        let r = diameter(&g, 3, 4);
        assert_eq!(r.lower_bound, 7);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(diameter(&Graph::empty(0), 5, 1).lower_bound, 0);
    }

    #[test]
    fn one_iteration_per_source() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let ctx = RunCtx {
            diameter_samples: 3,
            ..Default::default()
        };
        let (_, stats) = Diam.run_stats(&g, &ctx);
        assert_eq!(stats.iterations, 3);
    }
}
