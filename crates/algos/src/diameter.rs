//! Diam — diameter estimation by repeated shortest paths.
//!
//! The paper's method: run the SP algorithm (round-based Bellman–Ford)
//! from `R` random source nodes and report the largest finite distance
//! seen. The paper uses `R = 5000`; the estimate's accuracy is beside the
//! point — Diam exists in the benchmark suite as "many SP runs back to
//! back", the heaviest workload in Figure 5.

use crate::sp::bellman_ford;
use crate::{GraphAlgorithm, RunCtx};
use gorder_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a diameter estimation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiameterResult {
    /// Largest finite distance observed over all sampled sources.
    pub lower_bound: u32,
    /// Sources actually used.
    pub sources: Vec<NodeId>,
}

/// Estimates the diameter from explicit sources (deterministic; used by
/// tests and by cross-ordering equivalence checks with mapped sources).
pub fn diameter_from_sources(g: &Graph, sources: &[NodeId]) -> DiameterResult {
    let mut best = 0;
    for &s in sources {
        best = best.max(bellman_ford(g, s).eccentricity());
    }
    DiameterResult {
        lower_bound: best,
        sources: sources.to_vec(),
    }
}

/// Estimates the diameter from `samples` pseudo-random sources drawn with
/// the given seed.
pub fn diameter(g: &Graph, samples: u32, seed: u64) -> DiameterResult {
    if g.n() == 0 {
        return DiameterResult {
            lower_bound: 0,
            sources: Vec::new(),
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let sources: Vec<NodeId> = (0..samples).map(|_| rng.gen_range(0..g.n())).collect();
    diameter_from_sources(g, &sources)
}

/// [`GraphAlgorithm`] wrapper for Diam.
pub struct Diam;

impl GraphAlgorithm for Diam {
    fn name(&self) -> &'static str {
        "Diam"
    }

    fn run(&self, g: &Graph, ctx: &RunCtx) -> u64 {
        u64::from(diameter(g, ctx.diameter_samples, ctx.seed).lower_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_path_when_endpoint_sampled() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r = diameter_from_sources(&g, &[0]);
        assert_eq!(r.lower_bound, 4);
    }

    #[test]
    fn lower_bound_property() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        // interior source gives a smaller eccentricity — still a valid LB
        let r = diameter_from_sources(&g, &[2]);
        assert_eq!(r.lower_bound, 2);
        assert!(r.lower_bound <= 4);
    }

    #[test]
    fn more_sources_never_decrease_bound() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let few = diameter(&g, 2, 9).lower_bound;
        let many = diameter(&g, 12, 9).lower_bound;
        assert!(many >= few);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)]);
        assert_eq!(diameter(&g, 5, 77), diameter(&g, 5, 77));
    }

    #[test]
    fn cycle_diameter() {
        let n = 8u32;
        let edges: Vec<(NodeId, NodeId)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
        let g = Graph::from_edges(n, &edges);
        // directed cycle: eccentricity of every node is n − 1
        let r = diameter(&g, 3, 4);
        assert_eq!(r.lower_bound, 7);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(diameter(&Graph::empty(0), 5, 1).lower_bound, 0);
    }
}
