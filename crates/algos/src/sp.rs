//! SP — single-source shortest paths by Bellman–Ford.
//!
//! The paper deliberately uses round-based Bellman–Ford on the unweighted
//! graph (not BFS): every round scans *all* edges and relaxes those that
//! improve a distance, stopping when a round changes nothing. With hop
//! distances that is O(Δ·m) for graph diameter Δ — cheap on small-diameter
//! real-world graphs, and its full-edge-scan access pattern is exactly the
//! kind of attribute-array traffic that node ordering accelerates.
//!
//! Implemented by the engine's SP kernel (one relaxation round per engine
//! iterate); this module re-exports the convenience function and wraps
//! the kernel as a [`GraphAlgorithm`].

use crate::{engine_run, engine_run_plan, ExecPlan, GraphAlgorithm, KernelStats, RunCtx};
use gorder_graph::Graph;

pub use gorder_engine::kernels::sp::{bellman_ford, SpKernel, SpResult, UNREACHABLE};

/// [`GraphAlgorithm`] wrapper for SP.
pub struct Sp;

impl GraphAlgorithm for Sp {
    fn name(&self) -> &'static str {
        "SP"
    }

    fn run(&self, g: &Graph, ctx: &RunCtx) -> u64 {
        self.run_stats(g, ctx).0
    }

    fn run_stats(&self, g: &Graph, ctx: &RunCtx) -> (u64, KernelStats) {
        engine_run("SP", g, ctx)
    }

    fn run_stats_plan(&self, g: &Graph, ctx: &RunCtx, plan: ExecPlan) -> (u64, KernelStats) {
        engine_run_plan("SP", g, ctx, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::Permutation;

    #[test]
    fn distances_on_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = bellman_ford(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 3]);
        assert_eq!(r.eccentricity(), 3);
        assert_eq!(r.reached(), 4);
    }

    #[test]
    fn shortest_of_two_routes() {
        // 0 -> 1 -> 2 -> 4 and 0 -> 3 -> 4: both reach 4 in ≥2 hops; dist 4 = 2
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 4), (0, 3), (3, 4)]);
        let r = bellman_ford(&g, 0);
        assert_eq!(r.dist[4], 2);
    }

    #[test]
    fn unreachable_marked() {
        let g = Graph::from_edges(3, &[(1, 2)]);
        let r = bellman_ford(&g, 0);
        assert_eq!(r.dist, vec![0, UNREACHABLE, UNREACHABLE]);
        assert_eq!(r.reached(), 1);
        assert_eq!(r.eccentricity(), 0);
    }

    #[test]
    fn direction_respected() {
        let g = Graph::from_edges(2, &[(1, 0)]);
        let r = bellman_ford(&g, 0);
        assert_eq!(r.dist[1], UNREACHABLE);
    }

    #[test]
    fn rounds_bounded_by_diameter_plus_one() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let r = bellman_ford(&g, 0);
        // node-order scanning settles the whole ascending path in round 1
        assert!(r.rounds <= 6, "rounds = {}", r.rounds);
        assert_eq!(r.dist[5], 5);
    }

    #[test]
    fn matches_bfs_depths() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (2, 5),
                (6, 0),
            ],
        );
        let sp = bellman_ford(&g, 0);
        let bfs = crate::bfs::bfs(&g, 0);
        for u in 0..7usize {
            let bd = if u == 6 { UNREACHABLE } else { bfs.depth[u] };
            assert_eq!(sp.dist[u], bd, "node {u}");
        }
    }

    #[test]
    fn checksum_invariant_with_mapped_source() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 3), (3, 5)]);
        let perm = Permutation::try_new(vec![2, 4, 5, 1, 0, 3]).unwrap();
        let a = Sp.run(
            &g,
            &RunCtx {
                source: Some(0),
                ..Default::default()
            },
        );
        let b = Sp.run(
            &g.relabel(&perm),
            &RunCtx {
                source: Some(perm.apply(0)),
                ..Default::default()
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn empty() {
        let r = bellman_ford(&Graph::empty(0), 0);
        assert_eq!(r.rounds, 0);
    }
}
