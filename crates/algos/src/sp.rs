//! SP — single-source shortest paths by Bellman–Ford.
//!
//! The paper deliberately uses round-based Bellman–Ford on the unweighted
//! graph (not BFS): every round scans *all* edges and relaxes those that
//! improve a distance, stopping when a round changes nothing. With hop
//! distances that is O(Δ·m) for graph diameter Δ — cheap on small-diameter
//! real-world graphs, and its full-edge-scan access pattern is exactly the
//! kind of attribute-array traffic that node ordering accelerates.

use crate::{GraphAlgorithm, RunCtx};
use gorder_graph::{Graph, NodeId};

/// Distance value for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Result of a Bellman–Ford run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpResult {
    /// Hop distance from the source (`UNREACHABLE` if not reachable).
    pub dist: Vec<u32>,
    /// Number of full-edge-scan rounds executed (≤ diameter + 1).
    pub rounds: u32,
}

impl SpResult {
    /// Number of reachable nodes (including the source).
    pub fn reached(&self) -> u32 {
        self.dist.iter().filter(|&&d| d != UNREACHABLE).count() as u32
    }

    /// Maximum finite distance (the source's eccentricity).
    pub fn eccentricity(&self) -> u32 {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }
}

/// Round-based Bellman–Ford from `source` over unit edge weights.
pub fn bellman_ford(g: &Graph, source: NodeId) -> SpResult {
    let n = g.n() as usize;
    let mut dist = vec![UNREACHABLE; n];
    if n == 0 {
        return SpResult { dist, rounds: 0 };
    }
    dist[source as usize] = 0;
    let mut rounds = 0;
    loop {
        rounds += 1;
        let mut changed = false;
        for u in g.nodes() {
            let du = dist[u as usize];
            if du == UNREACHABLE {
                continue;
            }
            let cand = du + 1;
            for &v in g.out_neighbors(u) {
                if cand < dist[v as usize] {
                    dist[v as usize] = cand;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    SpResult { dist, rounds }
}

/// [`GraphAlgorithm`] wrapper for SP.
pub struct Sp;

impl GraphAlgorithm for Sp {
    fn name(&self) -> &'static str {
        "SP"
    }

    fn run(&self, g: &Graph, ctx: &RunCtx) -> u64 {
        if g.n() == 0 {
            return 0;
        }
        let r = bellman_ford(g, ctx.source_for(g));
        // Distances from a mapped source are invariant under relabeling.
        r.dist
            .iter()
            .filter(|&&d| d != UNREACHABLE)
            .fold(0u64, |a, &d| a.wrapping_add(u64::from(d)).wrapping_add(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::Permutation;

    #[test]
    fn distances_on_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let r = bellman_ford(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 3]);
        assert_eq!(r.eccentricity(), 3);
        assert_eq!(r.reached(), 4);
    }

    #[test]
    fn shortest_of_two_routes() {
        // 0 -> 1 -> 2 -> 4 and 0 -> 3 -> 4: both reach 4 in ≥2 hops; dist 4 = 2
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 4), (0, 3), (3, 4)]);
        let r = bellman_ford(&g, 0);
        assert_eq!(r.dist[4], 2);
    }

    #[test]
    fn unreachable_marked() {
        let g = Graph::from_edges(3, &[(1, 2)]);
        let r = bellman_ford(&g, 0);
        assert_eq!(r.dist, vec![0, UNREACHABLE, UNREACHABLE]);
        assert_eq!(r.reached(), 1);
        assert_eq!(r.eccentricity(), 0);
    }

    #[test]
    fn direction_respected() {
        let g = Graph::from_edges(2, &[(1, 0)]);
        let r = bellman_ford(&g, 0);
        assert_eq!(r.dist[1], UNREACHABLE);
    }

    #[test]
    fn rounds_bounded_by_diameter_plus_one() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let r = bellman_ford(&g, 0);
        // node-order scanning settles the whole ascending path in round 1
        assert!(r.rounds <= 6, "rounds = {}", r.rounds);
        assert_eq!(r.dist[5], 5);
    }

    #[test]
    fn matches_bfs_depths() {
        let g = Graph::from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (2, 5),
                (6, 0),
            ],
        );
        let sp = bellman_ford(&g, 0);
        let bfs = crate::bfs::bfs(&g, 0);
        for u in 0..7usize {
            let bd = if u == 6 { UNREACHABLE } else { bfs.depth[u] };
            assert_eq!(sp.dist[u], bd, "node {u}");
        }
    }

    #[test]
    fn checksum_invariant_with_mapped_source() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 3), (3, 5)]);
        let perm = Permutation::try_new(vec![2, 4, 5, 1, 0, 3]).unwrap();
        let a = Sp.run(
            &g,
            &RunCtx {
                source: Some(0),
                ..Default::default()
            },
        );
        let b = Sp.run(
            &g.relabel(&perm),
            &RunCtx {
                source: Some(perm.apply(0)),
                ..Default::default()
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn empty() {
        let r = bellman_ford(&Graph::empty(0), 0);
        assert_eq!(r.rounds, 0);
    }
}
