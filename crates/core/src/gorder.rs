//! The Gorder windowed greedy (Algorithm GO of the paper).
//!
//! Gorder lays nodes out one at a time. At every step it appends the
//! unplaced node with the highest total proximity `Σ S(·, v)` to the nodes
//! `v` currently inside the trailing window of size `w`. Because each
//! window entry/exit changes any candidate's score by exactly ±1 per shared
//! relationship, all score maintenance runs on the O(1)-update
//! [`UnitHeap`]:
//!
//! * when `v` **enters** the window: `+1` to every out-neighbour of `v`
//!   (edge `v → u`), `+1` to every in-neighbour of `v` (edge `u → v`), and
//!   `+1` to every other out-neighbour `u` of every in-neighbour `x` of `v`
//!   (the common in-neighbour `x` makes `u` and `v` siblings);
//! * when `v` **exits** the window (it was placed `w` steps ago): the same
//!   updates with `−1`.
//!
//! The paper proves this greedy achieves at least `1/(2w)` of the optimal
//! `F(π)` and observes that propagating sibling updates *through* very
//! high-degree hubs dominates the running time on power-law graphs, so the
//! implementation may skip propagation through hubs above a degree
//! threshold (see [`GorderBuilder::hub_threshold`]).
//!
//! ## Coalesced window deltas
//!
//! A candidate is typically touched several times per placement step —
//! once per shared relationship with the entering node, and again with
//! opposite sign for the exiting one. Issuing each `±1` as its own heap
//! operation turns every touch into an unlink + push on the bucket lists
//! (three random-access arrays plus the bucket heads). Instead, the build
//! loop accumulates the step's enter **and** exit deltas into a reusable
//! dense scratch buffer (`DeltaScratch`) keyed by candidate, pre-filters
//! already-placed candidates with a placed bitset before any heap work,
//! and then applies **one net [`UnitHeap::update`] per touched candidate**.
//!
//! The coalesced path is permutation-preserving: within a bucket the unit
//! heap pops in LIFO order of the last key change, so replaying each
//! candidate's *final* state in the order of its *last* touch in the unit
//! stream reproduces the per-unit bucket layout exactly — including
//! net-zero touches, which still move a candidate to its bucket head (see
//! `reference` in this module's tests for the per-unit oracle the
//! equivalence is checked against, and `tests/golden_perms.rs` for the
//! pre-optimisation digests).

use crate::budget::{Budget, DegradeReason, ExecOutcome, CHECK_STRIDE};
use crate::unitheap::UnitHeap;
use gorder_graph::{Graph, NodeId, Permutation};

/// Configuration builder for [`Gorder`].
///
/// ```
/// use gorder_core::GorderBuilder;
/// let gorder = GorderBuilder::new().window(5).build();
/// ```
#[derive(Debug, Clone)]
pub struct GorderBuilder {
    window: u32,
    hub_threshold: Option<u32>,
}

impl GorderBuilder {
    /// Defaults: `window = 5` (the paper's choice), exact sibling
    /// propagation (no hub skipping). Skipping saves time on graphs whose
    /// hubs have extreme *out*-degree, but silently weakens the sibling
    /// signal exactly where it is strongest (e.g. hub-centred blocks), so
    /// it is opt-in via [`GorderBuilder::hub_threshold`].
    pub fn new() -> Self {
        GorderBuilder {
            window: 5,
            hub_threshold: None,
        }
    }

    /// Window size `w ≥ 1`. The paper tunes this on PageRank/flickr and
    /// settles on 5 (its Figure 8; the replication's Figure 4 finds a
    /// slightly better plateau at 64–2048, at higher ordering cost).
    pub fn window(mut self, w: u32) -> Self {
        assert!(w >= 1, "window must be at least 1");
        self.window = w;
        self
    }

    /// Sibling updates are not propagated through in-neighbours whose
    /// out-degree exceeds this threshold (`None` = exact, the default).
    /// This is the paper's practical optimisation for power-law hubs;
    /// enable it when `Σ out-degree²` makes exact propagation too slow,
    /// at some cost in ordering quality around hub-centred blocks.
    pub fn hub_threshold(mut self, t: Option<u32>) -> Self {
        self.hub_threshold = t;
        self
    }

    /// Finalises the configuration.
    pub fn build(self) -> Gorder {
        Gorder {
            window: self.window,
            hub_threshold: self.hub_threshold,
        }
    }
}

impl Default for GorderBuilder {
    fn default() -> Self {
        GorderBuilder::new()
    }
}

/// Counters describing one Gorder run (for tests, ablations and the
/// scalability analysis of Table 2).
///
/// These are plain data: registry export happens exactly once per run,
/// in the unified ordering runner (`gorder_orders::run_ordering`), which
/// folds these counters into its `OrderStats` — never here, so a run
/// can't double-count depending on which compute path the caller took.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GorderStats {
    /// Coalesced heap updates applied with a **positive** net key change
    /// (one per touched candidate per placement step, not one per `+1`).
    pub increments: u64,
    /// Coalesced heap updates applied with a **negative** net key change.
    pub decrements: u64,
    /// Total max-key pops from the unit heap (one per greedily placed
    /// node after the seed).
    pub pops: u64,
    /// Sibling propagations skipped due to the hub threshold.
    pub hub_skips: u64,
    /// Coalesced heap updates whose net key change was **zero** — pure
    /// bucket-position refreshes, applied only to keep the per-unit
    /// LIFO tie-breaking intact.
    pub refreshes: u64,
}

impl GorderStats {
    /// Merges another run's (or chunk's) counters into this one — how
    /// the partition-parallel driver aggregates per-worker stats.
    pub fn merge(&mut self, other: &GorderStats) {
        self.increments += other.increments;
        self.decrements += other.decrements;
        self.pops += other.pops;
        self.hub_skips += other.hub_skips;
        self.refreshes += other.refreshes;
    }

    /// Total heap bucket moves this run performed (every coalesced
    /// update is exactly one unlink + push, whatever its net sign).
    pub fn heap_updates(&self) -> u64 {
        self.increments + self.decrements + self.refreshes
    }
}

/// Reusable per-run scratch for coalescing one placement step's window
/// deltas: a dense net-delta buffer keyed by candidate plus the touch
/// stream needed to replay candidates in last-touch order. All buffers
/// are allocated once per run and cleared incrementally (`delta` and
/// `seen` only at the entries actually touched), so steady-state steps
/// do no allocation.
struct DeltaScratch {
    /// Net pending key change per candidate; non-zero only between
    /// `accumulate` and `flush` for touched candidates.
    delta: Vec<i32>,
    /// Every touch of this step, in the exact per-unit stream order.
    events: Vec<NodeId>,
    /// Deduped touch stream in *reverse* last-touch order (scratch for
    /// `flush`).
    order: Vec<NodeId>,
    /// Epoch stamps backing the dedup (no clearing between steps).
    seen: Vec<u64>,
    /// Current dedup epoch; bumped once per flush.
    epoch: u64,
    /// Placed bitset: candidates already laid out are filtered here,
    /// before any delta accounting or heap lookup.
    placed: Vec<bool>,
}

impl DeltaScratch {
    fn new(n: u32) -> Self {
        let n = n as usize;
        DeltaScratch {
            delta: vec![0; n],
            events: Vec::new(),
            order: Vec::new(),
            seen: vec![0; n],
            epoch: 0,
            placed: vec![false; n],
        }
    }

    #[inline]
    fn touch(&mut self, u: NodeId, sign: i32) {
        if self.placed[u as usize] {
            return;
        }
        self.delta[u as usize] += sign;
        self.events.push(u);
    }

    /// Accumulates the ±1 score updates triggered by `v` entering
    /// (`sign = 1`) or leaving (`sign = -1`) the window, in the exact
    /// order the per-unit implementation issued them.
    fn accumulate(
        &mut self,
        g: &Graph,
        v: NodeId,
        sign: i32,
        hub_threshold: u32,
        stats: &mut GorderStats,
    ) {
        // Neighbour score via out-edges of v: S_n(u, v) counts edge v → u.
        for &u in g.out_neighbors(v) {
            self.touch(u, sign);
        }
        for &x in g.in_neighbors(v) {
            // Neighbour score via in-edges of v: S_n counts edge x → v.
            self.touch(x, sign);
            // Sibling score: x is a common in-neighbour of v and of every
            // other out-neighbour u of x.
            if g.out_degree(x) > hub_threshold {
                stats.hub_skips += 1;
                continue;
            }
            for &u in g.out_neighbors(x) {
                if u != v {
                    self.touch(u, sign);
                }
            }
        }
    }

    /// Applies one net heap update per touched candidate, in the order
    /// of each candidate's **last** touch in the accumulated stream.
    ///
    /// That order is the tie-breaking contract: the unit heap pops LIFO
    /// within a bucket, and under per-unit updates a candidate ends up
    /// at the head of its final bucket at the moment of its last touch.
    /// Replaying final states in last-touch order (net-zero refreshes
    /// included) therefore reproduces the per-unit bucket layout — and
    /// the permutation — byte for byte.
    fn flush(&mut self, heap: &mut UnitHeap, stats: &mut GorderStats) {
        self.epoch += 1;
        self.order.clear();
        for &u in self.events.iter().rev() {
            if self.seen[u as usize] != self.epoch {
                self.seen[u as usize] = self.epoch;
                self.order.push(u);
            }
        }
        for &u in self.order.iter().rev() {
            let d = std::mem::take(&mut self.delta[u as usize]);
            heap.update(u, i64::from(d));
            match d.cmp(&0) {
                std::cmp::Ordering::Greater => stats.increments += 1,
                std::cmp::Ordering::Less => stats.decrements += 1,
                std::cmp::Ordering::Equal => stats.refreshes += 1,
            }
        }
        self.events.clear();
    }
}

/// The configured Gorder ordering algorithm. See the module docs.
#[derive(Debug, Clone)]
pub struct Gorder {
    window: u32,
    hub_threshold: Option<u32>,
}

impl Gorder {
    /// Gorder with the paper's defaults (`w = 5`).
    pub fn with_defaults() -> Self {
        GorderBuilder::new().build()
    }

    /// The configured window size.
    pub fn window_size(&self) -> u32 {
        self.window
    }

    /// The configured hub threshold (`None` = exact propagation).
    pub fn hub_threshold(&self) -> Option<u32> {
        self.hub_threshold
    }

    /// Computes the Gorder permutation (`old id → new id`).
    pub fn compute(&self, g: &Graph) -> Permutation {
        self.compute_with_stats(g).0
    }

    /// Computes the permutation along with update counters.
    pub fn compute_with_stats(&self, g: &Graph) -> (Permutation, GorderStats) {
        let _span = gorder_obs::span("gorder.build");
        let n = g.n();
        if n == 0 {
            return (Permutation::identity(0), GorderStats::default());
        }
        let (placement, stats, stop) = self.greedy(g, None);
        debug_assert!(stop.is_none(), "unbudgeted greedy cannot stop early");
        let perm = Permutation::from_placement(&placement)
            .expect("greedy placement covers every node exactly once");
        (perm, stats)
    }

    /// The windowed greedy build loop shared by the plain and budgeted
    /// entry points. Returns the (possibly partial, if the budget ran
    /// out) placement, the run counters, and the degrade reason if any.
    fn greedy(
        &self,
        g: &Graph,
        budget: Option<&Budget>,
    ) -> (Vec<NodeId>, GorderStats, Option<DegradeReason>) {
        let n = g.n();
        let w = self.window as usize;
        let hub = self.hub_threshold.unwrap_or(u32::MAX);
        let mut stats = GorderStats::default();
        let mut placement: Vec<NodeId> = Vec::with_capacity(n as usize);

        // Checked before the seed is placed so that a zero budget degrades
        // all the way down the ladder to pure ChDFS.
        let mut stop = budget.and_then(|b| b.exhausted(0));
        if stop.is_none() {
            let mut heap = UnitHeap::new(n);
            let mut scratch = DeltaScratch::new(n);
            // Seed with the highest in-degree node: it has the most
            // siblings to pull in behind it. Ties break toward the
            // smallest id.
            let seed = (0..n)
                .max_by_key(|&u| (g.in_degree(u), std::cmp::Reverse(u)))
                .expect("non-empty graph");
            heap.remove(seed);
            scratch.placed[seed as usize] = true;
            placement.push(seed);
            scratch.accumulate(g, seed, 1, hub, &mut stats);
            scratch.flush(&mut heap, &mut stats);

            while let Some(v) = heap.pop_max() {
                stats.pops += 1;
                scratch.placed[v as usize] = true;
                placement.push(v);
                scratch.accumulate(g, v, 1, hub, &mut stats);
                if placement.len() > w {
                    let expiring = placement[placement.len() - 1 - w];
                    scratch.accumulate(g, expiring, -1, hub, &mut stats);
                }
                // One net heap update per candidate the enter + exit
                // deltas touched, instead of a stream of ±1 operations.
                scratch.flush(&mut heap, &mut stats);
                if let Some(b) = budget {
                    let done = placement.len() as u64;
                    if done.is_multiple_of(CHECK_STRIDE) {
                        stop = b.exhausted(done);
                        if stop.is_some() {
                            break;
                        }
                    }
                }
            }
        }
        (placement, stats, stop)
    }

    /// Anytime variant of [`Gorder::compute`]: runs the greedy under a
    /// [`Budget`], and on exhaustion appends every unplaced node in
    /// children-first DFS discovery order (the ChDFS baseline restricted
    /// to the unplaced remainder). The result is always a valid
    /// permutation; a degraded one interpolates between full Gorder and
    /// pure ChDFS — with a zero budget it *is* exactly ChDFS.
    pub fn compute_budgeted(&self, g: &Graph, budget: &Budget) -> ExecOutcome<Permutation> {
        self.compute_budgeted_with_stats(g, budget).0
    }

    /// Like [`Gorder::compute_budgeted`] but also returns the heap update
    /// counters accumulated before the budget ran out.
    pub fn compute_budgeted_with_stats(
        &self,
        g: &Graph,
        budget: &Budget,
    ) -> (ExecOutcome<Permutation>, GorderStats) {
        if budget.is_unlimited() {
            let (perm, stats) = self.compute_with_stats(g);
            return (ExecOutcome::Completed(perm), stats);
        }
        let n = g.n();
        if n == 0 {
            return (
                ExecOutcome::Completed(Permutation::identity(0)),
                GorderStats::default(),
            );
        }
        let _span = gorder_obs::span("gorder.build");
        let (mut placement, stats, stop) = self.greedy(g, Some(budget));
        let outcome = match stop {
            None => {
                let perm = Permutation::from_placement(&placement)
                    .expect("greedy placement covers every node exactly once");
                ExecOutcome::Completed(perm)
            }
            Some(reason) => {
                chdfs_fill(g, &mut placement);
                let perm = Permutation::from_placement(&placement)
                    .expect("DFS fill covers every remaining node exactly once");
                ExecOutcome::Degraded(perm, reason)
            }
        };
        (outcome, stats)
    }
}

/// Appends every node not yet in `placement` in children-first DFS
/// discovery order, starting from the unplaced node of maximum total
/// degree (ties to the smallest id) with id-order restarts — the exact
/// traversal of the ChDFS baseline, restricted to the unplaced set.
fn chdfs_fill(g: &Graph, placement: &mut Vec<NodeId>) {
    let n = g.n();
    let mut seen = vec![false; n as usize];
    for &u in placement.iter() {
        seen[u as usize] = true;
    }
    let start = (0..n)
        .filter(|&u| !seen[u as usize])
        .max_by_key(|&u| (g.degree(u), std::cmp::Reverse(u)));
    let Some(start) = start else { return };
    let mut stack: Vec<(NodeId, u32)> = Vec::new();
    for s in std::iter::once(start).chain(g.nodes()) {
        if seen[s as usize] {
            continue;
        }
        seen[s as usize] = true;
        placement.push(s);
        stack.push((s, 0));
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            let ns = g.out_neighbors(u);
            let mut advanced = false;
            while (*next as usize) < ns.len() {
                let v = ns[*next as usize];
                *next += 1;
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    placement.push(v);
                    stack.push((v, 0));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                stack.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::{f_score_of, pair_score};
    use gorder_graph::gen::{copying_model, preferential_attachment, PrefAttachConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The pre-coalescing build loop, kept verbatim as the tie-breaking
    /// oracle: every score change is issued as its own ±1 heap operation,
    /// in stream order. The coalesced hot path must reproduce this
    /// placement byte for byte; `unit_ops` counts the heap operations it
    /// avoided.
    mod reference {
        use super::*;

        fn apply_delta(
            g: &Graph,
            v: NodeId,
            add: bool,
            hub_threshold: u32,
            heap: &mut UnitHeap,
            unit_ops: &mut u64,
        ) {
            let mut bump = |heap: &mut UnitHeap, u: NodeId| {
                if add {
                    heap.increment(u);
                } else {
                    heap.decrement(u);
                }
                *unit_ops += 1;
            };
            for &u in g.out_neighbors(v) {
                bump(heap, u);
            }
            for &x in g.in_neighbors(v) {
                bump(heap, x);
                if g.out_degree(x) > hub_threshold {
                    continue;
                }
                for &u in g.out_neighbors(x) {
                    if u != v {
                        bump(heap, u);
                    }
                }
            }
        }

        /// Per-unit-update Gorder: the exact pre-optimisation algorithm.
        pub fn compute(gorder: &Gorder, g: &Graph) -> (Vec<NodeId>, u64) {
            let n = g.n();
            let mut unit_ops = 0u64;
            let mut placement: Vec<NodeId> = Vec::with_capacity(n as usize);
            if n == 0 {
                return (placement, unit_ops);
            }
            let w = gorder.window_size() as usize;
            let hub = gorder.hub_threshold().unwrap_or(u32::MAX);
            let mut heap = UnitHeap::new(n);
            let seed = (0..n)
                .max_by_key(|&u| (g.in_degree(u), std::cmp::Reverse(u)))
                .expect("non-empty graph");
            heap.remove(seed);
            placement.push(seed);
            apply_delta(g, seed, true, hub, &mut heap, &mut unit_ops);
            while let Some(v) = heap.pop_max() {
                placement.push(v);
                apply_delta(g, v, true, hub, &mut heap, &mut unit_ops);
                if placement.len() > w {
                    let expiring = placement[placement.len() - 1 - w];
                    apply_delta(g, expiring, false, hub, &mut heap, &mut unit_ops);
                }
            }
            (placement, unit_ops)
        }
    }

    #[test]
    fn coalesced_build_matches_per_unit_reference_exactly() {
        // The tentpole's proof: across graph families, window sizes, and
        // hub thresholds, the coalesced hot path reproduces the per-unit
        // placement byte for byte while performing strictly fewer heap
        // operations.
        let graphs = [
            ("social", social(400)),
            ("copying", copying_model(350, 6, 0.7, 21)),
            (
                "sparse",
                Graph::from_edges(8, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]),
            ),
        ];
        for (tag, g) in &graphs {
            for w in [1u32, 2, 5, 64] {
                for hub in [None, Some(2), Some(8)] {
                    let gorder = GorderBuilder::new().window(w).hub_threshold(hub).build();
                    let (ref_placement, unit_ops) = reference::compute(&gorder, g);
                    let (perm, stats) = gorder.compute_with_stats(g);
                    assert_eq!(
                        perm.placement(),
                        ref_placement,
                        "{tag} w={w} hub={hub:?}: coalesced placement diverged \
                         from the per-unit reference"
                    );
                    assert!(
                        stats.heap_updates() < unit_ops,
                        "{tag} w={w} hub={hub:?}: coalescing must cut heap ops \
                         ({} vs {unit_ops} unit updates)",
                        stats.heap_updates()
                    );
                }
            }
        }
    }

    fn social(n: u32) -> Graph {
        preferential_attachment(PrefAttachConfig {
            n,
            out_degree: 6,
            reciprocity: 0.3,
            uniform_mix: 0.1,
            closure_prob: 0.3,
            recency_bias: 0.3,
            seed: 13,
        })
    }

    fn assert_valid_perm(perm: &Permutation, n: u32) {
        assert_eq!(perm.len(), n);
        let mut seen = vec![false; n as usize];
        for u in 0..n {
            let p = perm.apply(u) as usize;
            assert!(!seen[p], "duplicate target {p}");
            seen[p] = true;
        }
    }

    #[test]
    fn produces_valid_permutation() {
        let g = social(500);
        let perm = Gorder::with_defaults().compute(&g);
        assert_valid_perm(&perm, 500);
    }

    #[test]
    fn deterministic() {
        let g = social(300);
        let gorder = Gorder::with_defaults();
        assert_eq!(gorder.compute(&g).as_slice(), gorder.compute(&g).as_slice());
    }

    #[test]
    fn beats_random_on_f_score() {
        let g = copying_model(600, 8, 0.7, 21);
        let w = 5;
        let perm = GorderBuilder::new().window(w).build().compute(&g);
        let random = Permutation::random(g.n(), &mut StdRng::seed_from_u64(3));
        let f_gorder = f_score_of(&g, &perm, w);
        let f_random = f_score_of(&g, &random, w);
        assert!(
            f_gorder > 2 * f_random,
            "gorder F = {f_gorder} should dominate random F = {f_random}"
        );
    }

    #[test]
    fn beats_original_on_f_score_for_shuffled_input() {
        // Shuffle a structured graph so the identity order carries no
        // signal, then check Gorder rediscovers locality.
        let g0 = copying_model(500, 6, 0.7, 5);
        let shuffle = Permutation::random(g0.n(), &mut StdRng::seed_from_u64(17));
        let g = g0.relabel(&shuffle);
        let w = 5;
        let perm = GorderBuilder::new().window(w).build().compute(&g);
        let f_gorder = f_score_of(&g, &perm, w);
        let f_identity = f_score_of(&g, &Permutation::identity(g.n()), w);
        assert!(
            f_gorder > f_identity,
            "gorder F = {f_gorder} vs identity F = {f_identity}"
        );
    }

    #[test]
    fn greedy_picks_max_score_neighbor_on_toy_graph() {
        // Star with a tail: node 0 points at 1..=4; node 5 shares all of
        // 0's targets (siblings). Greedy seeded at the max in-degree node
        // must keep sibling-rich nodes adjacent.
        let mut edges = vec![];
        for t in 1..=4 {
            edges.push((0u32, t));
            edges.push((5u32, t));
        }
        let g = Graph::from_edges(6, &edges);
        let perm = GorderBuilder::new().window(3).build().compute(&g);
        let placement = perm.placement();
        // 0 and 5 both have in-degree 0 and share 4 sibling relations with
        // each of 1..=4; whichever of 1..=4 is placed first, the strong
        // mutual siblings 1..=4 must cluster: check that consecutive
        // placement pairs have positive scores where possible.
        let mut positive_adjacent = 0;
        for pair in placement.windows(2) {
            if pair_score(&g, pair[0], pair[1]) > 0 {
                positive_adjacent += 1;
            }
        }
        assert!(positive_adjacent >= 4, "placement {placement:?}");
    }

    #[test]
    fn greedy_always_picks_a_max_score_node() {
        // Oracle: replay the placement and verify every chosen node ties
        // the true maximum of Σ_{v ∈ window} S(·, v) over unplaced nodes.
        let g = copying_model(60, 4, 0.6, 11);
        let w = 4usize;
        let placement = GorderBuilder::new()
            .window(w as u32)
            .build()
            .compute(&g)
            .placement();
        let mut placed = vec![false; g.n() as usize];
        placed[placement[0] as usize] = true;
        for i in 1..placement.len() {
            let window = &placement[i.saturating_sub(w)..i];
            let score_of = |u: u32| -> u64 { window.iter().map(|&v| pair_score(&g, u, v)).sum() };
            let chosen = score_of(placement[i]);
            let best = (0..g.n())
                .filter(|&u| !placed[u as usize])
                .map(score_of)
                .max()
                .unwrap();
            assert_eq!(
                chosen, best,
                "step {i}: picked {} with score {chosen}, max was {best}",
                placement[i]
            );
            placed[placement[i] as usize] = true;
        }
    }

    #[test]
    fn window_one_and_huge_window_work() {
        let g = social(200);
        for w in [1, 2, 199, 500] {
            let perm = GorderBuilder::new().window(w).build().compute(&g);
            assert_valid_perm(&perm, 200);
        }
    }

    #[test]
    fn empty_and_singleton() {
        let perm = Gorder::with_defaults().compute(&Graph::empty(0));
        assert_eq!(perm.len(), 0);
        let perm = Gorder::with_defaults().compute(&Graph::empty(1));
        assert_eq!(perm.apply(0), 0);
    }

    #[test]
    fn disconnected_components_all_placed() {
        // two disjoint triangles + isolated nodes
        let g = Graph::from_edges(8, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let perm = Gorder::with_defaults().compute(&g);
        assert_valid_perm(&perm, 8);
    }

    #[test]
    fn hub_threshold_preserves_validity_and_counts_skips() {
        let g = social(400);
        let (perm, stats) = GorderBuilder::new()
            .hub_threshold(Some(2))
            .build()
            .compute_with_stats(&g);
        assert_valid_perm(&perm, 400);
        assert!(stats.hub_skips > 0, "threshold 2 must skip some hubs");
    }

    #[test]
    fn exact_mode_has_no_skips() {
        let g = social(300);
        let (_, stats) = GorderBuilder::new()
            .hub_threshold(None)
            .build()
            .compute_with_stats(&g);
        assert_eq!(stats.hub_skips, 0);
    }

    #[test]
    fn coalesced_counters_are_populated_and_consistent() {
        // Counters classify coalesced updates by net sign; every placed
        // node after the seed is one pop, and a window of w keeps the
        // negative-net updates a strict subset of the per-step touches.
        let g = social(300);
        let (_, stats) = Gorder::with_defaults().compute_with_stats(&g);
        assert!(stats.increments > 0);
        assert_eq!(stats.pops, u64::from(g.n()) - 1);
        assert!(stats.heap_updates() >= stats.increments + stats.decrements);
    }

    #[test]
    fn budgeted_unlimited_matches_plain_compute() {
        let g = social(300);
        let gorder = Gorder::with_defaults();
        let plain = gorder.compute(&g);
        match gorder.compute_budgeted(&g, &crate::budget::Budget::unlimited()) {
            crate::budget::ExecOutcome::Completed(perm) => {
                assert_eq!(perm.as_slice(), plain.as_slice());
            }
            other => panic!(
                "unlimited budget must complete, got {}",
                other.status_label()
            ),
        }
    }

    #[test]
    fn budgeted_node_cap_degrades_to_valid_permutation() {
        let g = social(600);
        let budget = crate::budget::Budget::unlimited().with_node_cap(128);
        match Gorder::with_defaults().compute_budgeted(&g, &budget) {
            crate::budget::ExecOutcome::Degraded(perm, reason) => {
                assert_eq!(reason, crate::budget::DegradeReason::NodeCapReached);
                assert_valid_perm(&perm, 600);
            }
            other => panic!(
                "128-node cap on 600 nodes must degrade, got {}",
                other.status_label()
            ),
        }
    }

    #[test]
    fn budgeted_cancellation_degrades_immediately() {
        let g = social(400);
        let budget = crate::budget::Budget::unlimited().with_node_cap(u64::MAX);
        budget.cancel();
        match Gorder::with_defaults().compute_budgeted(&g, &budget) {
            crate::budget::ExecOutcome::Degraded(perm, reason) => {
                assert_eq!(reason, crate::budget::DegradeReason::Cancelled);
                assert_valid_perm(&perm, 400);
            }
            other => panic!(
                "cancelled budget must degrade, got {}",
                other.status_label()
            ),
        }
    }

    #[test]
    fn zero_budget_fallback_is_pure_chdfs() {
        // With a zero node cap nothing is greedily placed, so the
        // fallback must reproduce the ChDFS baseline exactly: discovery
        // order from the max-total-degree node with id-order restarts.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3)]);
        let budget = crate::budget::Budget::unlimited().with_node_cap(0);
        let perm = Gorder::with_defaults()
            .compute_budgeted(&g, &budget)
            .value()
            .expect("degraded result still carries a permutation");
        assert_eq!(perm.placement(), vec![0, 1, 3, 2]);
    }

    #[test]
    fn larger_window_does_not_reduce_f_at_same_window() {
        // Orderings built with larger w should score at least comparably
        // on their own objective... strictly this is heuristic; we assert
        // the weaker, stable property that both beat random.
        let g = copying_model(400, 6, 0.7, 9);
        let random = Permutation::random(g.n(), &mut StdRng::seed_from_u64(2));
        for w in [2, 8] {
            let perm = GorderBuilder::new().window(w).build().compute(&g);
            assert!(f_score_of(&g, &perm, w) > f_score_of(&g, &random, w));
        }
    }
}
