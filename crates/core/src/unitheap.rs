//! The unit heap: a priority queue whose keys move by ±1.
//!
//! Gorder's greedy pops the unplaced node with the highest proximity score
//! to the current window, and every score update is an increment or
//! decrement **by exactly one** (one shared in-neighbour or one edge enters
//! or leaves the window). The original C++ implementation exploits this
//! with a bucketed structure — a doubly-linked list per key value — so
//! every update is O(1) and `pop_max` is amortised O(1) (the max pointer
//! only rises by one per increment).
//!
//! This is a safe-Rust re-design of that structure: intrusive links are
//! `u32` indices instead of raw pointers, and buckets are indexed by key.

use gorder_graph::NodeId;

const NONE: u32 = u32::MAX;

/// Bucketed max-priority queue over elements `0..n` with unit key updates.
///
/// All of [`increment`](UnitHeap::increment),
/// [`decrement`](UnitHeap::decrement) and [`remove`](UnitHeap::remove) are
/// O(1); [`pop_max`](UnitHeap::pop_max) is amortised O(1 + total
/// increments / pops). Elements start with key 0 and are all present.
///
/// Within a bucket, elements pop in LIFO order of their last key change —
/// the same (unspecified) tie-breaking freedom the paper's implementation
/// has.
#[derive(Clone)]
pub struct UnitHeap {
    key: Vec<u32>,
    prev: Vec<u32>,
    next: Vec<u32>,
    /// `head[k]` = first element of the bucket holding key `k`.
    head: Vec<u32>,
    max_key: usize,
    in_heap: Vec<bool>,
    len: usize,
}

impl UnitHeap {
    /// A heap over elements `0..n`, all present with key 0.
    pub fn new(n: u32) -> Self {
        let n = n as usize;
        let mut h = UnitHeap {
            key: vec![0; n],
            prev: vec![NONE; n],
            next: vec![NONE; n],
            head: vec![NONE; 1],
            max_key: 0,
            in_heap: vec![true; n],
            len: n,
        };
        // chain all elements into bucket 0
        for i in 0..n {
            h.push_front(0, i as u32);
        }
        h
    }

    /// Number of elements still in the heap.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no elements remain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `u` is still in the heap.
    #[inline]
    pub fn contains(&self, u: NodeId) -> bool {
        self.in_heap[u as usize]
    }

    /// Current key of `u` (meaningful only while `contains(u)`).
    #[inline]
    pub fn key(&self, u: NodeId) -> u32 {
        self.key[u as usize]
    }

    fn push_front(&mut self, k: usize, u: u32) {
        if k >= self.head.len() {
            self.head.resize(k + 1, NONE);
        }
        let old = self.head[k];
        self.next[u as usize] = old;
        self.prev[u as usize] = NONE;
        if old != NONE {
            self.prev[old as usize] = u;
        }
        self.head[k] = u;
        if k > self.max_key {
            self.max_key = k;
        }
    }

    fn unlink(&mut self, u: u32) {
        let (p, nx) = (self.prev[u as usize], self.next[u as usize]);
        if p != NONE {
            self.next[p as usize] = nx;
        } else {
            let k = self.key[u as usize] as usize;
            debug_assert_eq!(self.head[k], u);
            self.head[k] = nx;
        }
        if nx != NONE {
            self.prev[nx as usize] = p;
        }
    }

    /// Increases `u`'s key by one. No-op if `u` was already popped/removed.
    pub fn increment(&mut self, u: NodeId) {
        if !self.in_heap[u as usize] {
            return;
        }
        self.unlink(u);
        self.key[u as usize] += 1;
        self.push_front(self.key[u as usize] as usize, u);
    }

    /// Decreases `u`'s key by one. No-op if `u` was already popped/removed.
    ///
    /// # Panics
    /// Debug-panics if the key would go negative (the greedy only ever
    /// reverses previous increments).
    pub fn decrement(&mut self, u: NodeId) {
        if !self.in_heap[u as usize] {
            return;
        }
        debug_assert!(self.key[u as usize] > 0, "decrement below zero for {u}");
        self.unlink(u);
        self.key[u as usize] = self.key[u as usize].saturating_sub(1);
        self.push_front(self.key[u as usize] as usize, u);
    }

    /// Applies a **net** key change in one bucket move: unlink, adjust the
    /// key by `delta`, push at the front of the destination bucket. No-op
    /// if `u` was already popped/removed.
    ///
    /// This is the coalesced equivalent of a run of unit
    /// [`increment`](UnitHeap::increment)/[`decrement`](UnitHeap::decrement)
    /// calls ending with a touch of `u`: the key lands on the same value,
    /// and `u` sits at the head of its final bucket exactly as if its last
    /// unit update had just pushed it there. A `delta` of 0 is a pure
    /// *refresh* — the key stays put but `u` still moves to the bucket
    /// head, which is what a `+1` immediately reversed by a `-1` does in
    /// unit terms. Callers preserving unit-update tie-breaking must
    /// therefore apply net-zero updates too, in last-touch order.
    ///
    /// # Panics
    /// Debug-panics if the key would go negative.
    pub fn update(&mut self, u: NodeId, delta: i64) {
        if !self.in_heap[u as usize] {
            return;
        }
        self.unlink(u);
        let k = i64::from(self.key[u as usize]) + delta;
        debug_assert!(k >= 0, "net update below zero for {u}: {delta}");
        self.key[u as usize] = k.max(0) as u32;
        self.push_front(self.key[u as usize] as usize, u);
    }

    /// Removes and returns an element with the maximum key, or `None` when
    /// empty.
    pub fn pop_max(&mut self) -> Option<NodeId> {
        if self.len == 0 {
            return None;
        }
        while self.head[self.max_key] == NONE {
            // amortised: max_key only rises on increments
            debug_assert!(self.max_key > 0, "non-empty heap must have a head");
            self.max_key -= 1;
        }
        let u = self.head[self.max_key];
        self.unlink(u);
        self.in_heap[u as usize] = false;
        self.len -= 1;
        Some(u)
    }

    /// Removes a specific element. No-op if already gone.
    pub fn remove(&mut self, u: NodeId) {
        if !self.in_heap[u as usize] {
            return;
        }
        self.unlink(u);
        self.in_heap[u as usize] = false;
        self.len -= 1;
    }
}

impl std::fmt::Debug for UnitHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnitHeap")
            .field("len", &self.len)
            .field("max_key", &self.max_key)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_with_zero_keys() {
        let h = UnitHeap::new(5);
        assert_eq!(h.len(), 5);
        for u in 0..5 {
            assert!(h.contains(u));
            assert_eq!(h.key(u), 0);
        }
    }

    #[test]
    fn pop_returns_max() {
        let mut h = UnitHeap::new(4);
        h.increment(2);
        h.increment(2);
        h.increment(1);
        assert_eq!(h.pop_max(), Some(2));
        assert_eq!(h.pop_max(), Some(1));
        // remaining two have key 0, popped in some order
        let mut rest = vec![h.pop_max().unwrap(), h.pop_max().unwrap()];
        rest.sort_unstable();
        assert_eq!(rest, vec![0, 3]);
        assert_eq!(h.pop_max(), None);
    }

    #[test]
    fn decrement_reverses_increment() {
        let mut h = UnitHeap::new(3);
        h.increment(0);
        h.increment(1);
        h.increment(1);
        h.decrement(1);
        h.decrement(1);
        assert_eq!(h.key(1), 0);
        assert_eq!(h.pop_max(), Some(0));
    }

    #[test]
    fn updates_after_pop_are_noops() {
        let mut h = UnitHeap::new(3);
        h.increment(2);
        assert_eq!(h.pop_max(), Some(2));
        h.increment(2);
        h.decrement(2);
        assert!(!h.contains(2));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn remove_specific() {
        let mut h = UnitHeap::new(4);
        h.increment(3);
        h.remove(3);
        assert!(!h.contains(3));
        assert_eq!(h.len(), 3);
        assert_ne!(h.pop_max(), Some(3));
        h.remove(3); // idempotent
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn interleaved_stress_matches_reference() {
        // Reference: recompute max by scan over a plain map.
        let n = 64u32;
        let mut h = UnitHeap::new(n);
        let mut keys: Vec<i64> = vec![0; n as usize];
        let mut alive: Vec<bool> = vec![true; n as usize];
        let mut state = 0x12345678u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..5000 {
            let u = (rand() % u64::from(n)) as u32;
            match rand() % 4 {
                0 | 1 => {
                    h.increment(u);
                    if alive[u as usize] {
                        keys[u as usize] += 1;
                    }
                }
                2 => {
                    if alive[u as usize] && keys[u as usize] > 0 {
                        h.decrement(u);
                        keys[u as usize] -= 1;
                    }
                }
                _ => {
                    if step % 7 == 0 {
                        if let Some(popped) = h.pop_max() {
                            let expect_max = keys
                                .iter()
                                .zip(&alive)
                                .filter(|(_, &a)| a)
                                .map(|(&k, _)| k)
                                .max();
                            assert_eq!(Some(keys[popped as usize]), expect_max, "step {step}");
                            alive[popped as usize] = false;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_heap() {
        let mut h = UnitHeap::new(0);
        assert!(h.is_empty());
        assert_eq!(h.pop_max(), None);
    }

    #[test]
    fn lifo_within_bucket() {
        let mut h = UnitHeap::new(3);
        h.increment(0);
        h.increment(1); // 1 pushed after 0 at key 1 → pops first
        assert_eq!(h.pop_max(), Some(1));
        assert_eq!(h.pop_max(), Some(0));
    }

    #[test]
    fn update_matches_a_unit_run_ending_in_a_touch() {
        // +3 via update == three increments, including the LIFO position
        // its final touch grants.
        let mut a = UnitHeap::new(4);
        let mut b = UnitHeap::new(4);
        a.increment(1); // 1 enters bucket 1 first
        b.increment(1);
        a.increment(2);
        a.decrement(2);
        a.increment(2); // unit run on 2 nets +1, last touch after 1's
        b.update(2, 1);
        for h in [&mut a, &mut b] {
            assert_eq!(h.pop_max(), Some(2), "2 was pushed into bucket 1 last");
            assert_eq!(h.pop_max(), Some(1));
        }
    }

    #[test]
    fn zero_update_refreshes_bucket_position() {
        // A +1 immediately reversed by a -1 still moves the element to
        // the head of its (unchanged) bucket; update(_, 0) must match.
        let mut a = UnitHeap::new(3);
        let mut b = UnitHeap::new(3);
        // bucket 0 order (head first) starts as [2, 1, 0]
        a.increment(0);
        a.decrement(0); // unit refresh: 0 → head of bucket 0
        b.update(0, 0);
        for h in [&mut a, &mut b] {
            assert_eq!(h.pop_max(), Some(0));
            assert_eq!(h.pop_max(), Some(2));
            assert_eq!(h.pop_max(), Some(1));
        }
    }

    #[test]
    fn update_is_noop_after_pop_and_handles_negative_nets() {
        let mut h = UnitHeap::new(3);
        h.update(1, 3);
        h.update(1, -2);
        assert_eq!(h.key(1), 1);
        assert_eq!(h.pop_max(), Some(1));
        h.update(1, 5); // gone: no-op
        assert!(!h.contains(1));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn drains_everything_exactly_once() {
        let mut h = UnitHeap::new(100);
        for u in 0..100 {
            for _ in 0..(u % 5) {
                h.increment(u);
            }
        }
        let mut seen = [false; 100];
        while let Some(u) = h.pop_max() {
            assert!(!seen[u as usize]);
            seen[u as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
