//! Incremental Gorder — ordering maintenance for evolving graphs.
//!
//! The paper's discussion (and the replication's) flags Gorder's biggest
//! practical weakness: the ordering is expensive to compute, so "in the
//! case where networks evolve and require constant recomputation … Gorder
//! needs to be adapted to integrate the modifications without running the
//! whole process again". This module implements that adaptation.
//!
//! Strategy: **anchor-sorted append**. The existing layout is kept
//! byte-for-byte (no dilution of its dense windows — splicing nodes *into*
//! a chain pushes its high-score pairs out of the window and costs more
//! F than the splice gains). Each new node picks an *anchor*: the placed
//! node maximising the paper's proximity `S(u, ·)` over its neighbours
//! and one-hop siblings. The new block is then appended sorted by anchor
//! position, so new nodes that share (or have nearby) anchors — which is
//! exactly when they share in-neighbours, i.e. score as siblings — become
//! adjacent in the layout.
//!
//! The quality/time trade-off is measured by the `dynamic` harness
//! binary: anchor-sorted appends retain most of the full recompute's
//! `F(π)` at a small fraction of its cost and clearly beat the naive
//! id-order append.

use crate::budget::{Budget, DegradeReason, CHECK_STRIDE};
use crate::score::pair_score;
use gorder_graph::{Graph, NodeId, Permutation};

/// Incremental ordering maintainer.
///
/// Holds order keys for every placed node; [`extend`](Self::extend)
/// splices the nodes a grown graph added, and
/// [`permutation`](Self::permutation) materialises the current order.
#[derive(Debug, Clone)]
pub struct IncrementalGorder {
    /// `key[u]` = position key of node `u` (ascending = layout order).
    keys: Vec<f64>,
}

impl IncrementalGorder {
    /// Starts from a graph and its (full) Gorder permutation — or any
    /// other permutation worth preserving.
    pub fn new(base: &Permutation) -> Self {
        let n = base.len();
        let mut keys = vec![0.0; n as usize];
        for u in 0..n {
            keys[u as usize] = f64::from(base.apply(u));
        }
        IncrementalGorder { keys }
    }

    /// Number of nodes currently placed.
    pub fn len(&self) -> u32 {
        self.keys.len() as u32
    }

    /// Whether no nodes are placed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Integrates every node of `grown` with id ≥ `self.len()`: the new
    /// block is appended after the existing layout, ordered by each new
    /// node's anchor position. `grown` must contain the previously placed
    /// nodes with unchanged ids (new edges incident to old nodes are fine
    /// — they influence anchor scores).
    pub fn extend(&mut self, grown: &Graph) {
        self.extend_budgeted(grown, &Budget::unlimited());
    }

    /// Budgeted variant of [`extend`](Self::extend): anchor searches run
    /// under the budget, and once it is exhausted every remaining new node
    /// is treated as anchorless (id-order tail) — the same place a node
    /// with no placed relations would land, so the layout stays valid and
    /// the old prefix is never disturbed. Returns the degrade reason if
    /// the budget ran out, `None` on full completion.
    pub fn extend_budgeted(&mut self, grown: &Graph, budget: &Budget) -> Option<DegradeReason> {
        let old_n = self.len();
        assert!(
            grown.n() >= old_n,
            "grown graph has {} nodes but {} are already placed",
            grown.n(),
            old_n
        );
        let tail_base = self.keys.iter().copied().fold(0.0, f64::max) + 1.0;
        let unlimited = budget.is_unlimited();
        let mut stop: Option<DegradeReason> = None;
        // anchor key per new node; anchorless nodes sort last
        let mut anchored: Vec<(f64, NodeId)> = (old_n..grown.n())
            .map(|u| {
                if !unlimited && stop.is_none() {
                    let done = u64::from(u - old_n);
                    if done.is_multiple_of(CHECK_STRIDE) {
                        stop = budget.exhausted(done);
                    }
                }
                if stop.is_some() {
                    return (f64::INFINITY, u);
                }
                let key = self
                    .anchor_of(grown, u)
                    .map_or(f64::INFINITY, |a| self.keys[a as usize]);
                (key, u)
            })
            .collect();
        // total_cmp keeps the sort total even on a NaN key (a poisoned
        // base permutation must degrade to "sorts last-ish", not panic);
        // for the finite/∞ keys produced above it orders identically to
        // partial_cmp.
        anchored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        self.keys.resize(grown.n() as usize, 0.0);
        for (rank, &(_, u)) in anchored.iter().enumerate() {
            self.keys[u as usize] = tail_base + rank as f64;
        }
        stop
    }

    /// The placed node with the highest proximity `S(u, ·)` among `u`'s
    /// neighbours and one-hop siblings, or `None` if `u` relates to no
    /// placed node.
    fn anchor_of(&self, g: &Graph, u: NodeId) -> Option<NodeId> {
        let placed = self.len();
        let mut best: Option<(u64, NodeId)> = None;
        let consider = |v: NodeId, best: &mut Option<(u64, NodeId)>| {
            if v >= placed || v == u {
                return;
            }
            let s = pair_score(g, u, v);
            if s > 0 && best.is_none_or(|(bs, bv)| s > bs || (s == bs && v < bv)) {
                *best = Some((s, v));
            }
        };
        for &v in g.out_neighbors(u) {
            consider(v, &mut best);
        }
        for &x in g.in_neighbors(u) {
            consider(x, &mut best);
            // siblings through x (capped: hubs would make integration
            // super-linear, and a few sibling candidates suffice)
            for &v in g.out_neighbors(x).iter().take(16) {
                consider(v, &mut best);
            }
        }
        best.map(|(_, v)| v)
    }

    /// Materialises the current order as a permutation over `self.len()`
    /// nodes.
    pub fn permutation(&self) -> Permutation {
        let mut order: Vec<NodeId> = (0..self.len()).collect();
        // total_cmp: a NaN key (only reachable through a poisoned base
        // permutation) still yields a valid, deterministic permutation
        // instead of a panic mid-sort.
        order.sort_by(|&a, &b| {
            self.keys[a as usize]
                .total_cmp(&self.keys[b as usize])
                .then(a.cmp(&b))
        });
        Permutation::from_placement(&order).expect("every node has exactly one key")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gorder::Gorder;
    use crate::score::f_score_of;
    use gorder_graph::gen::{copying_model, preferential_attachment, PrefAttachConfig};
    use gorder_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A growing social graph: `prefix(k)` is the same generator stopped
    /// at k nodes (edges among the first k nodes only).
    fn grown_pair(n_old: u32, n_new: u32) -> (Graph, Graph) {
        let full = preferential_attachment(PrefAttachConfig {
            n: n_new,
            out_degree: 5,
            reciprocity: 0.3,
            uniform_mix: 0.1,
            closure_prob: 0.4,
            recency_bias: 0.3,
            seed: 21,
        });
        let mut b = GraphBuilder::new(n_old);
        for (u, v) in full.edges().filter(|&(u, v)| u < n_old && v < n_old) {
            b.add_edge(u, v);
        }
        (b.build(), full)
    }

    #[test]
    fn extend_produces_valid_permutation() {
        let (old, grown) = grown_pair(200, 300);
        let base = Gorder::with_defaults().compute(&old);
        let mut inc = IncrementalGorder::new(&base);
        inc.extend(&grown);
        let perm = inc.permutation();
        assert_eq!(perm.len(), 300);
        let mut seen = vec![false; 300];
        for u in 0..300u32 {
            let p = perm.apply(u) as usize;
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn preserves_relative_order_of_old_nodes() {
        let (old, grown) = grown_pair(150, 200);
        let base = Gorder::with_defaults().compute(&old);
        let mut inc = IncrementalGorder::new(&base);
        inc.extend(&grown);
        let perm = inc.permutation();
        // old nodes keep their pairwise order
        for a in 0..150u32 {
            for b in 0..150u32 {
                if base.apply(a) < base.apply(b) {
                    assert!(
                        perm.apply(a) < perm.apply(b),
                        "old nodes {a}, {b} were reordered"
                    );
                }
            }
        }
    }

    #[test]
    fn beats_append_at_end() {
        let (old, grown) = grown_pair(300, 450);
        // Arrival order is not structure: scramble the new block's ids so
        // the naive append-at-end policy cannot ride the generator's
        // cohort contiguity (real insertion streams are interleaved).
        let mut map: Vec<NodeId> = (0..450).collect();
        {
            use rand::seq::SliceRandom;
            let mut rng = StdRng::seed_from_u64(77);
            map[300..].shuffle(&mut rng);
        }
        let scramble = Permutation::try_new(map).unwrap();
        let grown = grown.relabel(&scramble);

        let base = Gorder::with_defaults().compute(&old);
        let mut inc = IncrementalGorder::new(&base);
        inc.extend(&grown);
        let spliced = inc.permutation();
        // naive policy: keep old layout, append new nodes in id order
        let mut naive_placement: Vec<NodeId> = base.placement();
        naive_placement.extend(300..450u32);
        let naive = Permutation::from_placement(&naive_placement).unwrap();
        let w = 5;
        let f_spliced = f_score_of(&grown, &spliced, w);
        let f_naive = f_score_of(&grown, &naive, w);
        assert!(
            f_spliced > f_naive,
            "splicing F = {f_spliced} must beat append-at-end F = {f_naive}"
        );
    }

    #[test]
    fn retains_most_of_full_recompute_quality() {
        let (old, grown) = grown_pair(400, 500);
        let base = Gorder::with_defaults().compute(&old);
        let mut inc = IncrementalGorder::new(&base);
        inc.extend(&grown);
        let spliced = inc.permutation();
        let full = Gorder::with_defaults().compute(&grown);
        let w = 5;
        let f_spliced = f_score_of(&grown, &spliced, w) as f64;
        let f_full = f_score_of(&grown, &full, w) as f64;
        assert!(
            f_spliced > 0.5 * f_full,
            "spliced F = {f_spliced} should retain most of full F = {f_full}"
        );
    }

    #[test]
    fn multiple_extend_rounds() {
        let full = copying_model(500, 5, 0.6, 8);
        let prefix = |k: u32| {
            let mut b = GraphBuilder::new(k);
            for (u, v) in full.edges().filter(|&(u, v)| u < k && v < k) {
                b.add_edge(u, v);
            }
            b.build()
        };
        let base = Gorder::with_defaults().compute(&prefix(200));
        let mut inc = IncrementalGorder::new(&base);
        for k in [300u32, 400, 500] {
            inc.extend(&prefix(k));
            assert_eq!(inc.len(), k);
        }
        assert_eq!(inc.permutation().len(), 500);
    }

    #[test]
    fn isolated_new_nodes_go_to_the_end() {
        let old = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let base = Gorder::with_defaults().compute(&old);
        let mut inc = IncrementalGorder::new(&base);
        // grown graph adds node 3 with no edges
        let grown = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        inc.extend(&grown);
        let perm = inc.permutation();
        assert_eq!(perm.apply(3), 3, "unconnected node lands last");
    }

    #[test]
    fn extend_with_no_new_nodes_is_noop() {
        let (old, _) = grown_pair(100, 150);
        let base = Gorder::with_defaults().compute(&old);
        let mut inc = IncrementalGorder::new(&base);
        inc.extend(&old);
        assert_eq!(inc.permutation().as_slice(), base.as_slice());
    }

    #[test]
    fn budgeted_extend_cancelled_appends_id_order_tail() {
        let (old, grown) = grown_pair(200, 300);
        let base = Gorder::with_defaults().compute(&old);
        let mut inc = IncrementalGorder::new(&base);
        let budget = Budget::unlimited().with_node_cap(u64::MAX);
        budget.cancel();
        let reason = inc.extend_budgeted(&grown, &budget);
        assert_eq!(reason, Some(crate::budget::DegradeReason::Cancelled));
        let perm = inc.permutation();
        assert_eq!(perm.len(), 300);
        // old prefix untouched, new block appended in id order
        for u in 0..200u32 {
            assert_eq!(perm.apply(u), base.apply(u));
        }
        for u in 200..300u32 {
            assert_eq!(perm.apply(u), u);
        }
    }

    #[test]
    fn budgeted_extend_unlimited_matches_plain() {
        let (old, grown) = grown_pair(150, 250);
        let base = Gorder::with_defaults().compute(&old);
        let mut a = IncrementalGorder::new(&base);
        let mut b = IncrementalGorder::new(&base);
        a.extend(&grown);
        assert_eq!(b.extend_budgeted(&grown, &Budget::unlimited()), None);
        assert_eq!(a.permutation().as_slice(), b.permutation().as_slice());
    }

    #[test]
    fn nan_key_degrades_deterministically_instead_of_panicking() {
        // No public path produces a NaN key (keys come from u32 casts and
        // tail_base + rank), so poison one directly: the sorts must stay
        // total — valid permutation out, NaN block last, and a subsequent
        // extend over the poisoned state must not panic either.
        let old = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let base = Gorder::with_defaults().compute(&old);
        let mut inc = IncrementalGorder::new(&base);
        inc.keys[1] = f64::NAN;
        let perm = inc.permutation();
        assert_eq!(perm.len(), 4);
        let mut seen = [false; 4];
        for u in 0..4u32 {
            seen[perm.apply(u) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "still a bijection");
        // total_cmp puts positive NaN above +inf, hence last
        assert_eq!(perm.apply(1), 3, "NaN-keyed node sorts last");
        assert_eq!(perm, inc.permutation(), "deterministic across calls");

        // extend: node 4 hangs off the NaN-keyed node 1, so its anchor
        // key is NaN and the anchored sort must absorb it.
        let grown = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 1), (1, 4)]);
        inc.extend(&grown);
        let perm = inc.permutation();
        assert_eq!(perm.len(), 5);
        let mut seen = [false; 5];
        for u in 0..5u32 {
            seen[perm.apply(u) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "still a bijection after extend");
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn shrinking_graph_rejected() {
        let (old, _) = grown_pair(100, 150);
        let base = Gorder::with_defaults().compute(&old);
        let mut inc = IncrementalGorder::new(&base);
        inc.extend(&Graph::empty(50));
    }
}
