//! Cooperative execution budgets for expensive orderings.
//!
//! A [`Budget`] bundles the three ways a long-running computation can be
//! asked to stop early: a wall-clock **deadline**, a **node cap** on how
//! many placement steps it may take, and an externally-set **cancel**
//! flag (typically flipped by a watchdog thread). Algorithms poll
//! [`Budget::exhausted`] at a coarse stride — every few hundred units of
//! work — so the checks cost nothing measurable; in exchange, stop
//! requests are honoured within one stride rather than instantly.
//!
//! [`ExecOutcome`] is the result vocabulary shared by budgeted orderings,
//! the benchmark harness, and the CLI: a computation either ran to
//! completion, **degraded** to a valid-but-weaker answer (anytime
//! algorithms return their best-so-far), timed out with nothing usable,
//! or failed outright.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted computation stopped before finishing its full work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The computation consumed its allotted placement steps.
    NodeCapReached,
    /// Another thread requested cancellation.
    Cancelled,
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeReason::DeadlineExceeded => f.write_str("deadline exceeded"),
            DegradeReason::NodeCapReached => f.write_str("node cap reached"),
            DegradeReason::Cancelled => f.write_str("cancelled"),
        }
    }
}

/// Limits under which a computation runs.
///
/// The default budget is unlimited; builders add each limit:
///
/// ```
/// use gorder_core::budget::Budget;
/// use std::time::Duration;
///
/// let b = Budget::unlimited()
///     .with_timeout(Duration::from_secs(30))
///     .with_node_cap(1_000_000);
/// assert!(b.exhausted(0).is_none());
/// ```
///
/// Budgets are cheap to clone; clones share the cancellation flag, so a
/// watchdog holding one clone can stop a worker holding another.
#[derive(Debug, Clone)]
pub struct Budget {
    deadline: Option<Instant>,
    node_cap: Option<u64>,
    cancel: Arc<AtomicBool>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with no limits: `exhausted` never fires unless
    /// [`cancel`](Budget::cancel) is called.
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            node_cap: None,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Sets an absolute wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline to `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        let now = Instant::now();
        self.with_deadline(now.checked_add(timeout).unwrap_or(now))
    }

    /// Caps the number of placement steps (nodes placed, annealing
    /// sweeps, …) the computation may take.
    pub fn with_node_cap(mut self, cap: u64) -> Self {
        self.node_cap = Some(cap);
        self
    }

    /// Tightens the deadline to `deadline` if it is earlier than the
    /// current one (or if none is set). A later `deadline` changes
    /// nothing — budgets only ever get stricter, so a server draining
    /// with a global cutoff can cap per-request budgets without ever
    /// extending one.
    pub fn with_earlier_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(match self.deadline {
            Some(d) if d <= deadline => d,
            _ => deadline,
        });
        self
    }

    /// The wall-clock deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time left until the deadline (`None` when no deadline is set,
    /// zero when it already passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Requests cancellation; every clone of this budget observes it.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Checks every limit given `nodes_done` units of completed work.
    /// Returns the reason to stop, or `None` to keep going. Cancellation
    /// is reported first (it is an explicit external request), then the
    /// node cap (cheap), then the deadline (a clock read).
    pub fn exhausted(&self, nodes_done: u64) -> Option<DegradeReason> {
        if self.is_cancelled() {
            return Some(DegradeReason::Cancelled);
        }
        if let Some(cap) = self.node_cap {
            if nodes_done >= cap {
                return Some(DegradeReason::NodeCapReached);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(DegradeReason::DeadlineExceeded);
            }
        }
        None
    }

    /// True when no limit is set and no cancellation was requested —
    /// callers may skip the budgeted code path entirely.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.node_cap.is_none() && !self.is_cancelled()
    }
}

/// Result of running a computation under a [`Budget`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecOutcome<T> {
    /// Ran to completion within the budget.
    Completed(T),
    /// Budget ran out, but a valid (weaker) result was salvaged.
    Degraded(T, DegradeReason),
    /// Budget ran out with nothing usable to return.
    TimedOut,
    /// The computation failed (panicked, or hit an internal error).
    Failed(String),
}

impl<T> ExecOutcome<T> {
    /// The value, if any was produced.
    pub fn value(self) -> Option<T> {
        match self {
            ExecOutcome::Completed(v) | ExecOutcome::Degraded(v, _) => Some(v),
            ExecOutcome::TimedOut | ExecOutcome::Failed(_) => None,
        }
    }

    /// Borrowed view of the value, if any was produced.
    pub fn value_ref(&self) -> Option<&T> {
        match self {
            ExecOutcome::Completed(v) | ExecOutcome::Degraded(v, _) => Some(v),
            ExecOutcome::TimedOut | ExecOutcome::Failed(_) => None,
        }
    }

    /// True only for [`ExecOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, ExecOutcome::Completed(_))
    }

    /// Maps the carried value, preserving the outcome shape.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> ExecOutcome<U> {
        match self {
            ExecOutcome::Completed(v) => ExecOutcome::Completed(f(v)),
            ExecOutcome::Degraded(v, r) => ExecOutcome::Degraded(f(v), r),
            ExecOutcome::TimedOut => ExecOutcome::TimedOut,
            ExecOutcome::Failed(e) => ExecOutcome::Failed(e),
        }
    }

    /// Short status label for reports: `completed`, `degraded`,
    /// `timed-out`, or `failed`.
    pub fn status_label(&self) -> &'static str {
        match self {
            ExecOutcome::Completed(_) => "completed",
            ExecOutcome::Degraded(_, _) => "degraded",
            ExecOutcome::TimedOut => "timed-out",
            ExecOutcome::Failed(_) => "failed",
        }
    }
}

/// How often budgeted loops poll [`Budget::exhausted`], in units of work
/// (placed nodes, annealing steps). Coarse enough that the `Instant`
/// read disappears in the noise, fine enough that a deadline overshoots
/// by at most a few microseconds of extra work.
pub const CHECK_STRIDE: u64 = 128;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(b.exhausted(u64::MAX), None);
    }

    #[test]
    fn node_cap_fires_at_cap() {
        let b = Budget::unlimited().with_node_cap(100);
        assert!(!b.is_unlimited());
        assert_eq!(b.exhausted(99), None);
        assert_eq!(b.exhausted(100), Some(DegradeReason::NodeCapReached));
        assert_eq!(b.exhausted(101), Some(DegradeReason::NodeCapReached));
    }

    #[test]
    fn past_deadline_fires() {
        let b = Budget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(b.exhausted(0), Some(DegradeReason::DeadlineExceeded));
    }

    #[test]
    fn future_deadline_does_not_fire() {
        let b = Budget::unlimited().with_timeout(Duration::from_secs(3600));
        assert_eq!(b.exhausted(0), None);
    }

    #[test]
    fn earlier_deadline_only_tightens() {
        let near = Instant::now() + Duration::from_secs(1);
        let far = near + Duration::from_secs(3600);

        // No deadline yet: adopts the new one.
        let b = Budget::unlimited().with_earlier_deadline(near);
        assert_eq!(b.deadline(), Some(near));

        // A later candidate changes nothing.
        let b = b.with_earlier_deadline(far);
        assert_eq!(b.deadline(), Some(near));

        // An earlier candidate wins.
        let sooner = Instant::now();
        let b = b.with_earlier_deadline(sooner);
        assert_eq!(b.deadline(), Some(sooner));
    }

    #[test]
    fn remaining_tracks_deadline() {
        assert_eq!(Budget::unlimited().remaining(), None);
        let b = Budget::unlimited().with_timeout(Duration::from_secs(3600));
        let left = b.remaining().expect("deadline set");
        assert!(left > Duration::from_secs(3500));
        let past = Budget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(past.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let b = Budget::unlimited();
        let clone = b.clone();
        assert_eq!(clone.exhausted(0), None);
        b.cancel();
        assert_eq!(clone.exhausted(0), Some(DegradeReason::Cancelled));
        assert!(clone.is_cancelled());
    }

    #[test]
    fn cancellation_outranks_other_reasons() {
        let b = Budget::unlimited()
            .with_node_cap(0)
            .with_deadline(Instant::now() - Duration::from_secs(1));
        b.cancel();
        assert_eq!(b.exhausted(10), Some(DegradeReason::Cancelled));
    }

    #[test]
    fn outcome_accessors() {
        let c: ExecOutcome<u32> = ExecOutcome::Completed(7);
        assert!(c.is_completed());
        assert_eq!(c.status_label(), "completed");
        assert_eq!(c.clone().value(), Some(7));
        assert_eq!(c.map(|v| v * 2), ExecOutcome::Completed(14));

        let d: ExecOutcome<u32> = ExecOutcome::Degraded(3, DegradeReason::Cancelled);
        assert!(!d.is_completed());
        assert_eq!(d.status_label(), "degraded");
        assert_eq!(d.value_ref(), Some(&3));

        let t: ExecOutcome<u32> = ExecOutcome::TimedOut;
        assert_eq!(t.status_label(), "timed-out");
        assert_eq!(t.value(), None);

        let f: ExecOutcome<u32> = ExecOutcome::Failed("boom".into());
        assert_eq!(f.status_label(), "failed");
        assert_eq!(f.value(), None);
    }

    #[test]
    fn degrade_reason_displays() {
        assert_eq!(
            DegradeReason::DeadlineExceeded.to_string(),
            "deadline exceeded"
        );
        assert_eq!(
            DegradeReason::NodeCapReached.to_string(),
            "node cap reached"
        );
        assert_eq!(DegradeReason::Cancelled.to_string(), "cancelled");
    }
}
