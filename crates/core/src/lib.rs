//! # gorder-core — the Gorder ordering algorithm
//!
//! This crate implements the primary contribution of *“Speedup Graph
//! Processing by Graph Ordering”* (SIGMOD 2016): **Gorder**, a greedy node
//! re-numbering that maximises the locality objective
//!
//! ```text
//! F(π) = Σ_{0 < π(u) − π(v) ≤ w}  S(u, v)
//! S(u, v) = Ss(u, v) + Sn(u, v)
//! ```
//!
//! where `Ss(u, v)` is the number of common in-neighbours of `u` and `v`
//! (the *sibling* score) and `Sn(u, v) ∈ {0, 1, 2}` is the number of edges
//! between them (the *neighbour* score). Maximising `F` over permutations
//! is NP-hard (by reduction from maximum linear arrangement); the paper's
//! greedy is a `1/(2w)`-approximation with near-linear practical cost,
//! thanks to a priority queue — the [`unitheap::UnitHeap`] — whose keys
//! change only by ±1.
//!
//! ## Modules
//!
//! * [`unitheap`] — the O(1)-update bucketed priority queue.
//! * [`score`] — pairwise score `S(u,v)`, the objective `F(π)`, and the
//!   MinLA / MinLogA / bandwidth energies used by baseline orderings.
//! * [`gorder`] — the windowed greedy itself ([`Gorder`],
//!   [`GorderBuilder`]).
//! * [`incremental`] — ordering maintenance for evolving graphs
//!   (the paper's flagged future work), splicing new nodes into an
//!   existing layout without recomputation.
//! * [`theory`] — brute-force `OPT` for verifying the `1/(2w)`
//!   approximation bound on small instances.
//! * [`budget`] — cooperative deadlines, node caps, and cancellation for
//!   the fault-tolerant execution layer ([`Budget`], [`ExecOutcome`]).
//!
//! Partition-parallel Gorder lives in `gorder-orders` (`ParallelGorder`),
//! where it shares the engine's scoped pool and degree-balanced ranges.

pub mod budget;
pub mod gorder;
pub mod incremental;
pub mod score;
pub mod theory;
pub mod unitheap;

pub use budget::{Budget, DegradeReason, ExecOutcome};
pub use gorder::{Gorder, GorderBuilder, GorderStats};
pub use incremental::IncrementalGorder;
pub use unitheap::UnitHeap;
