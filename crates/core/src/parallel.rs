//! Partitioned parallel Gorder — the discussion's "a parallel version of
//! Gorder could reduce this problem [the ordering's cost]".
//!
//! The greedy is inherently sequential (each placement depends on the
//! window), so the classic parallelisation is **partition-and-conquer**:
//!
//! 1. split the node range into `p` contiguous chunks (input orders carry
//!    enough coarse locality that contiguous chunking keeps most score
//!    mass inside chunks; a smarter partitioner can be layered on top by
//!    pre-permuting the input);
//! 2. run the full windowed greedy *independently* on each chunk's
//!    induced subgraph, in parallel (`std::thread::scope` — no runtime
//!    dependency);
//! 3. concatenate the per-chunk placements in chunk order.
//!
//! Edges crossing chunks are invisible to the per-chunk greedies, so the
//! result trades a little `F(π)` for near-linear scaling of ordering
//! time; the `parallel_gorder` bench measures both sides of the trade.

use crate::budget::{Budget, DegradeReason, ExecOutcome};
use crate::gorder::Gorder;
use gorder_graph::subgraph::induced_range;
use gorder_graph::{Graph, NodeId, Permutation};

/// Partition-parallel Gorder.
#[derive(Debug, Clone)]
pub struct ParallelGorder {
    inner: Gorder,
    partitions: u32,
}

impl ParallelGorder {
    /// Parallel Gorder with the given sequential configuration and
    /// partition count (≥ 1; 1 degenerates to plain sequential Gorder on
    /// one induced copy).
    pub fn new(inner: Gorder, partitions: u32) -> Self {
        assert!(partitions >= 1, "need at least one partition");
        ParallelGorder { inner, partitions }
    }

    /// Paper-default Gorder split over `partitions` chunks.
    pub fn with_defaults(partitions: u32) -> Self {
        ParallelGorder::new(Gorder::with_defaults(), partitions)
    }

    /// Computes the permutation; chunks run on their own threads.
    pub fn compute(&self, g: &Graph) -> Permutation {
        let n = g.n();
        if n == 0 {
            return Permutation::identity(0);
        }
        let p = self.partitions.min(n).max(1);
        let chunk = n.div_ceil(p);
        let bounds: Vec<(NodeId, NodeId)> = (0..p)
            .map(|i| (i * chunk, ((i + 1) * chunk).min(n)))
            .collect();
        let mut placements: Vec<Vec<NodeId>> = vec![Vec::new(); p as usize];
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for &(lo, hi) in &bounds {
                let inner = &self.inner;
                handles.push(scope.spawn(move || {
                    let sub = induced_range(g, lo, hi).graph;
                    let local = inner.compute(&sub);
                    // local placement, mapped back to global ids
                    local
                        .placement()
                        .into_iter()
                        .map(|u| u + lo)
                        .collect::<Vec<NodeId>>()
                }));
            }
            for (slot, handle) in placements.iter_mut().zip(handles) {
                *slot = handle.join().expect("partition worker panicked");
            }
        });
        let mut placement = Vec::with_capacity(n as usize);
        for part in placements {
            placement.extend(part);
        }
        Permutation::from_placement(&placement).expect("chunks partition the node range")
    }

    /// Budgeted variant of [`ParallelGorder::compute`]: every worker runs
    /// the budgeted greedy against the *shared* budget (the deadline and
    /// cancellation flag are global; the node cap applies per worker). If
    /// any chunk degrades, the concatenated result is reported degraded —
    /// it is still a valid permutation, since each chunk falls back to
    /// DFS order over its own unplaced remainder.
    pub fn compute_budgeted(&self, g: &Graph, budget: &Budget) -> ExecOutcome<Permutation> {
        if budget.is_unlimited() {
            return ExecOutcome::Completed(self.compute(g));
        }
        let n = g.n();
        if n == 0 {
            return ExecOutcome::Completed(Permutation::identity(0));
        }
        let p = self.partitions.min(n).max(1);
        let chunk = n.div_ceil(p);
        let bounds: Vec<(NodeId, NodeId)> = (0..p)
            .map(|i| (i * chunk, ((i + 1) * chunk).min(n)))
            .collect();
        let mut outcomes: Vec<ExecOutcome<Vec<NodeId>>> = vec![ExecOutcome::TimedOut; p as usize];
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for &(lo, hi) in &bounds {
                let inner = &self.inner;
                handles.push(scope.spawn(move || {
                    let sub = induced_range(g, lo, hi).graph;
                    inner.compute_budgeted(&sub, budget).map(|local| {
                        local
                            .placement()
                            .into_iter()
                            .map(|u| u + lo)
                            .collect::<Vec<NodeId>>()
                    })
                }));
            }
            for (slot, handle) in outcomes.iter_mut().zip(handles) {
                *slot = handle.join().expect("partition worker panicked");
            }
        });
        let mut placement = Vec::with_capacity(n as usize);
        let mut degraded: Option<DegradeReason> = None;
        for outcome in outcomes {
            match outcome {
                ExecOutcome::Completed(part) => placement.extend(part),
                ExecOutcome::Degraded(part, reason) => {
                    placement.extend(part);
                    degraded.get_or_insert(reason);
                }
                ExecOutcome::TimedOut => return ExecOutcome::TimedOut,
                ExecOutcome::Failed(e) => return ExecOutcome::Failed(e),
            }
        }
        let perm =
            Permutation::from_placement(&placement).expect("chunks partition the node range");
        match degraded {
            None => ExecOutcome::Completed(perm),
            Some(reason) => ExecOutcome::Degraded(perm, reason),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::f_score_of;
    use gorder_graph::gen::copying_model;
    use rand::SeedableRng;

    fn structured() -> Graph {
        copying_model(600, 6, 0.7, 12)
    }

    fn assert_valid(perm: &Permutation, n: u32) {
        let mut seen = vec![false; n as usize];
        for u in 0..n {
            let t = perm.apply(u) as usize;
            assert!(!seen[t]);
            seen[t] = true;
        }
    }

    #[test]
    fn valid_for_various_partition_counts() {
        let g = structured();
        for p in [1, 2, 3, 7, 16] {
            let perm = ParallelGorder::with_defaults(p).compute(&g);
            assert_valid(&perm, g.n());
        }
    }

    #[test]
    fn single_partition_matches_sequential_on_whole_graph() {
        let g = structured();
        let par = ParallelGorder::with_defaults(1).compute(&g);
        let seq = Gorder::with_defaults().compute(&g);
        assert_eq!(par.as_slice(), seq.as_slice());
    }

    #[test]
    fn partitions_confine_nodes_to_their_chunk_span() {
        let g = structured();
        let p = 4;
        let chunk = g.n().div_ceil(p);
        let perm = ParallelGorder::with_defaults(p).compute(&g);
        for u in g.nodes() {
            let c = u / chunk;
            let new = perm.apply(u);
            // chunk c's placement occupies exactly positions
            // [c·chunk, min((c+1)·chunk, n)), since chunks are equal-size
            // except possibly the last
            assert!(
                new >= c * chunk && new < ((c + 1) * chunk).min(g.n()),
                "node {u} of chunk {c} landed at {new}"
            );
        }
    }

    #[test]
    fn quality_close_to_sequential_and_far_above_random() {
        let g = structured();
        let w = 5;
        let seq = f_score_of(&g, &Gorder::with_defaults().compute(&g), w) as f64;
        let par = f_score_of(&g, &ParallelGorder::with_defaults(4).compute(&g), w) as f64;
        let rnd = f_score_of(
            &g,
            &Permutation::random(g.n(), &mut rand::rngs::StdRng::seed_from_u64(1)),
            w,
        ) as f64;
        assert!(par > 0.5 * seq, "parallel F {par} vs sequential {seq}");
        assert!(par > 2.0 * rnd, "parallel F {par} vs random {rnd}");
    }

    #[test]
    fn more_partitions_than_nodes() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let perm = ParallelGorder::with_defaults(64).compute(&g);
        assert_valid(&perm, 3);
    }

    #[test]
    fn empty_graph() {
        let perm = ParallelGorder::with_defaults(4).compute(&Graph::empty(0));
        assert_eq!(perm.len(), 0);
    }

    #[test]
    fn budgeted_unlimited_matches_plain() {
        let g = structured();
        let pg = ParallelGorder::with_defaults(4);
        let plain = pg.compute(&g);
        let outcome = pg.compute_budgeted(&g, &Budget::unlimited());
        assert_eq!(outcome.value().unwrap().as_slice(), plain.as_slice());
    }

    #[test]
    fn budgeted_cancellation_still_yields_valid_permutation() {
        let g = structured();
        let budget = Budget::unlimited().with_node_cap(u64::MAX);
        budget.cancel();
        match ParallelGorder::with_defaults(4).compute_budgeted(&g, &budget) {
            ExecOutcome::Degraded(perm, reason) => {
                assert_eq!(reason, DegradeReason::Cancelled);
                assert_valid(&perm, g.n());
            }
            other => panic!(
                "cancelled budget must degrade, got {}",
                other.status_label()
            ),
        }
    }
}
