//! Ordering quality metrics: the paper's `S`/`F` locality objective and the
//! arrangement energies used by the baseline orderings.
//!
//! * [`pair_score`] — `S(u, v) = Ss(u, v) + Sn(u, v)`.
//! * [`f_score`] — `F(π) = Σ_{0 < π(u) − π(v) ≤ w} S(u, v)`, evaluated on a
//!   graph *already relabelled* by π (so node ids are positions).
//! * [`minla_energy`], [`minloga_energy`], [`bandwidth`] — the objectives
//!   of the MinLA / MinLogA / RCM baselines (Section 2.3 of the
//!   replication).
//!
//! These evaluators are deliberately simple reference implementations;
//! they exist to *measure* orderings (tests, ablations, Figure 3), not to
//! be fast.

use gorder_graph::{Graph, NodeId, Permutation};

/// Number of common in-neighbours of `u` and `v` — the sibling score
/// `Ss(u, v)`. O(deg_in(u) + deg_in(v)) by sorted-list intersection.
pub fn sibling_score(g: &Graph, u: NodeId, v: NodeId) -> u64 {
    let (mut a, mut b) = (g.in_neighbors(u), g.in_neighbors(v));
    if a.len() > b.len() {
        std::mem::swap(&mut a, &mut b);
    }
    let mut count = 0;
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j < b.len() && b[j] == x {
            count += 1;
            j += 1;
        }
    }
    count
}

/// Number of edges between `u` and `v` (0, 1, or 2) — the neighbour score
/// `Sn(u, v)`.
pub fn neighbor_score(g: &Graph, u: NodeId, v: NodeId) -> u64 {
    u64::from(g.has_edge(u, v)) + u64::from(g.has_edge(v, u))
}

/// The paper's pairwise proximity `S(u, v) = Ss(u, v) + Sn(u, v)`.
pub fn pair_score(g: &Graph, u: NodeId, v: NodeId) -> u64 {
    sibling_score(g, u, v) + neighbor_score(g, u, v)
}

/// Evaluates `F(π)` for the *identity* arrangement of `g` — i.e. `g` must
/// already be relabelled by the ordering under evaluation. Sums `S(u, v)`
/// over all pairs at id distance `1..=w`.
///
/// O(n · w · avg-degree); fine at test scale, quadratic-ish beyond.
pub fn f_score(g: &Graph, w: u32) -> u64 {
    let n = g.n();
    let mut total = 0;
    for u in 0..n {
        let lo = u.saturating_sub(w);
        for v in lo..u {
            total += pair_score(g, u, v);
        }
    }
    total
}

/// Evaluates `F(π)` for an explicit permutation of `g` without
/// materialising the relabelled graph.
pub fn f_score_of(g: &Graph, perm: &Permutation, w: u32) -> u64 {
    let placement = perm.placement();
    let n = placement.len();
    let mut total = 0;
    for i in 0..n {
        let lo = i.saturating_sub(w as usize);
        for j in lo..i {
            total += pair_score(g, placement[i], placement[j]);
        }
    }
    total
}

/// MinLA energy `Σ_(u,v)∈E |π(u) − π(v)|` of the identity arrangement.
pub fn minla_energy(g: &Graph) -> u64 {
    g.edges().map(|(u, v)| u64::from(u.abs_diff(v))).sum()
}

/// MinLA energy under an explicit permutation.
pub fn minla_energy_of(g: &Graph, perm: &Permutation) -> u64 {
    g.edges()
        .map(|(u, v)| u64::from(perm.apply(u).abs_diff(perm.apply(v))))
        .sum()
}

/// MinLogA energy `Σ_(u,v)∈E ln |π(u) − π(v)|` of the identity arrangement.
/// (Self-loops are excluded by construction, so the distance is ≥ 1.)
pub fn minloga_energy(g: &Graph) -> f64 {
    g.edges().map(|(u, v)| f64::from(u.abs_diff(v)).ln()).sum()
}

/// MinLogA energy under an explicit permutation.
pub fn minloga_energy_of(g: &Graph, perm: &Permutation) -> f64 {
    g.edges()
        .map(|(u, v)| f64::from(perm.apply(u).abs_diff(perm.apply(v))).ln())
        .sum()
}

/// Bandwidth `max_(u,v)∈E |π(u) − π(v)|` of the identity arrangement — the
/// objective RCM heuristically minimises.
pub fn bandwidth(g: &Graph) -> u32 {
    g.edges().map(|(u, v)| u.abs_diff(v)).max().unwrap_or(0)
}

/// Bandwidth under an explicit permutation.
pub fn bandwidth_of(g: &Graph, perm: &Permutation) -> u32 {
    g.edges()
        .map(|(u, v)| perm.apply(u).abs_diff(perm.apply(v)))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 → 2, 1 → 2, 2 → 3, 0 → 1: nodes 0 and 1 are siblings of nothing;
    /// 2's in-neighbours are {0, 1}.
    fn g() -> Graph {
        Graph::from_edges(4, &[(0, 2), (1, 2), (2, 3), (0, 1)])
    }

    #[test]
    fn sibling_counts_common_in_neighbors() {
        // in(2) = {0, 1}, in(1) = {0} → common = {0}
        assert_eq!(sibling_score(&g(), 2, 1), 1);
        // in(3) = {2}, in(2) = {0,1} → none
        assert_eq!(sibling_score(&g(), 3, 2), 0);
        assert_eq!(sibling_score(&g(), 0, 1), 0);
    }

    #[test]
    fn sibling_is_symmetric() {
        let gg = g();
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(sibling_score(&gg, u, v), sibling_score(&gg, v, u));
            }
        }
    }

    #[test]
    fn neighbor_score_cases() {
        let gg = g();
        assert_eq!(neighbor_score(&gg, 0, 2), 1);
        assert_eq!(neighbor_score(&gg, 2, 0), 1); // symmetric
        assert_eq!(neighbor_score(&gg, 0, 3), 0);
        let bi = Graph::from_edges(2, &[(0, 1), (1, 0)]);
        assert_eq!(neighbor_score(&bi, 0, 1), 2);
    }

    #[test]
    fn f_score_small_window() {
        let gg = g();
        // w = 1: pairs (1,0), (2,1), (3,2)
        let expected = pair_score(&gg, 1, 0) + pair_score(&gg, 2, 1) + pair_score(&gg, 3, 2);
        assert_eq!(f_score(&gg, 1), expected);
    }

    #[test]
    fn f_score_of_identity_matches_f_score() {
        let gg = g();
        let id = Permutation::identity(4);
        for w in 1..5 {
            assert_eq!(f_score(&gg, w), f_score_of(&gg, &id, w));
        }
    }

    #[test]
    fn f_score_of_matches_relabel_then_f_score() {
        let gg = g();
        let perm = Permutation::try_new(vec![2, 0, 3, 1]).unwrap();
        let relabelled = gg.relabel(&perm);
        for w in 1..5 {
            assert_eq!(f_score_of(&gg, &perm, w), f_score(&relabelled, w));
        }
    }

    #[test]
    fn f_score_monotone_in_window() {
        let gg = g();
        let mut prev = 0;
        for w in 1..6 {
            let f = f_score(&gg, w);
            assert!(f >= prev);
            prev = f;
        }
    }

    #[test]
    fn minla_energy_values() {
        let gg = g();
        // |0-2| + |1-2| + |2-3| + |0-1| = 2 + 1 + 1 + 1 = 5
        assert_eq!(minla_energy(&gg), 5);
        let id = Permutation::identity(4);
        assert_eq!(minla_energy_of(&gg, &id), 5);
    }

    #[test]
    fn minloga_energy_values() {
        let gg = g();
        let expected = (2.0f64).ln(); // three distance-1 edges contribute ln 1 = 0
        assert!((minloga_energy(&gg) - expected).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_values() {
        let gg = g();
        assert_eq!(bandwidth(&gg), 2);
        let rev = Permutation::try_new(vec![3, 2, 1, 0]).unwrap();
        assert_eq!(bandwidth_of(&gg, &rev), 2);
        assert_eq!(bandwidth(&Graph::empty(3)), 0);
    }
}
