//! Brute-force machinery for verifying the paper's theoretical claims on
//! small instances.
//!
//! The paper proves two things about the windowed greedy:
//!
//! 1. maximising `F(π)` is NP-hard, and
//! 2. the greedy achieves `F(greedy) ≥ OPT / (2w)`.
//!
//! [`optimal_f`] computes `OPT` by enumerating all `n!` arrangements
//! (feasible to `n ≈ 9`), which lets the test suite check bound (2)
//! directly — see `greedy_respects_approximation_bound` below. Hardness
//! can't be unit-tested, but the enumerator also exposes how quickly the
//! search space explodes.

use crate::score::f_score_of;
use gorder_graph::{Graph, NodeId, Permutation};

/// Exact maximum of `F(π)` over all arrangements, by exhaustive
/// enumeration. Exponential — intended for graphs with `n ≤ ~9`.
///
/// Returns `(OPT, an optimal permutation)`.
///
/// # Panics
/// Panics if `n > 10` (guard against accidental factorial blow-up).
pub fn optimal_f(g: &Graph, w: u32) -> (u64, Permutation) {
    let n = g.n();
    assert!(n <= 10, "exhaustive search is O(n!), refusing n = {n} > 10");
    if n == 0 {
        return (0, Permutation::identity(0));
    }
    let mut placement: Vec<NodeId> = (0..n).collect();
    let mut best_f = 0;
    let mut best: Vec<NodeId> = placement.clone();
    // Heap's algorithm, iterative
    let mut c = vec![0usize; n as usize];
    let score = |pl: &[NodeId]| -> u64 {
        let perm = Permutation::from_placement(pl).expect("placement is a permutation");
        f_score_of(g, &perm, w)
    };
    best_f = best_f.max(score(&placement));
    let mut i = 0;
    while i < n as usize {
        if c[i] < i {
            if i % 2 == 0 {
                placement.swap(0, i);
            } else {
                placement.swap(c[i], i);
            }
            let f = score(&placement);
            if f > best_f {
                best_f = f;
                best.copy_from_slice(&placement);
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    (
        best_f,
        Permutation::from_placement(&best).expect("best placement is a permutation"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gorder::GorderBuilder;
    use gorder_graph::gen::erdos_renyi;

    #[test]
    fn optimum_on_a_path_keeps_neighbors_adjacent() {
        // path 0→1→2→3: identity is optimal for w = 1 (every edge in window)
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let (opt, perm) = optimal_f(&g, 1);
        // Sn contributes 1 per adjacent edge pair; siblings: none
        assert_eq!(opt, 3);
        // the witness achieves it
        assert_eq!(f_score_of(&g, &perm, 1), 3);
    }

    #[test]
    fn optimum_at_least_any_specific_arrangement() {
        let g = Graph::from_edges(5, &[(0, 2), (1, 2), (3, 2), (2, 4), (0, 4)]);
        for w in 1..4 {
            let (opt, _) = optimal_f(&g, w);
            assert!(opt >= f_score_of(&g, &Permutation::identity(5), w));
        }
    }

    #[test]
    fn greedy_respects_approximation_bound() {
        // The paper's Theorem: F(greedy) ≥ OPT / (2w). Check exhaustively
        // on a batch of random 8-node graphs for several windows.
        for seed in 0..6 {
            let g = erdos_renyi(8, 20, seed);
            for w in [1u32, 2, 3] {
                let (opt, _) = optimal_f(&g, w);
                let greedy = GorderBuilder::new().window(w).build().compute(&g);
                let achieved = f_score_of(&g, &greedy, w);
                // integer-safe check of achieved ≥ opt / (2w)
                assert!(
                    achieved * 2 * u64::from(w) >= opt,
                    "seed {seed}, w = {w}: greedy {achieved} < OPT {opt} / {}",
                    2 * w
                );
            }
        }
    }

    #[test]
    fn greedy_often_near_optimal_on_tiny_graphs() {
        // not a theorem — an empirical sanity bar well above the 1/(2w)
        // guarantee: on tiny graphs the greedy should reach ≥ 60% of OPT
        let mut total_ratio = 0.0;
        let cases = 5;
        for seed in 10..10 + cases {
            let g = erdos_renyi(7, 14, seed);
            let (opt, _) = optimal_f(&g, 2);
            if opt == 0 {
                total_ratio += 1.0;
                continue;
            }
            let greedy = GorderBuilder::new().window(2).build().compute(&g);
            total_ratio += f_score_of(&g, &greedy, 2) as f64 / opt as f64;
        }
        let mean = total_ratio / cases as f64;
        assert!(mean > 0.6, "mean greedy/OPT ratio too low: {mean:.2}");
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(optimal_f(&Graph::empty(0), 3).0, 0);
        assert_eq!(optimal_f(&Graph::empty(1), 3).0, 0);
    }

    #[test]
    #[should_panic(expected = "refusing")]
    fn large_n_guard() {
        optimal_f(&Graph::empty(11), 2);
    }
}
