//! The daemon: a bounded worker pool behind an admission queue, serving
//! ordering/kernel requests over pre-loaded datasets with explicit
//! degradation.
//!
//! Every work request is answered from exactly one **tier** of the
//! degradation ladder, named in the response:
//!
//! 1. `cache` — the permutation came from the on-disk
//!    [`OrderCache`] or was shared from a concurrent caller's in-flight
//!    computation ([`SingleFlight`]);
//! 2. `full` — computed to completion within the request budget;
//! 3. `degraded` — the anytime ordering ran out of budget and returned
//!    its valid partial result;
//! 4. `original` — the ordering produced nothing usable (empty-handed
//!    timeout or failure), so the request was served over the identity
//!    ordering rather than failed.
//!
//! Independently, each request runs under a per-request panic ladder
//! (mirroring the engine's): a panicking handler is retried once
//! serially and the response flagged `degraded_serial`; a second panic
//! becomes a structured `error` response. A request is therefore never
//! answered with a closed socket.
//!
//! Drain (SIGTERM or a `shutdown` request) stops the listener and the
//! admission queue immediately, lets workers run the accepted backlog
//! down (cancelling still-running budgets when the grace period
//! expires), flushes the trace, and only then returns — zero accepted
//! requests are dropped.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use gorder_cli::{
    resolve_ordering_with_budget, run_algorithm_budgeted, simulate_algorithm_budgeted, CliError,
    ResolvedOrdering,
};
use gorder_core::budget::Budget;
use gorder_engine::parallel::{panic_message, run_tasks_outcomes};
use gorder_graph::datasets;
use gorder_graph::{Graph, Permutation};
use gorder_obs::{faults, ServeEvent, TraceEvent, TraceSink};
use gorder_orders::{OrderCache, SingleFlight};

use crate::admission::{Queue, Refused};
use crate::protocol::{
    busy_response, error_response, ok_response, parse_request, FrameError, FrameReader, Request,
    WorkSpec,
};

/// Latency histogram bucket bounds (seconds) — fixed, part of the
/// metric's identity.
pub const LATENCY_BOUNDS: [f64; 5] = [0.001, 0.01, 0.1, 1.0, 10.0];

/// Everything that shapes a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker pool size (bounded concurrency).
    pub workers: usize,
    /// Admission queue depth cap; beyond it requests are shed.
    pub queue_cap: usize,
    /// Dataset scale factor for the pre-loaded graphs.
    pub scale: f64,
    /// Dataset names to pre-load; empty loads the full zoo.
    pub datasets: Vec<String>,
    /// Default per-request deadline when the request names none.
    pub default_timeout: Option<Duration>,
    /// How long in-flight work may keep running after drain starts
    /// before its budgets are cancelled.
    pub drain_grace: Duration,
    /// The `retry_after_ms` hint sent with `busy` responses.
    pub retry_after_ms: u64,
    /// Trace file path (JSONL, schema v5); `None` disables tracing.
    pub trace_path: Option<PathBuf>,
    /// On-disk permutation cache directory; `None` disables the cache
    /// tier's persistence (single-flight sharing still applies).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_cap: 8,
            scale: 0.05,
            datasets: Vec::new(),
            default_timeout: Some(Duration::from_secs(30)),
            drain_grace: Duration::from_secs(5),
            retry_after_ms: 50,
            trace_path: None,
            cache_dir: None,
        }
    }
}

/// Totals the drain returns — the accounting the zero-loss test checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainSummary {
    /// Work requests admitted to the queue.
    pub accepted: u64,
    /// Responses sent for admitted requests.
    pub answered: u64,
    /// Requests shed with `busy`.
    pub shed: u64,
    /// Structured `error` responses (parse failures, unknown names,
    /// draining refusals, double panics).
    pub errors: u64,
}

/// Outcome of one ordering resolution, shareable across a single-flight
/// group (hence `Clone`, and failure carried as data, not `CliError`).
#[derive(Clone)]
enum OrderOutcome {
    Ready {
        perm: Permutation,
        degraded: bool,
        cache_hit: bool,
    },
    TimedOut,
    Failed(String),
}

struct Job {
    spec: WorkSpec,
    op: &'static str,
    enqueued: Instant,
    reply: mpsc::Sender<String>,
}

/// A bound, loaded, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    cfg: ServerConfig,
    graphs: HashMap<String, Graph>,
    cache: Option<OrderCache>,
    flights: SingleFlight<OrderOutcome>,
    queue: Queue<Job>,
    draining: AtomicBool,
    drain_deadline: Mutex<Option<Instant>>,
    active: Mutex<Vec<(u64, Budget)>>,
    next_budget_id: AtomicU64,
    trace: Mutex<Option<TraceSink<BufWriter<std::fs::File>>>>,
    accepted: AtomicU64,
    answered: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
}

impl Server {
    /// Binds the listener, pre-loads the datasets, opens cache and trace.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let names: Vec<String> = if cfg.datasets.is_empty() {
            datasets::all().iter().map(|d| d.name.to_string()).collect()
        } else {
            cfg.datasets.clone()
        };
        let mut graphs = HashMap::new();
        for name in &names {
            let d = datasets::by_name(name).ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!(
                        "unknown dataset {name:?}; known: {:?}",
                        datasets::all().iter().map(|d| d.name).collect::<Vec<_>>()
                    ),
                )
            })?;
            graphs.insert(name.clone(), d.build(cfg.scale));
        }
        let cache = match &cfg.cache_dir {
            Some(dir) => Some(OrderCache::new(dir)?),
            None => None,
        };
        let trace = match &cfg.trace_path {
            Some(path) => {
                let mut sink = TraceSink::create(path)?;
                let mut manifest = gorder_obs::RunManifest::new(
                    "gorder-serve",
                    &format!(
                        "workers={},queue_cap={},scale={},datasets={}",
                        cfg.workers,
                        cfg.queue_cap,
                        cfg.scale,
                        names.join("+")
                    ),
                );
                manifest.threads = cfg.workers as u64;
                sink.manifest(&manifest)?;
                Some(sink)
            }
            None => None,
        };
        let queue_cap = cfg.queue_cap;
        Ok(Server {
            listener,
            cfg,
            graphs,
            cache,
            flights: SingleFlight::new(),
            queue: Queue::new(queue_cap),
            draining: AtomicBool::new(false),
            drain_deadline: Mutex::new(None),
            active: Mutex::new(Vec::new()),
            next_budget_id: AtomicU64::new(0),
            trace: Mutex::new(trace),
            accepted: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `shutdown` is set (SIGTERM handler) or a `shutdown`
    /// request arrives, then drains and returns the accounting.
    pub fn run(&self, shutdown: &AtomicBool) -> std::io::Result<DrainSummary> {
        let workers_done = AtomicBool::new(false);
        std::thread::scope(|s| {
            // Accept loop: non-blocking listener polled against drain.
            s.spawn(|| loop {
                if self.draining() || shutdown.load(Ordering::Relaxed) {
                    break;
                }
                if let Some(e) = faults::io_read_error("serve.accept") {
                    gorder_obs::global().counter_add("serve.accept_errors", 1);
                    eprintln!("warning: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        s.spawn(move || self.connection(stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) => {
                        gorder_obs::global().counter_add("serve.accept_errors", 1);
                        eprintln!("warning: accept failed: {e}");
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            });

            // Drain coordinator: notices the shutdown flag, closes
            // admission, and cancels overstaying budgets at the grace
            // deadline.
            s.spawn(|| {
                while !(self.draining() || shutdown.load(Ordering::Relaxed)) {
                    std::thread::sleep(Duration::from_millis(10));
                }
                self.begin_drain();
                let deadline = self
                    .drain_deadline
                    .lock()
                    .expect("drain deadline lock")
                    .expect("set by begin_drain");
                while !workers_done.load(Ordering::Acquire) {
                    if Instant::now() >= deadline {
                        for (_, b) in self.active.lock().expect("active budgets lock").iter() {
                            b.cancel();
                        }
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            });

            // Worker pool: bounded concurrency on the engine's
            // panic-isolated task runner.
            let outcomes = run_tasks_outcomes(
                (0..self.cfg.workers.max(1))
                    .map(|_| {
                        || {
                            while let Some(job) = self.queue.pop() {
                                let resp = self.handle_job(&job);
                                self.answered.fetch_add(1, Ordering::Relaxed);
                                let _ = job.reply.send(resp);
                            }
                        }
                    })
                    .collect(),
            );
            workers_done.store(true, Ordering::Release);
            for o in outcomes {
                if let gorder_engine::parallel::TaskOutcome::Panicked(msg) = o {
                    // Can only happen if the per-request ladder itself
                    // panicked — count it; connections see a dropped
                    // sender and answer with a structured error.
                    gorder_obs::global().counter_add("serve.worker_pool_panics", 1);
                    eprintln!("warning: worker loop panicked: {msg}");
                }
            }
        });
        self.flush_trace();
        Ok(self.summary())
    }

    /// The accounting so far (final once `run` returned).
    pub fn summary(&self) -> DrainSummary {
        DrainSummary {
            accepted: self.accepted.load(Ordering::Relaxed),
            answered: self.answered.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Idempotently flips into drain mode: no new connections, no new
    /// admissions, grace clock started.
    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::AcqRel) {
            return;
        }
        *self.drain_deadline.lock().expect("drain deadline lock") =
            Some(Instant::now() + self.cfg.drain_grace);
        self.queue.close();
    }

    /// One connection: read frames until EOF or drain, answer each with
    /// exactly one line.
    fn connection(&self, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let mut reader = FrameReader::new(BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        }));
        let mut writer = BufWriter::new(stream);
        loop {
            let line = match reader.next_frame() {
                Ok(line) => line,
                Err(FrameError::Eof) => return,
                Err(FrameError::TooLong) => {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    gorder_obs::global().counter_add("serve.errors", 1);
                    let resp = error_response(
                        "unknown",
                        &format!("request exceeds {} bytes", crate::protocol::MAX_FRAME_BYTES),
                    );
                    if write_line(&mut writer, &resp).is_err() {
                        return;
                    }
                    continue;
                }
                Err(FrameError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.draining() {
                        return; // idle connection at drain: close
                    }
                    continue;
                }
                Err(FrameError::Io(_)) => return,
            };
            if let Some(e) = faults::io_read_error("serve.request") {
                self.errors.fetch_add(1, Ordering::Relaxed);
                gorder_obs::global().counter_add("serve.errors", 1);
                let resp = error_response("unknown", &format!("read failed: {e}"));
                if write_line(&mut writer, &resp).is_err() {
                    return;
                }
                continue;
            }
            let resp = self.dispatch(&line);
            if write_line(&mut writer, &resp).is_err() {
                return;
            }
        }
    }

    /// Parses one frame and produces its one response line, queueing
    /// work ops and answering control ops inline (so `health` keeps
    /// working under full load).
    fn dispatch(&self, line: &str) -> String {
        gorder_obs::global().counter_add("serve.requests", 1);
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                gorder_obs::global().counter_add("serve.errors", 1);
                self.trace_serve(control_event("unknown", "error", 0.0));
                return error_response("unknown", &e);
            }
        };
        let op = req.op();
        match req {
            Request::Health => {
                let report = format!(
                    "ok: {} datasets, queue {}/{}, draining={}",
                    self.graphs.len(),
                    self.queue.depth(),
                    self.cfg.queue_cap,
                    self.draining()
                );
                self.trace_serve(control_event(op, "ok", 0.0));
                ok_response(op, None, false, &report, 0.0)
            }
            Request::Stats => {
                let snap = gorder_obs::global().snapshot();
                let mut parts: Vec<String> = snap
                    .counters
                    .iter()
                    .filter(|(name, _)| {
                        name.starts_with("serve.") || name.starts_with("faults.fired.serve")
                    })
                    .map(|(name, v)| format!("{name}={v}"))
                    .collect();
                parts.sort();
                self.trace_serve(control_event(op, "ok", 0.0));
                ok_response(op, None, false, &parts.join(" "), 0.0)
            }
            Request::Shutdown => {
                self.trace_serve(control_event(op, "ok", 0.0));
                let resp = ok_response(op, None, false, "draining", 0.0);
                self.begin_drain();
                resp
            }
            Request::Order(spec) | Request::Run(spec) | Request::Simulate(spec) => {
                if self.draining() {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    gorder_obs::global().counter_add("serve.errors", 1);
                    self.trace_serve(control_event(op, "error", 0.0));
                    return error_response(op, "server is draining");
                }
                let (tx, rx) = mpsc::channel();
                let job = Job {
                    spec,
                    op,
                    enqueued: Instant::now(),
                    reply: tx,
                };
                match self.queue.try_enqueue(job) {
                    Ok(depth) => {
                        self.accepted.fetch_add(1, Ordering::Relaxed);
                        gorder_obs::global().gauge_set("serve.queue_depth", depth as f64);
                        match rx.recv() {
                            Ok(resp) => resp,
                            Err(_) => {
                                // Worker pool died mid-request — still
                                // answer structurally.
                                self.errors.fetch_add(1, Ordering::Relaxed);
                                error_response(op, "internal: worker pool unavailable")
                            }
                        }
                    }
                    Err(Refused::Full) => {
                        self.shed.fetch_add(1, Ordering::Relaxed);
                        gorder_obs::global().counter_add("serve.shed", 1);
                        self.trace_serve(control_event(op, "busy", 0.0));
                        busy_response(op, self.cfg.retry_after_ms)
                    }
                    Err(Refused::Closed) => {
                        self.errors.fetch_add(1, Ordering::Relaxed);
                        gorder_obs::global().counter_add("serve.errors", 1);
                        self.trace_serve(control_event(op, "error", 0.0));
                        error_response(op, "server is draining")
                    }
                }
            }
        }
    }

    /// The per-request panic ladder: normal attempt → serial retry
    /// flagged `degraded_serial` → structured error.
    fn handle_job(&self, job: &Job) -> String {
        let queue_secs = job.enqueued.elapsed().as_secs_f64();
        gorder_obs::global().gauge_set("serve.queue_depth", self.queue.depth() as f64);
        faults::slow_cell("serve.slow");
        let t = Instant::now();
        let first = catch_unwind(AssertUnwindSafe(|| {
            faults::worker_panic("serve.worker");
            self.process(job.op, &job.spec, job.spec.threads, false)
        }));
        let (outcome, degraded_serial) = match first {
            Ok(r) => (r, false),
            Err(payload) => {
                gorder_obs::global().counter_add("serve.request_panics", 1);
                let msg = panic_message(payload.as_ref());
                eprintln!("warning: request handler panicked ({msg}); retrying serially");
                let second = catch_unwind(AssertUnwindSafe(|| {
                    faults::worker_panic("serve.worker");
                    self.process(job.op, &job.spec, 1, true)
                }));
                match second {
                    Ok(r) => (r, true),
                    Err(payload) => {
                        let msg = panic_message(payload.as_ref());
                        (Err(format!("request panicked twice: {msg}")), true)
                    }
                }
            }
        };
        let seconds = t.elapsed().as_secs_f64();
        gorder_obs::global().observe("serve.latency_secs", &LATENCY_BOUNDS, seconds);
        let (status, tier, report, checksum) = match &outcome {
            Ok(done) => ("ok", Some(done.tier), done.report.clone(), done.checksum),
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                gorder_obs::global().counter_add("serve.errors", 1);
                ("error", None, e.clone(), 0)
            }
        };
        if let Some(tier) = tier {
            gorder_obs::global().counter_add(&format!("serve.tier.{tier}"), 1);
        }
        self.trace_serve(ServeEvent {
            op: job.op.to_string(),
            dataset: Some(job.spec.dataset.clone()),
            ordering: job.spec.ordering.clone(),
            algo: job.spec.algo.clone(),
            status: status.to_string(),
            tier: tier.map(str::to_string),
            degraded_serial,
            queue_secs,
            seconds,
            checksum,
        });
        match outcome {
            Ok(done) => ok_response(job.op, Some(done.tier), degraded_serial, &report, seconds),
            Err(e) => error_response(job.op, &e),
        }
    }

    /// Executes one work op at a given thread count; `Err` is the
    /// structured-error text.
    fn process(
        &self,
        op: &str,
        spec: &WorkSpec,
        threads: u32,
        serial_retry: bool,
    ) -> Result<Processed, String> {
        let g = self.graphs.get(&spec.dataset).ok_or_else(|| {
            format!(
                "unknown dataset {:?}; loaded: {:?}",
                spec.dataset,
                self.dataset_names()
            )
        })?;
        let threads = if serial_retry { 1 } else { threads };

        // Resolve the ordering tier first (shared by all three ops).
        let (ordered, tier) = match &spec.ordering {
            None => (g.clone(), "full"),
            Some(name) => {
                let (outcome, shared) = self.resolve_order(g, name, spec)?;
                match outcome {
                    OrderOutcome::Ready {
                        perm,
                        degraded,
                        cache_hit,
                    } => {
                        let tier = if shared || cache_hit {
                            "cache"
                        } else if degraded {
                            "degraded"
                        } else {
                            "full"
                        };
                        if op == "order" {
                            return Ok(Processed {
                                tier,
                                checksum: perm_checksum(&perm),
                                report: format!(
                                    "ordered {} with {}: {} nodes (tier {tier})",
                                    spec.dataset,
                                    name,
                                    perm.len()
                                ),
                            });
                        }
                        (g.relabel(&perm), tier)
                    }
                    OrderOutcome::TimedOut | OrderOutcome::Failed(_) => {
                        // Bottom of the ladder: serve over the original
                        // order rather than failing the request.
                        if let OrderOutcome::Failed(msg) = &outcome {
                            eprintln!("warning: ordering {name} failed ({msg}); serving original");
                        }
                        if op == "order" {
                            let perm = Permutation::identity(g.n());
                            return Ok(Processed {
                                tier: "original",
                                checksum: perm_checksum(&perm),
                                report: format!(
                                    "ordering {} exhausted its budget; identity permutation \
                                     for {} (tier original)",
                                    name, spec.dataset
                                ),
                            });
                        }
                        (g.clone(), "original")
                    }
                }
            }
        };

        let algo = spec.algo.as_deref().expect("work ops validated algo");
        let out = match op {
            "run" => {
                run_algorithm_budgeted(&ordered, algo, None, spec.window, spec.seed, None, threads)
            }
            "simulate" => {
                simulate_algorithm_budgeted(&ordered, algo, None, spec.window, spec.seed, None)
            }
            other => unreachable!("op {other} dispatched as work"),
        }
        .map_err(|e| match e {
            CliError::Usage(msg) => msg,
            other => other.to_string(),
        })?;
        // The inner runner saw an already-relabelled graph (ordering was
        // resolved through the tier ladder above), so its note claims
        // "original order"; name the ordering that actually produced the
        // labels instead.
        let report = match &spec.ordering {
            Some(name) if tier != "original" => {
                out.report
                    .replacen("over original order", &format!("over {name} order"), 1)
            }
            _ => out.report,
        };
        let checksum = gorder_obs::trace::config_hash(&report);
        for ev in &out.trace_events {
            self.trace_event(ev.clone());
        }
        Ok(Processed {
            tier,
            checksum,
            report,
        })
    }

    /// Resolves an ordering through the full tier ladder under a
    /// cancellable budget, with single-flight sharing of concurrent
    /// identical resolutions. Returns the outcome plus whether it was
    /// shared from another caller's flight.
    fn resolve_order(
        &self,
        g: &Graph,
        name: &str,
        spec: &WorkSpec,
    ) -> Result<(OrderOutcome, bool), String> {
        let o = gorder_cli::ordering_by_name(name, spec.window, spec.seed).ok_or_else(|| {
            format!(
                "unknown ordering {name:?}; known: {:?}",
                gorder_cli::ordering_names()
            )
        })?;
        let key = gorder_orders::CacheKey::for_ordering(g, o.as_ref(), spec.seed);
        let budget = self.request_budget(spec);
        let budget_id = self.next_budget_id.fetch_add(1, Ordering::Relaxed);
        self.active
            .lock()
            .expect("active budgets lock")
            .push((budget_id, budget.clone()));
        let result = self.flights.run(&key.identity(), || {
            match resolve_ordering_with_budget(
                g,
                name,
                spec.window,
                spec.seed,
                &budget,
                self.cache.as_ref(),
                Some(&spec.dataset),
            ) {
                Ok(ResolvedOrdering {
                    perm,
                    degraded,
                    event,
                }) => {
                    let cache_hit = event.cache_hit;
                    self.trace_event(TraceEvent::Order(event));
                    OrderOutcome::Ready {
                        perm,
                        degraded: degraded.is_some(),
                        cache_hit,
                    }
                }
                Err(CliError::TimedOut) => OrderOutcome::TimedOut,
                Err(e) => OrderOutcome::Failed(e.to_string()),
            }
        });
        self.active
            .lock()
            .expect("active budgets lock")
            .retain(|(id, _)| *id != budget_id);
        match result {
            gorder_orders::FlightResult::Led(outcome) => Ok((outcome, false)),
            gorder_orders::FlightResult::Shared(outcome) => Ok((outcome, true)),
            gorder_orders::FlightResult::LeaderPanicked => {
                Err("concurrent ordering computation panicked".to_string())
            }
        }
    }

    /// The request's budget: its own `timeout_ms` (or the server
    /// default), tightened by the drain deadline when draining.
    fn request_budget(&self, spec: &WorkSpec) -> Budget {
        let mut b = Budget::unlimited();
        let timeout = spec
            .timeout_ms
            .map(Duration::from_millis)
            .or(self.cfg.default_timeout);
        if let Some(t) = timeout {
            b = b.with_timeout(t);
        }
        if let Some(deadline) = *self.drain_deadline.lock().expect("drain deadline lock") {
            b = b.with_earlier_deadline(deadline);
        }
        b
    }

    fn dataset_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.graphs.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    fn trace_serve(&self, event: ServeEvent) {
        self.trace_event(TraceEvent::Serve(event));
    }

    fn trace_event(&self, event: TraceEvent) {
        if let Some(sink) = self.trace.lock().expect("trace lock").as_mut() {
            if let Err(e) = sink.event(&event) {
                eprintln!("warning: trace write failed: {e}");
            }
        }
    }

    fn flush_trace(&self) {
        if let Some(sink) = self.trace.lock().expect("trace lock").as_mut() {
            if let Err(e) = sink.metrics(&gorder_obs::global().snapshot()) {
                eprintln!("warning: trace metrics flush failed: {e}");
            }
        }
    }
}

struct Processed {
    tier: &'static str,
    checksum: u64,
    report: String,
}

/// A `serve` trace record for a request that never reached a worker
/// (control op, parse failure, shed, drain refusal).
fn control_event(op: &str, status: &str, seconds: f64) -> ServeEvent {
    ServeEvent {
        op: op.to_string(),
        dataset: None,
        ordering: None,
        algo: None,
        status: status.to_string(),
        tier: None,
        degraded_serial: false,
        queue_secs: 0.0,
        seconds,
        checksum: 0,
    }
}

fn perm_checksum(perm: &Permutation) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in perm.as_slice() {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn write_line<W: Write>(w: &mut W, line: &str) -> std::io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}
