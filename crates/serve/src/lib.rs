//! # gorder-serve — the resilient ordering/kernel service
//!
//! A long-lived TCP daemon exposing the replication's orderings and
//! kernels over pre-loaded datasets, built to *degrade before it
//! fails*:
//!
//! * [`protocol`] — newline-delimited JSON framing over the strict
//!   [`gorder_obs::json`] grammar, with a hard per-frame byte cap and
//!   timeout-resumable reads ([`protocol::FrameReader`]); malformed
//!   input is always answered with a structured `error` frame;
//! * [`admission`] — the bounded queue in front of the worker pool:
//!   beyond its depth cap requests are **shed** with `busy` +
//!   `retry_after_ms` instead of queueing without bound;
//! * [`server`] — the daemon itself: per-request
//!   [`Budget`](gorder_core::budget::Budget) deadlines walking the
//!   degradation ladder (order cache → full computation → budgeted
//!   anytime result → original order), a per-request panic ladder
//!   (serial retry, then structured error), single-flight sharing of
//!   concurrent identical ordering computations, and graceful drain
//!   that answers every accepted request before exiting.
//!
//! The matching client lives in `gorder-cli remote`, with seeded-jitter
//! exponential backoff that honours `retry_after_ms`.

pub mod admission;
pub mod protocol;
pub mod server;

pub use admission::{Queue, Refused};
pub use protocol::{
    busy_response, error_response, ok_response, parse_request, parse_response, render_request,
    FrameError, FrameReader, Request, Response, WorkSpec, MAX_FRAME_BYTES,
};
pub use server::{DrainSummary, Server, ServerConfig, LATENCY_BOUNDS};
