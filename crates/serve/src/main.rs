//! `gorder-serve` — bind, pre-load datasets, serve until SIGTERM (or a
//! `shutdown` request), then drain gracefully.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use gorder_serve::{Server, ServerConfig};

const USAGE: &str = "\
gorder-serve [options]

Serves `order`, `run`, `simulate`, `health`, `stats`, and `shutdown`
requests (one JSON object per line) over TCP. See DESIGN.md §13.

options:
  --addr HOST:PORT       bind address (default 127.0.0.1:7171; port 0 = ephemeral)
  --addr-file PATH       write the bound address to PATH (for ephemeral ports)
  --workers N            worker pool size (default 2)
  --queue-cap N          admission queue depth before shedding (default 8)
  --scale F              dataset scale factor (default 0.05)
  --datasets A,B,...     datasets to pre-load (default: all)
  --timeout-ms N         default per-request budget (default 30000; 0 = none)
  --drain-grace-ms N     budget grace after drain starts (default 5000)
  --retry-after-ms N     busy-response retry hint (default 50)
  --trace-out PATH       write a schema-versioned JSONL trace
  --cache-dir PATH       on-disk permutation cache directory
  --faults SPEC          arm deterministic fault injection (GORDER_FAULTS grammar)
";

/// Set by the SIGTERM/SIGINT handler; polled by the server's drain
/// coordinator.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::Release);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7171".to_string(),
        ..ServerConfig::default()
    };
    let mut addr_file: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        let Some(value) = args.get(i + 1) else {
            return usage_err(&format!("flag {flag} needs a value"));
        };
        let parse_u64 = |what: &str| -> Result<u64, String> {
            value
                .parse::<u64>()
                .map_err(|_| format!("{what} must be a non-negative integer, got {value:?}"))
        };
        match flag {
            "--addr" => cfg.addr = value.clone(),
            "--addr-file" => addr_file = Some(PathBuf::from(value)),
            "--workers" => match parse_u64("--workers") {
                Ok(n) => cfg.workers = (n as usize).max(1),
                Err(e) => return usage_err(&e),
            },
            "--queue-cap" => match parse_u64("--queue-cap") {
                Ok(n) => cfg.queue_cap = (n as usize).max(1),
                Err(e) => return usage_err(&e),
            },
            "--scale" => match value.parse::<f64>() {
                Ok(f) if f > 0.0 => cfg.scale = f,
                _ => {
                    return usage_err(&format!("--scale must be a positive number, got {value:?}"))
                }
            },
            "--datasets" => {
                cfg.datasets = value.split(',').map(str::to_string).collect();
            }
            "--timeout-ms" => match parse_u64("--timeout-ms") {
                Ok(0) => cfg.default_timeout = None,
                Ok(n) => cfg.default_timeout = Some(Duration::from_millis(n)),
                Err(e) => return usage_err(&e),
            },
            "--drain-grace-ms" => match parse_u64("--drain-grace-ms") {
                Ok(n) => cfg.drain_grace = Duration::from_millis(n),
                Err(e) => return usage_err(&e),
            },
            "--retry-after-ms" => match parse_u64("--retry-after-ms") {
                Ok(n) => cfg.retry_after_ms = n,
                Err(e) => return usage_err(&e),
            },
            "--trace-out" => cfg.trace_path = Some(PathBuf::from(value)),
            "--cache-dir" => cfg.cache_dir = Some(PathBuf::from(value)),
            "--faults" => {
                if let Err(e) = gorder_obs::faults::arm_from_spec(value) {
                    return usage_err(&e);
                }
            }
            other => return usage_err(&format!("unknown flag {other}")),
        }
        i += 2;
    }

    install_signal_handlers();
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(6);
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(6);
        }
    };
    if let Some(path) = &addr_file {
        if let Err(e) = std::fs::write(path, addr.to_string()) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::from(6);
        }
    }
    println!("gorder-serve listening on {addr}");
    match server.run(&SHUTDOWN) {
        Ok(summary) => {
            println!(
                "drained: accepted={} answered={} shed={} errors={}",
                summary.accepted, summary.answered, summary.shed, summary.errors
            );
            if summary.answered < summary.accepted {
                eprintln!("error: drain lost accepted requests");
                return ExitCode::from(5);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(6)
        }
    }
}
