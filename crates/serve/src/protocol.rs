//! The wire protocol: newline-delimited JSON, one request line in, one
//! response line out, over the same strict no-whitespace grammar as the
//! trace files ([`gorder_obs::json`]) — so every frame the server emits
//! parses with the repo's one JSON parser, and everything the parser
//! rejects is answered with a structured `error` frame, never a panic or
//! a hang.
//!
//! Request shape (unknown keys are rejected — a typoed knob must fail
//! loudly, not silently run with defaults):
//!
//! ```json
//! {"op":"run","dataset":"epinion","ordering":"Gorder","algo":"BFS","window":5,"seed":0,"timeout_ms":200,"threads":1}
//! ```
//!
//! `op` is one of `health`, `stats`, `shutdown`, `order`, `run`,
//! `simulate`. Responses carry `status` `ok`, `busy` (shed — retry after
//! `retry_after_ms`), or `error`; `ok` responses name the degradation
//! `tier` that actually served the request (`cache`, `full`, `degraded`,
//! `original`; `null` for control ops).

use std::collections::BTreeMap;
use std::io::{BufRead, Read};

use gorder_obs::json::{self, JsonObject};

/// Hard cap on one request frame, newline included. Anything longer is
/// rejected before parsing — a client streaming garbage must not grow
/// server memory without bound.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered inline, never queued or shed.
    Health,
    /// Registry counter snapshot; answered inline.
    Stats,
    /// Begin graceful drain; answered inline, then the listener closes.
    Shutdown,
    /// Compute (or cache-hit) an ordering's permutation.
    Order(WorkSpec),
    /// Execute a kernel over an ordered dataset.
    Run(WorkSpec),
    /// Cache-profile a kernel over an ordered dataset.
    Simulate(WorkSpec),
}

/// The knobs shared by the three work-carrying ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkSpec {
    /// Pre-loaded dataset name (`epinion`, `pokec`, …).
    pub dataset: String,
    /// Ordering name; `None` on `run`/`simulate` means original order.
    pub ordering: Option<String>,
    /// Kernel name; required for `run`/`simulate`, absent for `order`.
    pub algo: Option<String>,
    /// Gorder window `w`.
    pub window: u32,
    /// Seed for randomised orderings.
    pub seed: u64,
    /// Per-request deadline; `None` falls back to the server default.
    pub timeout_ms: Option<u64>,
    /// Engine threads for the kernel's parallel sections.
    pub threads: u32,
}

impl Request {
    /// The op label echoed in responses and trace records.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Health => "health",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
            Request::Order(_) => "order",
            Request::Run(_) => "run",
            Request::Simulate(_) => "simulate",
        }
    }

    /// Whether a retrying client may safely re-send this request after a
    /// transport failure with no response. Everything here is a read or
    /// an idempotent computation except `shutdown`, which transitions
    /// server state.
    pub fn idempotent(&self) -> bool {
        !matches!(self, Request::Shutdown)
    }
}

fn field_str(obj: &BTreeMap<String, String>, key: &str) -> Result<Option<String>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(raw) => json::parse_string(raw).map(Some),
    }
}

fn field_u64(obj: &BTreeMap<String, String>, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(raw) => raw
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("field {key:?} must be a non-negative integer, got {raw}")),
    }
}

/// Parses one request line. Strict: the line must be one JSON object in
/// the writer's grammar, `op` must be known, every other key must belong
/// to that op, and numeric fields must be bare non-negative integers.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let obj = json::parse_object(line)?;
    let op = field_str(&obj, "op")?.ok_or("missing \"op\" field")?;
    let work_keys = [
        "op",
        "dataset",
        "ordering",
        "algo",
        "window",
        "seed",
        "timeout_ms",
        "threads",
    ];
    let allowed: &[&str] = match op.as_str() {
        "health" | "stats" | "shutdown" => &["op"],
        "order" | "run" | "simulate" => &work_keys,
        other => return Err(format!("unknown op {other:?}")),
    };
    if let Some(bad) = obj.keys().find(|k| !allowed.contains(&k.as_str())) {
        return Err(format!("unknown field {bad:?} for op {op:?}"));
    }
    match op.as_str() {
        "health" => return Ok(Request::Health),
        "stats" => return Ok(Request::Stats),
        "shutdown" => return Ok(Request::Shutdown),
        _ => {}
    }
    let spec = WorkSpec {
        dataset: field_str(&obj, "dataset")?.ok_or("missing \"dataset\" field")?,
        ordering: field_str(&obj, "ordering")?,
        algo: field_str(&obj, "algo")?,
        window: u32::try_from(field_u64(&obj, "window")?.unwrap_or(5))
            .map_err(|_| "field \"window\" out of range".to_string())?,
        seed: field_u64(&obj, "seed")?.unwrap_or(0),
        timeout_ms: field_u64(&obj, "timeout_ms")?,
        threads: u32::try_from(field_u64(&obj, "threads")?.unwrap_or(1))
            .map_err(|_| "field \"threads\" out of range".to_string())?
            .max(1),
    };
    match op.as_str() {
        "order" => {
            if spec.ordering.is_none() {
                return Err("op \"order\" requires an \"ordering\" field".to_string());
            }
            if spec.algo.is_some() {
                return Err("op \"order\" takes no \"algo\" field".to_string());
            }
            Ok(Request::Order(spec))
        }
        "run" | "simulate" => {
            if spec.algo.is_none() {
                return Err(format!("op {op:?} requires an \"algo\" field"));
            }
            if op == "run" {
                Ok(Request::Run(spec))
            } else {
                Ok(Request::Simulate(spec))
            }
        }
        _ => unreachable!("op validated above"),
    }
}

/// Renders a request — the client half of the protocol. Optional fields
/// are omitted, not nulled, so defaulting stays server-side.
pub fn render_request(req: &Request) -> String {
    let base = JsonObject::new().str("op", req.op());
    match req {
        Request::Health | Request::Stats | Request::Shutdown => base.finish(),
        Request::Order(s) | Request::Run(s) | Request::Simulate(s) => {
            let mut o = base.str("dataset", &s.dataset);
            if let Some(ord) = &s.ordering {
                o = o.str("ordering", ord);
            }
            if let Some(algo) = &s.algo {
                o = o.str("algo", algo);
            }
            o = o.u64("window", u64::from(s.window)).u64("seed", s.seed);
            if let Some(t) = s.timeout_ms {
                o = o.u64("timeout_ms", t);
            }
            o.u64("threads", u64::from(s.threads)).finish()
        }
    }
}

/// An `ok` response: the served tier (`None` for control ops), whether
/// the panic ladder fell back to a serial retry, the human-readable
/// report, and processing seconds.
pub fn ok_response(
    op: &str,
    tier: Option<&str>,
    degraded_serial: bool,
    report: &str,
    seconds: f64,
) -> String {
    JsonObject::new()
        .str("status", "ok")
        .str("op", op)
        .opt_str("tier", tier)
        .bool("degraded_serial", degraded_serial)
        .str("report", report)
        .f64("seconds", seconds)
        .finish()
}

/// A `busy` (load-shed) response: the admission queue was full; the
/// client should wait `retry_after_ms` before retrying.
pub fn busy_response(op: &str, retry_after_ms: u64) -> String {
    JsonObject::new()
        .str("status", "busy")
        .str("op", op)
        .u64("retry_after_ms", retry_after_ms)
        .finish()
}

/// An `error` response. `op` is `"unknown"` when the frame never parsed
/// far enough to name one.
pub fn error_response(op: &str, error: &str) -> String {
    JsonObject::new()
        .str("status", "error")
        .str("op", op)
        .str("error", error)
        .finish()
}

/// A parsed response, as the retrying client sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// `ok`, `busy`, or `error`.
    pub status: String,
    /// Echoed op label.
    pub op: String,
    /// Served tier on `ok` work responses.
    pub tier: Option<String>,
    /// Panic-ladder marker on `ok` responses.
    pub degraded_serial: bool,
    /// Report text on `ok`, error text on `error`.
    pub report: String,
    /// Processing seconds on `ok`.
    pub seconds: f64,
    /// Backoff floor on `busy`.
    pub retry_after_ms: Option<u64>,
}

/// Parses one response line (client side).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let obj = json::parse_object(line)?;
    let status = field_str(&obj, "status")?.ok_or("missing \"status\" field")?;
    let op = field_str(&obj, "op")?.ok_or("missing \"op\" field")?;
    let tier = match obj.get("tier").map(String::as_str) {
        None | Some("null") => None,
        Some(raw) => Some(json::parse_string(raw)?),
    };
    let report = match status.as_str() {
        "error" => field_str(&obj, "error")?.ok_or("error response missing \"error\"")?,
        _ => field_str(&obj, "report")?.unwrap_or_default(),
    };
    let seconds = obj
        .get("seconds")
        .map(|raw| {
            raw.parse::<f64>()
                .map_err(|_| format!("bad \"seconds\": {raw}"))
        })
        .transpose()?
        .unwrap_or(0.0);
    Ok(Response {
        status,
        op,
        tier,
        degraded_serial: obj.get("degraded_serial").map(String::as_str) == Some("true"),
        report,
        seconds,
        retry_after_ms: field_u64(&obj, "retry_after_ms")?,
    })
}

/// What reading one frame can yield.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// A frame exceeded [`MAX_FRAME_BYTES`] before its newline; the
    /// oversized line has been discarded, and the stream is re-framed
    /// at the next line.
    TooLong,
    /// Transport error. Timeouts (`WouldBlock`/`TimedOut`) are
    /// resumable: the reader keeps any partial line and continues it on
    /// the next call — a slow client never corrupts framing.
    Io(std::io::Error),
}

/// Incremental newline framing over a possibly-timing-out transport.
///
/// The server reads with a short socket timeout so idle connections can
/// notice a drain; that means a read can return `WouldBlock` halfway
/// through a frame. This reader owns the partial-line state, so a
/// timeout mid-frame keeps the bytes already read and the next call
/// resumes exactly where it stopped. It also enforces
/// [`MAX_FRAME_BYTES`]: an oversized line is discarded (resumably, if
/// the discard itself hits timeouts) and reported as
/// [`FrameError::TooLong`] once.
pub struct FrameReader<R: BufRead> {
    r: R,
    partial: Vec<u8>,
    discarding: bool,
}

impl<R: BufRead> FrameReader<R> {
    pub fn new(r: R) -> Self {
        FrameReader {
            r,
            partial: Vec::new(),
            discarding: false,
        }
    }

    /// Reads the next frame. `Err(Io)` with a timeout kind is resumable;
    /// `Err(TooLong)` reports one discarded oversized frame (the stream
    /// stays usable); `Err(Eof)` is the clean end.
    pub fn next_frame(&mut self) -> Result<String, FrameError> {
        if self.discarding {
            self.skip_to_newline()?;
            self.discarding = false;
            return Err(FrameError::TooLong);
        }
        let cap = MAX_FRAME_BYTES - self.partial.len();
        let n = (&mut self.r)
            .take(cap as u64)
            .read_until(b'\n', &mut self.partial)
            .map_err(FrameError::Io)?; // timeout: partial is preserved
        if n == 0 && self.partial.is_empty() {
            return Err(FrameError::Eof);
        }
        if self.partial.last() == Some(&b'\n') {
            self.partial.pop();
            if self.partial.last() == Some(&b'\r') {
                self.partial.pop();
            }
        } else if self.partial.len() >= MAX_FRAME_BYTES {
            // Cap hit with no newline: discard the rest of the line.
            self.partial.clear();
            self.skip_to_newline()?;
            return Err(FrameError::TooLong);
        }
        // Complete frame — or EOF mid-line (n == 0 with leftovers),
        // which treats the unterminated tail as a final frame so
        // `printf '{...}' | nc`-style clients still work. Non-UTF-8
        // bytes decode lossily: the frame boundary is intact, so the
        // garbage flows into the parser and earns a structured error
        // instead of killing the connection.
        let bytes = std::mem::take(&mut self.partial);
        Ok(String::from_utf8(bytes)
            .unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned()))
    }

    /// Consumes through the next newline (or EOF) using the reader's
    /// own buffer, so no byte of the following frame is lost. Resumable
    /// across timeouts via `self.discarding`.
    fn skip_to_newline(&mut self) -> Result<(), FrameError> {
        loop {
            let available = match self.r.fill_buf() {
                Err(e) => {
                    self.discarding = true;
                    return Err(FrameError::Io(e));
                }
                Ok(b) => b,
            };
            if available.is_empty() {
                return Ok(()); // EOF ends the oversized line
            }
            if let Some(pos) = available.iter().position(|&b| b == b'\n') {
                self.r.consume(pos + 1);
                return Ok(());
            }
            let len = available.len();
            self.r.consume(len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_ops_round_trip() {
        for (req, op) in [
            (Request::Health, "health"),
            (Request::Stats, "stats"),
            (Request::Shutdown, "shutdown"),
        ] {
            let line = render_request(&req);
            assert_eq!(line, format!("{{\"op\":\"{op}\"}}"));
            assert_eq!(parse_request(&line).unwrap(), req);
        }
    }

    #[test]
    fn work_ops_round_trip() {
        let spec = WorkSpec {
            dataset: "epinion".into(),
            ordering: Some("Gorder".into()),
            algo: Some("BFS".into()),
            window: 5,
            seed: 3,
            timeout_ms: Some(250),
            threads: 2,
        };
        for req in [
            Request::Run(spec.clone()),
            Request::Simulate(spec.clone()),
            Request::Order(WorkSpec {
                algo: None,
                ..spec.clone()
            }),
        ] {
            let line = render_request(&req);
            assert_eq!(parse_request(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn defaults_apply_when_fields_omitted() {
        let req = parse_request(r#"{"op":"run","dataset":"epinion","algo":"BFS"}"#).unwrap();
        match req {
            Request::Run(s) => {
                assert_eq!(s.window, 5);
                assert_eq!(s.seed, 0);
                assert_eq!(s.threads, 1);
                assert_eq!(s.timeout_ms, None);
                assert_eq!(s.ordering, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_ops_and_fields_are_rejected() {
        assert!(parse_request(r#"{"op":"reboot"}"#).is_err());
        assert!(parse_request(r#"{"op":"health","extra":1}"#).is_err());
        assert!(parse_request(r#"{"op":"run","dataset":"d","algo":"BFS","wimdow":9}"#).is_err());
        assert!(
            parse_request(r#"{"op":"order","dataset":"d"}"#).is_err(),
            "order needs ordering"
        );
        assert!(
            parse_request(r#"{"op":"order","dataset":"d","ordering":"Gorder","algo":"BFS"}"#)
                .is_err(),
            "order takes no algo"
        );
        assert!(
            parse_request(r#"{"op":"run","dataset":"d"}"#).is_err(),
            "run needs algo"
        );
        assert!(parse_request(r#"{"op":"run","dataset":"d","algo":"BFS","seed":"x"}"#).is_err());
    }

    #[test]
    fn response_shapes_parse_back() {
        let ok = ok_response("run", Some("full"), false, "BFS done", 0.25);
        let r = parse_response(&ok).unwrap();
        assert_eq!(
            (r.status.as_str(), r.op.as_str(), r.tier.as_deref()),
            ("ok", "run", Some("full"))
        );
        assert!(!r.degraded_serial);
        assert_eq!(r.report, "BFS done");

        let health = parse_response(&ok_response("health", None, false, "ok", 0.0)).unwrap();
        assert_eq!(health.tier, None);

        let busy = parse_response(&busy_response("run", 40)).unwrap();
        assert_eq!(
            (busy.status.as_str(), busy.retry_after_ms),
            ("busy", Some(40))
        );

        let err = parse_response(&error_response("unknown", "bad frame")).unwrap();
        assert_eq!(
            (err.status.as_str(), err.report.as_str()),
            ("error", "bad frame")
        );
    }

    #[test]
    fn frames_read_with_and_without_trailing_newline() {
        let mut r = FrameReader::new(std::io::BufReader::new(
            &b"{\"op\":\"health\"}\n{\"op\":\"stats\"}"[..],
        ));
        assert_eq!(r.next_frame().unwrap(), "{\"op\":\"health\"}");
        assert_eq!(r.next_frame().unwrap(), "{\"op\":\"stats\"}");
        assert!(matches!(r.next_frame(), Err(FrameError::Eof)));
    }

    #[test]
    fn crlf_is_stripped() {
        let mut r = FrameReader::new(std::io::BufReader::new(&b"{\"op\":\"health\"}\r\n"[..]));
        assert_eq!(r.next_frame().unwrap(), "{\"op\":\"health\"}");
    }

    #[test]
    fn oversized_frames_are_capped_and_the_stream_recovers() {
        let mut big = vec![b'x'; MAX_FRAME_BYTES + 500];
        big.push(b'\n');
        big.extend_from_slice(b"{\"op\":\"health\"}\n");
        let mut r = FrameReader::new(std::io::BufReader::new(&big[..]));
        assert!(matches!(r.next_frame(), Err(FrameError::TooLong)));
        assert_eq!(r.next_frame().unwrap(), "{\"op\":\"health\"}");
    }

    /// A transport that yields `WouldBlock` between scripted chunks —
    /// the shape a short socket read timeout produces.
    struct Chunked {
        chunks: Vec<Vec<u8>>,
        blocked: bool,
    }

    impl std::io::Read for Chunked {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.blocked && !self.chunks.is_empty() {
                self.blocked = false;
                return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
            }
            self.blocked = true;
            match self.chunks.first_mut() {
                None => Ok(0),
                Some(chunk) => {
                    let n = chunk.len().min(out.len());
                    out[..n].copy_from_slice(&chunk[..n]);
                    chunk.drain(..n);
                    if chunk.is_empty() {
                        self.chunks.remove(0);
                    }
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn timeouts_mid_frame_resume_without_losing_bytes() {
        let r = Chunked {
            chunks: vec![b"{\"op\":\"he".to_vec(), b"alth\"}\n".to_vec()],
            blocked: false,
        };
        let mut fr = FrameReader::new(std::io::BufReader::new(r));
        let mut frames = Vec::new();
        loop {
            match fr.next_frame() {
                Ok(f) => frames.push(f),
                Err(FrameError::Io(e)) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
                Err(FrameError::Eof) => break,
                Err(e) => panic!("{e:?}"),
            }
        }
        assert_eq!(frames, vec!["{\"op\":\"health\"}"]);
    }
}
