//! Bounded admission queue with explicit load shedding.
//!
//! Connections enqueue work; a fixed worker pool drains it. The queue
//! depth is capped: [`Queue::try_enqueue`] never blocks and never grows
//! the backlog past the cap — a full queue sheds the request so the
//! client gets an immediate `busy` (with a retry hint) instead of an
//! unbounded latency tail. [`Queue::close`] flips the queue into drain
//! mode: no new work is admitted, but everything already accepted is
//! still handed to workers — the "zero accepted requests lost" half of
//! the drain contract.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`Queue::try_enqueue`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refused {
    /// The queue is at capacity — shed, client should retry later.
    Full,
    /// The queue is closed (server draining) — do not retry here.
    Closed,
}

struct State<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// A mutex+condvar MPMC queue with a hard depth cap.
pub struct Queue<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    cap: usize,
}

impl<T> Queue<T> {
    /// A queue admitting at most `cap` (≥ 1) waiting jobs.
    pub fn new(cap: usize) -> Self {
        Queue {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admits `job` unless the queue is full or closed. Never blocks.
    pub fn try_enqueue(&self, job: T) -> Result<usize, Refused> {
        let mut st = self.state.lock().expect("admission lock");
        if st.closed {
            return Err(Refused::Closed);
        }
        if st.jobs.len() >= self.cap {
            return Err(Refused::Full);
        }
        st.jobs.push_back(job);
        let depth = st.jobs.len();
        self.cv.notify_one();
        Ok(depth)
    }

    /// Takes the next job, blocking while the queue is open and empty.
    /// Returns `None` only once the queue is closed **and** drained —
    /// the worker-pool exit condition.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("admission lock");
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.cv.wait(st).expect("admission wait");
        }
    }

    /// Stops admitting; wakes every waiting worker so the pool can run
    /// the backlog down and exit.
    pub fn close(&self) {
        self.state.lock().expect("admission lock").closed = true;
        self.cv.notify_all();
    }

    /// Current backlog depth.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("admission lock").jobs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = Queue::new(4);
        for i in 0..3 {
            q.try_enqueue(i).unwrap();
        }
        assert_eq!(q.depth(), 3);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds() {
        let q = Queue::new(2);
        q.try_enqueue(1).unwrap();
        q.try_enqueue(2).unwrap();
        assert_eq!(q.try_enqueue(3), Err(Refused::Full));
        q.pop();
        q.try_enqueue(3).unwrap();
    }

    #[test]
    fn closed_queue_refuses_but_drains() {
        let q = Queue::new(4);
        q.try_enqueue(1).unwrap();
        q.try_enqueue(2).unwrap();
        q.close();
        assert_eq!(q.try_enqueue(3), Err(Refused::Closed));
        assert_eq!(q.pop(), Some(1), "accepted jobs survive close");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "then the pool exits");
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(Queue::<u32>::new(1));
        let worker = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(30));
        q.close();
        assert_eq!(worker.join().unwrap(), None);
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Arc::new(Queue::new(64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..16 {
                        while q.try_enqueue(t * 16 + i).is_err() {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let mut got = Vec::new();
            for _ in 0..64 {
                got.push(q.pop().unwrap());
            }
            got.sort_unstable();
            assert_eq!(got, (0..64).collect::<Vec<_>>());
        });
    }
}
