//! Adversarial input properties: arbitrary bytes on the wire must never
//! panic or hang the parser or the server — every frame gets exactly one
//! structured response, reads are size-capped, and a connection survives
//! its own garbage.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::AtomicBool;
use std::sync::OnceLock;
use std::time::Duration;

use gorder_serve::{parse_request, parse_response, FrameError, FrameReader, MAX_FRAME_BYTES};
use gorder_serve::{Server, ServerConfig};
use proptest::prelude::*;

/// One shared server for the whole binary: proptest runs hundreds of
/// cases, and the property is precisely that none of them kill it.
fn server_addr() -> &'static str {
    static ADDR: OnceLock<String> = OnceLock::new();
    ADDR.get_or_init(|| {
        let server = Server::bind(ServerConfig {
            datasets: vec!["wiki".to_string()],
            scale: 0.02,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = server.local_addr().expect("addr").to_string();
        let flag: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
        std::thread::spawn(move || server.run(flag));
        addr
    })
}

/// Sends each payload as one line on a single connection and returns the
/// response lines. The 10 s timeout turns a hung server into a failure
/// instead of a stuck test run.
fn converse(payloads: &[Vec<u8>]) -> Vec<String> {
    let stream = TcpStream::connect(server_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut w = &stream;
    let mut r = BufReader::new(&stream);
    let mut replies = Vec::new();
    for p in payloads {
        w.write_all(p).unwrap();
        w.write_all(b"\n").unwrap();
        w.flush().unwrap();
        let mut line = String::new();
        r.read_line(&mut line).expect("server must answer");
        assert!(!line.is_empty(), "server closed instead of answering");
        replies.push(line.trim_end().to_string());
    }
    replies
}

/// Any byte except `\n`/`\r` (which would split the frame).
fn frame_bytes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        any::<u8>().prop_map(|b| if b == b'\n' || b == b'\r' { b'#' } else { b }),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The request parser is total: arbitrary input returns Ok or Err,
    // never panics.
    #[test]
    fn parse_request_is_total(bytes in frame_bytes(512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_request(&text);
    }

    // Mutating one byte of a valid request still parses or errors
    // cleanly — truncation included.
    #[test]
    fn mutated_valid_requests_never_panic(
        cut in 0usize..60,
        flip in 0usize..60,
        byte in any::<u8>(),
    ) {
        let valid = b"{\"op\":\"run\",\"dataset\":\"wiki\",\"algo\":\"PR\",\"seed\":7}";
        let mut bytes = valid[..cut.min(valid.len())].to_vec();
        if flip < bytes.len() {
            bytes[flip] = byte;
        }
        let _ = parse_request(&String::from_utf8_lossy(&bytes));
    }

    // A live server answers every garbage frame with one structured
    // error (or ok, if the fuzzer stumbles onto a valid request) and
    // still answers a well-formed health check on the same connection.
    #[test]
    fn live_server_answers_garbage_then_health(frames in proptest::collection::vec(frame_bytes(256), 1..4)) {
        let mut payloads = frames;
        payloads.push(b"{\"op\":\"health\"}".to_vec());
        let replies = converse(&payloads);
        for r in &replies {
            let parsed = parse_response(r).expect("every reply is a structured response");
            prop_assert!(
                matches!(parsed.status.as_str(), "ok" | "busy" | "error"),
                "unexpected status in {r:?}"
            );
        }
        let last = parse_response(replies.last().unwrap()).unwrap();
        prop_assert_eq!(last.status.as_str(), "ok", "connection survived the garbage");
    }

    // Oversized frames are answered with a structured error, the read is
    // capped (the server never buffers the whole flood), and the next
    // frame on the same connection parses normally.
    #[test]
    fn oversized_frames_are_capped_and_recoverable(extra in 1usize..8192, fill in any::<u8>()) {
        let byte = if fill == b'\n' || fill == b'\r' { b'x' } else { fill };
        let huge = vec![byte; MAX_FRAME_BYTES + extra];
        let replies = converse(&[huge, b"{\"op\":\"health\"}".to_vec()]);
        prop_assert!(
            replies[0].contains("exceeds"),
            "oversized frame named: {:?}",
            replies[0]
        );
        let health = parse_response(&replies[1]).unwrap();
        prop_assert_eq!(health.status.as_str(), "ok");
    }
}

#[test]
fn frame_reader_caps_memory_even_without_newlines() {
    // A frame that never ends: the reader must refuse at the cap, not
    // grow without bound, and must keep serving once a newline arrives.
    let mut data = vec![b'a'; MAX_FRAME_BYTES * 3];
    data.push(b'\n');
    data.extend_from_slice(b"{\"op\":\"health\"}\n");
    let mut reader = FrameReader::new(BufReader::new(&data[..]));
    assert!(matches!(reader.next_frame(), Err(FrameError::TooLong)));
    assert_eq!(reader.next_frame().unwrap(), "{\"op\":\"health\"}");
    assert!(matches!(reader.next_frame(), Err(FrameError::Eof)));
}
