//! End-to-end ladder tests: a real `Server` on an ephemeral port, driven
//! by raw sockets and by the retrying `gorder-cli remote` client.
//!
//! The fault plan is process-global (`gorder_obs::faults`), so every
//! test takes [`fault_lock`] — including the ones that arm nothing —
//! and disarms on drop.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use gorder_cli::remote::{call, RemoteError, RemoteRequest, RetryPolicy};
use gorder_serve::server::{DrainSummary, Server, ServerConfig};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests (shared global fault plan + registry) and guarantees
/// a clean plan on entry and exit.
fn fault_lock() -> MutexGuard<'static, ()> {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    gorder_obs::faults::disarm();
    guard
}

struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        gorder_obs::faults::disarm();
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gorder-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Small, fast server config: one dataset at a tiny scale.
fn test_config() -> ServerConfig {
    ServerConfig {
        datasets: vec!["wiki".to_string()],
        scale: 0.02,
        drain_grace: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

struct Running {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<std::io::Result<DrainSummary>>,
}

impl Running {
    fn start(cfg: ServerConfig) -> Running {
        let server = Server::bind(cfg).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::spawn(move || server.run(&flag));
        Running {
            addr,
            shutdown,
            handle,
        }
    }

    fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// SIGTERM-equivalent: flip the flag the signal handler would set.
    fn sigterm(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    fn join(self) -> DrainSummary {
        self.handle.join().expect("server thread").expect("run")
    }
}

/// One raw request/response exchange, no retries: returns the response
/// line (empty string if the server closed without replying).
fn raw_request(addr: &str, line: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut w = &stream;
    w.write_all(line.as_bytes()).unwrap();
    w.write_all(b"\n").unwrap();
    let mut reply = String::new();
    let _ = BufReader::new(&stream).read_line(&mut reply);
    reply.trim_end().to_string()
}

fn work_request(op: &str, ordering: Option<&str>, algo: Option<&str>) -> RemoteRequest {
    RemoteRequest {
        op: op.to_string(),
        dataset: Some("wiki".to_string()),
        ordering: ordering.map(str::to_string),
        algo: algo.map(str::to_string),
        window: 5,
        seed: 0,
        timeout_ms: None,
        threads: 1,
    }
}

#[test]
fn ladder_serves_tiers_and_drains_into_a_valid_trace() {
    let _guard = fault_lock();
    let dir = tmpdir("ladder");
    let trace = dir.join("trace.jsonl");
    let mut cfg = test_config();
    cfg.trace_path = Some(trace.clone());
    cfg.cache_dir = Some(dir.join("cache"));
    let server = Running::start(cfg);
    let addr = server.addr();
    let policy = RetryPolicy::default();

    // Control tier: health answers inline even before any work.
    let health = call(&addr, &RemoteRequest::control("health"), &policy).unwrap();
    assert_eq!(health.status, "ok");
    assert!(health.report.contains("1 datasets"), "{}", health.report);

    // Full tier: first computation of this identity.
    let first = call(&addr, &work_request("order", Some("Gorder"), None), &policy).unwrap();
    assert_eq!(first.tier.as_deref(), Some("full"));
    assert!(!first.degraded_serial);

    // Cache tier: the same identity again hits the on-disk cache.
    let second = call(&addr, &work_request("order", Some("Gorder"), None), &policy).unwrap();
    assert_eq!(second.tier.as_deref(), Some("cache"));
    let body = |r: &str| r.split(" (tier").next().unwrap().to_string();
    assert_eq!(
        body(&second.report),
        body(&first.report),
        "same permutation either way"
    );

    // Kernels run over the relabeled graph; the Gorder permutation is
    // already warm from the order requests above, so its tier is cache.
    let run = call(
        &addr,
        &work_request("run", Some("Gorder"), Some("PR")),
        &policy,
    )
    .unwrap();
    assert_eq!(run.tier.as_deref(), Some("cache"));
    assert!(run.report.contains("checksum"), "{}", run.report);
    let sim = call(&addr, &work_request("simulate", None, Some("BFS")), &policy).unwrap();
    assert_eq!(sim.tier.as_deref(), Some("full"));

    // Deterministic server error, never retried by the client.
    match call(&addr, &work_request("run", None, Some("NopeAlgo")), &policy) {
        Err(RemoteError::Server(msg)) => assert!(msg.contains("NopeAlgo"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }

    // Shutdown request: ok reply, then a zero-loss drain.
    let bye = call(&addr, &RemoteRequest::control("shutdown"), &policy).unwrap();
    assert_eq!(bye.status, "ok");
    let summary = server.join();
    assert_eq!(
        summary.accepted, summary.answered,
        "every accepted request was answered: {summary:?}"
    );

    // The flushed trace passes strict validation...
    let verdict = gorder_cli::validate_trace_file(&trace, false).expect("trace validates");
    assert!(
        verdict.contains("serve"),
        "serve records present: {verdict}"
    );

    // ...and serve records keep the golden key order.
    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/trace_keys.txt");
    let golden = std::fs::read_to_string(&golden_path).unwrap();
    let serve_keys: Vec<String> = golden
        .lines()
        .find_map(|l| l.strip_prefix("serve: "))
        .expect("golden file pins the serve record")
        .split(',')
        .map(str::to_string)
        .collect();
    let body = std::fs::read_to_string(&trace).unwrap();
    let mut seen = 0;
    for line in body.lines().filter(|l| l.contains("\"kind\":\"serve\"")) {
        assert_eq!(
            gorder_obs::json::top_level_keys(line),
            serve_keys,
            "serve record key order matches the golden schema"
        );
        seen += 1;
    }
    assert!(seen >= 5, "all serve ops traced, saw {seen}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn saturation_sheds_with_retry_hint_and_retrying_client_wins() {
    let _guard = fault_lock();
    let _disarm = Disarm;
    // One slow worker, queue depth one: concurrent requests must shed.
    gorder_obs::faults::arm_from_spec("serve.slow=1+,slow_ms=200").unwrap();
    let mut cfg = test_config();
    cfg.workers = 1;
    cfg.queue_cap = 1;
    cfg.retry_after_ms = 25;
    let server = Running::start(cfg);
    let addr = server.addr();

    let line = "{\"op\":\"order\",\"dataset\":\"wiki\",\"ordering\":\"Original\"}";
    let replies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|_| s.spawn(|| raw_request(&addr, line)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let busy = replies
        .iter()
        .filter(|r| r.contains("\"status\":\"busy\""))
        .count();
    let ok = replies
        .iter()
        .filter(|r| r.contains("\"status\":\"ok\""))
        .count();
    assert!(busy > 0, "saturation sheds: {replies:?}");
    assert!(ok > 0, "but admitted work completes: {replies:?}");
    assert!(
        replies
            .iter()
            .filter(|r| r.contains("busy"))
            .all(|r| r.contains("\"retry_after_ms\":25")),
        "busy carries the configured hint: {replies:?}"
    );

    // The retrying client rides out the same saturation.
    let patient = RetryPolicy {
        attempts: 20,
        base_ms: 40,
        budget_ms: 20_000,
        seed: 1,
    };
    let won = call(
        &addr,
        &work_request("order", Some("Original"), None),
        &patient,
    )
    .unwrap();
    assert_eq!(won.status, "ok");

    server.sigterm();
    let summary = server.join();
    assert_eq!(summary.accepted, summary.answered, "{summary:?}");
    assert_eq!(summary.shed, busy as u64, "shed accounting matches");
}

#[test]
fn worker_panic_falls_back_to_serial_then_to_structured_error() {
    let _guard = fault_lock();
    let _disarm = Disarm;
    // Fire on the first attempt only: the serial retry must succeed.
    gorder_obs::faults::arm_from_spec("serve.worker=1").unwrap();
    let server = Running::start(test_config());
    let addr = server.addr();
    let policy = RetryPolicy::default();

    let degraded = call(&addr, &work_request("order", Some("RCM"), None), &policy).unwrap();
    assert_eq!(degraded.status, "ok");
    assert!(
        degraded.degraded_serial,
        "first attempt panicked, serial retry answered: {degraded:?}"
    );

    // Same request again: the plan is spent, both attempts are clean.
    let clean = call(&addr, &work_request("order", Some("RCM"), None), &policy).unwrap();
    assert!(!clean.degraded_serial, "{clean:?}");

    // Now panic on every attempt: the ladder ends in a structured error.
    gorder_obs::faults::disarm();
    gorder_obs::faults::arm_from_spec("serve.worker=1+").unwrap();
    match call(&addr, &work_request("order", Some("RCM"), None), &policy) {
        Err(RemoteError::Server(msg)) => {
            assert!(msg.contains("panicked twice"), "{msg}");
        }
        other => panic!("expected structured panic error, got {other:?}"),
    }

    gorder_obs::faults::disarm();
    server.sigterm();
    let summary = server.join();
    assert_eq!(summary.accepted, summary.answered, "{summary:?}");
}

#[test]
fn sigterm_mid_flight_drains_without_losing_accepted_requests() {
    let _guard = fault_lock();
    let _disarm = Disarm;
    // Slow the handler so requests are still in flight at SIGTERM.
    gorder_obs::faults::arm_from_spec("serve.slow=1+,slow_ms=150").unwrap();
    let mut cfg = test_config();
    cfg.workers = 2;
    cfg.queue_cap = 8;
    let server = Running::start(cfg);
    let addr = server.addr();

    let line = "{\"op\":\"order\",\"dataset\":\"wiki\",\"ordering\":\"Original\"}";
    let replies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..5)
            .map(|_| s.spawn(|| raw_request(&addr, line)))
            .collect();
        // Let the requests land, then pull the plug mid-flight.
        std::thread::sleep(Duration::from_millis(60));
        server.sigterm();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &replies {
        assert!(
            r.contains("\"status\":"),
            "every in-flight client still got a structured reply: {r:?}"
        );
    }
    let summary = server.join();
    assert_eq!(
        summary.accepted, summary.answered,
        "drain answered everything it accepted: {summary:?}"
    );
}

#[test]
fn single_flight_shares_concurrent_identical_orderings() {
    let _guard = fault_lock();
    let mut cfg = test_config();
    cfg.workers = 4;
    cfg.queue_cap = 8;
    let server = Running::start(cfg);
    let addr = server.addr();

    // Same identity raced from four clients: the followers are served
    // from the leader's flight (tier "cache") without recomputing.
    let line = "{\"op\":\"order\",\"dataset\":\"wiki\",\"ordering\":\"Gorder\",\"window\":5}";
    let replies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| s.spawn(|| raw_request(&addr, line)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(
        replies.iter().all(|r| r.contains("\"status\":\"ok\"")),
        "{replies:?}"
    );
    let shared = replies
        .iter()
        .filter(|r| r.contains("\"tier\":\"cache\""))
        .count();
    let full = replies
        .iter()
        .filter(|r| r.contains("\"tier\":\"full\""))
        .count();
    assert_eq!(full + shared, 4, "{replies:?}");
    assert!(full >= 1, "someone led the flight: {replies:?}");

    server.sigterm();
    let summary = server.join();
    assert_eq!(summary.accepted, summary.answered, "{summary:?}");
}
