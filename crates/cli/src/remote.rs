//! `gorder-cli remote` — the retrying client half of `gorder-serve`.
//!
//! One request per TCP connection: render a single JSON object line,
//! read a single response line, classify. The retry loop is where the
//! robustness contract lives:
//!
//! * `busy` responses (load shed) are **always** retryable — the server
//!   told us to come back — and the backoff floor honours the server's
//!   `retry_after_ms` hint;
//! * `error` responses are **never** retried: the server answered
//!   deterministically, so the same request would fail the same way;
//! * transport failures (connect refused, reset mid-read) are retried
//!   only for idempotent requests — a `shutdown` whose reply was lost
//!   may already be draining the server, so blindly resending it is
//!   wrong.
//!
//! Backoff is exponential with deterministic seeded jitter (splitmix64,
//! the repo has no RNG dependency here) and a total sleep budget, so a
//! saturated server sheds a polite, bounded amount of retry traffic and
//! tests replay the exact same schedule.
//!
//! This module deliberately does not depend on `gorder-serve` (which
//! depends on this crate); the wire format is pinned by the shared
//! [`gorder_obs::json`] grammar and cross-checked by the serve crate's
//! integration tests, which drive this client against a live server.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use gorder_obs::json::{self, JsonObject};

/// One request to a `gorder-serve` daemon.
#[derive(Debug, Clone)]
pub struct RemoteRequest {
    /// `health`, `stats`, `shutdown`, `order`, `run`, or `simulate`.
    pub op: String,
    /// Dataset name (work ops only).
    pub dataset: Option<String>,
    /// Ordering name; omitted = server picks its tier (`full` original).
    pub ordering: Option<String>,
    /// Kernel name (`run`/`simulate`).
    pub algo: Option<String>,
    /// Gorder-family window.
    pub window: u32,
    /// Ordering seed.
    pub seed: u64,
    /// Per-request budget override, milliseconds.
    pub timeout_ms: Option<u64>,
    /// Kernel threads (`run` only; server clamps to ≥ 1).
    pub threads: u32,
}

impl RemoteRequest {
    /// A control request (`health` / `stats` / `shutdown`).
    pub fn control(op: &str) -> Self {
        RemoteRequest {
            op: op.to_string(),
            dataset: None,
            ordering: None,
            algo: None,
            window: 5,
            seed: 0,
            timeout_ms: None,
            threads: 1,
        }
    }

    /// Safe to resend when the reply was lost? Everything except
    /// `shutdown`: re-running an ordering or kernel is wasteful but
    /// harmless, while a duplicate `shutdown` could race a restart.
    pub fn idempotent(&self) -> bool {
        self.op != "shutdown"
    }

    /// Renders the request line (optional fields omitted so defaulting
    /// stays server-side, mirroring the serve protocol).
    pub fn render(&self) -> String {
        let base = JsonObject::new().str("op", &self.op);
        let Some(dataset) = &self.dataset else {
            return base.finish();
        };
        let mut o = base.str("dataset", dataset);
        if let Some(ord) = &self.ordering {
            o = o.str("ordering", ord);
        }
        if let Some(algo) = &self.algo {
            o = o.str("algo", algo);
        }
        o = o
            .u64("window", u64::from(self.window))
            .u64("seed", self.seed);
        if let Some(t) = self.timeout_ms {
            o = o.u64("timeout_ms", t);
        }
        o.u64("threads", u64::from(self.threads)).finish()
    }
}

/// A parsed server response.
#[derive(Debug, Clone)]
pub struct RemoteReply {
    /// `ok`, `busy`, or `error`.
    pub status: String,
    /// Served degradation tier (`cache` / `full` / `degraded` /
    /// `original`) on `ok` work responses.
    pub tier: Option<String>,
    /// True when the panic ladder fell back to a serial retry.
    pub degraded_serial: bool,
    /// Report text (`ok`) or error text (`error`).
    pub report: String,
    /// Server-side processing seconds.
    pub seconds: f64,
    /// Backoff floor on `busy`.
    pub retry_after_ms: Option<u64>,
    /// Attempts this call consumed (1 = first try succeeded).
    pub attempts: u32,
}

/// Why [`call`] gave up.
#[derive(Debug)]
pub enum RemoteError {
    /// Connect/read/write failed and the request was not safely
    /// retryable (or retries ran out on transport errors) — exit 6.
    Transport(String),
    /// Every attempt was load-shed and the retry budget ran out —
    /// exit 4 (the service equivalent of a timeout).
    BusyExhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The server answered `error` — deterministic, not retried; exit 5.
    Server(String),
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Transport(e) => write!(f, "transport: {e}"),
            RemoteError::BusyExhausted { attempts } => {
                write!(
                    f,
                    "server busy after {attempts} attempts, retry budget spent"
                )
            }
            RemoteError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

/// Deterministic retry schedule: exponential backoff with seeded
/// splitmix64 jitter and a total sleep budget.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum attempts (≥ 1).
    pub attempts: u32,
    /// First backoff, milliseconds; doubles per attempt.
    pub base_ms: u64,
    /// Total milliseconds the client may spend sleeping between
    /// attempts before giving up.
    pub budget_ms: u64,
    /// Jitter seed — same seed, same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_ms: 50,
            budget_ms: 2_000,
            seed: 0,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based: the wait after
    /// the first failure is `backoff_ms(1, ..)`). Jittered over the
    /// upper half of the exponential step so herds decorrelate, and
    /// floored at the server's `retry_after_ms` hint when it gave one.
    pub fn backoff_ms(&self, attempt: u32, retry_after_ms: Option<u64>) -> u64 {
        let expo = self
            .base_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(16));
        let half = expo / 2;
        let jitter = half + splitmix64(self.seed ^ u64::from(attempt)) % (half.max(1) + 1);
        jitter.max(retry_after_ms.unwrap_or(0))
    }
}

fn field_str(obj: &BTreeMap<String, String>, key: &str) -> Result<Option<String>, String> {
    match obj.get(key).map(String::as_str) {
        None | Some("null") => Ok(None),
        Some(raw) => json::parse_string(raw).map(Some),
    }
}

fn parse_reply(line: &str) -> Result<RemoteReply, String> {
    let obj = json::parse_object(line)?;
    let status = field_str(&obj, "status")?.ok_or("missing \"status\" field")?;
    let report = match status.as_str() {
        "error" => field_str(&obj, "error")?.ok_or("error response missing \"error\"")?,
        _ => field_str(&obj, "report")?.unwrap_or_default(),
    };
    let seconds = match obj.get("seconds") {
        None => 0.0,
        Some(raw) => raw
            .parse::<f64>()
            .map_err(|_| format!("bad \"seconds\": {raw}"))?,
    };
    let retry_after_ms = match obj.get("retry_after_ms") {
        None => None,
        Some(raw) => Some(
            raw.parse::<u64>()
                .map_err(|_| format!("bad \"retry_after_ms\": {raw}"))?,
        ),
    };
    Ok(RemoteReply {
        status,
        tier: field_str(&obj, "tier")?,
        degraded_serial: obj.get("degraded_serial").map(String::as_str) == Some("true"),
        report,
        seconds,
        retry_after_ms,
        attempts: 1,
    })
}

/// One request/response exchange on a fresh connection.
fn exchange(addr: &str, line: &str, io_timeout: Duration) -> Result<RemoteReply, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(io_timeout))
        .and_then(|()| stream.set_write_timeout(Some(io_timeout)))
        .map_err(|e| format!("socket setup: {e}"))?;
    let mut w = &stream;
    w.write_all(line.as_bytes())
        .and_then(|()| w.write_all(b"\n"))
        .map_err(|e| format!("send: {e}"))?;
    let mut reply = String::new();
    BufReader::new(&stream)
        .read_line(&mut reply)
        .map_err(|e| format!("recv: {e}"))?;
    if reply.is_empty() {
        return Err("server closed the connection without replying".to_string());
    }
    parse_reply(reply.trim_end_matches(['\r', '\n']))
}

/// Sends `req`, retrying per `policy`. Returns the final `ok` or `busy`
/// classification; `error` responses and non-retryable transport
/// failures surface immediately.
pub fn call(
    addr: &str,
    req: &RemoteRequest,
    policy: &RetryPolicy,
) -> Result<RemoteReply, RemoteError> {
    let line = req.render();
    let io_timeout = Duration::from_millis(req.timeout_ms.unwrap_or(60_000).max(1_000) * 2);
    let mut slept_ms = 0u64;
    let mut attempt = 1u32;
    loop {
        let verdict = exchange(addr, &line, io_timeout);
        let retry_hint = match verdict {
            Ok(reply) => match reply.status.as_str() {
                "ok" => {
                    return Ok(RemoteReply {
                        attempts: attempt,
                        ..reply
                    });
                }
                "busy" => reply.retry_after_ms,
                "error" => return Err(RemoteError::Server(reply.report)),
                other => {
                    return Err(RemoteError::Transport(format!(
                        "unknown response status {other:?}"
                    )));
                }
            },
            Err(e) => {
                if !req.idempotent() {
                    return Err(RemoteError::Transport(format!(
                        "{e} (not retried: {:?} is not idempotent)",
                        req.op
                    )));
                }
                if attempt >= policy.attempts {
                    return Err(RemoteError::Transport(format!(
                        "{e} (after {attempt} attempts)"
                    )));
                }
                None
            }
        };
        // A busy verdict that exhausts attempts or budget gives up here;
        // transport errors already returned above when out of attempts.
        if attempt >= policy.attempts {
            return Err(RemoteError::BusyExhausted { attempts: attempt });
        }
        let wait = policy.backoff_ms(attempt, retry_hint);
        if slept_ms.saturating_add(wait) > policy.budget_ms {
            return Err(RemoteError::BusyExhausted { attempts: attempt });
        }
        std::thread::sleep(Duration::from_millis(wait));
        slept_ms += wait;
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_is_deterministic() {
        let p = RetryPolicy::default();
        let a: Vec<u64> = (1..=4).map(|i| p.backoff_ms(i, None)).collect();
        let b: Vec<u64> = (1..=4).map(|i| p.backoff_ms(i, None)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        // Each step's jitter window is [half, expo], so consecutive
        // steps at least double in floor: 25..=50, 50..=100, 100..=200.
        assert!(a[0] >= 25 && a[0] <= 50, "step 1 in window: {}", a[0]);
        assert!(a[1] >= 50 && a[1] <= 100, "step 2 in window: {}", a[1]);
        assert!(a[2] >= 100 && a[2] <= 200, "step 3 in window: {}", a[2]);
        let q = RetryPolicy {
            seed: 7,
            ..RetryPolicy::default()
        };
        assert_ne!(
            (1..=4).map(|i| q.backoff_ms(i, None)).collect::<Vec<_>>(),
            a,
            "different seed, different jitter"
        );
    }

    #[test]
    fn backoff_honours_server_hint() {
        let p = RetryPolicy::default();
        assert!(p.backoff_ms(1, Some(500)) >= 500);
        // A tiny hint never lowers the computed backoff.
        assert!(p.backoff_ms(3, Some(1)) >= 100);
    }

    #[test]
    fn render_shapes_match_protocol() {
        assert_eq!(
            RemoteRequest::control("health").render(),
            "{\"op\":\"health\"}"
        );
        let req = RemoteRequest {
            op: "run".into(),
            dataset: Some("wiki".into()),
            ordering: Some("Gorder".into()),
            algo: Some("PR".into()),
            window: 5,
            seed: 42,
            timeout_ms: Some(250),
            threads: 2,
        };
        assert_eq!(
            req.render(),
            "{\"op\":\"run\",\"dataset\":\"wiki\",\"ordering\":\"Gorder\",\"algo\":\"PR\",\
             \"window\":5,\"seed\":42,\"timeout_ms\":250,\"threads\":2}"
        );
    }

    #[test]
    fn parse_reply_classifies_statuses() {
        let ok = parse_reply(
            "{\"status\":\"ok\",\"op\":\"run\",\"tier\":\"degraded\",\"degraded_serial\":true,\
             \"report\":\"r\",\"seconds\":0.5}",
        )
        .unwrap();
        assert_eq!(ok.status, "ok");
        assert_eq!(ok.tier.as_deref(), Some("degraded"));
        assert!(ok.degraded_serial);
        let busy =
            parse_reply("{\"status\":\"busy\",\"op\":\"run\",\"retry_after_ms\":75}").unwrap();
        assert_eq!(busy.retry_after_ms, Some(75));
        let err = parse_reply("{\"status\":\"error\",\"op\":\"run\",\"error\":\"boom\"}").unwrap();
        assert_eq!(err.report, "boom");
        assert!(parse_reply("not json").is_err());
    }

    #[test]
    fn transport_error_fails_fast_for_non_idempotent_ops() {
        // Port 1 on localhost: connection refused, immediately.
        let req = RemoteRequest::control("shutdown");
        let policy = RetryPolicy {
            attempts: 3,
            base_ms: 1,
            budget_ms: 50,
            seed: 0,
        };
        match call("127.0.0.1:1", &req, &policy) {
            Err(RemoteError::Transport(msg)) => {
                assert!(msg.contains("not idempotent"), "fails without retry: {msg}");
            }
            other => panic!("expected transport error, got {other:?}"),
        }
    }
}
