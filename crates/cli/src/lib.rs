//! # gorder-cli — command-line front end
//!
//! The workflows the original Gorder release supported (reorder an edge
//! list), plus the ones this reproduction adds: inspect, convert between
//! formats, run the benchmark algorithms, and cache-profile a graph under
//! any ordering. The binary is a thin `main` over this library so every
//! piece is unit-testable.
//!
//! ```text
//! gorder-cli stats    <input>
//! gorder-cli order    <input> <output> [--method Gorder] [--window 5]
//! gorder-cli convert  <input> <output>
//! gorder-cli run      <algo> <input> [--method NAME]
//! gorder-cli simulate <algo> <input> [--method NAME]
//! ```
//!
//! Formats are chosen by extension: `.mtx` Matrix Market, `.bin` the
//! compact binary format, anything else a whitespace edge list.

use gorder_algos::{ExecPlan, KernelStats, RunCtx};
use gorder_cachesim::trace::{replay_with_stats, TraceCtx};
use gorder_cachesim::{CacheHierarchy, HierarchyConfig, StallModel, Tracer};
use gorder_core::budget::{Budget, DegradeReason, ExecOutcome};
use gorder_core::GorderBuilder;
use gorder_graph::io::GraphIoError;
use gorder_graph::stats::{degree_gini, GraphStats};
use gorder_graph::Permutation;
use gorder_graph::{io, io_mm, Graph};
use gorder_obs::OrderEvent;
use gorder_orders::{run_ordering, CacheKey, OrderCache, OrderStats, OrderingAlgorithm};
use std::path::Path;
use std::time::Duration;

pub mod remote;

/// Structured CLI failure. Each variant maps to a distinct process exit
/// code so scripts can tell bad usage from bad input from exhausted
/// budgets (see [`CliError::exit_code`]).
#[derive(Debug)]
pub enum CliError {
    /// Unknown command, flag, algorithm, or ordering — exit 2.
    Usage(String),
    /// A budgeted stage hit its deadline with nothing usable — exit 4.
    TimedOut,
    /// A stage failed outright — exit 5.
    Failed(String),
    /// Reading or writing a graph file failed — exit 6.
    GraphIo(GraphIoError),
}

impl CliError {
    /// The process exit code for this failure. Exit 0 is success, exit 3
    /// is reserved for "succeeded but degraded" (see [`CmdOutput`]);
    /// exit 1 is left to panics/aborts so it never aliases a clean error.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::TimedOut => 4,
            CliError::Failed(_) => 5,
            CliError::GraphIo(_) => 6,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::TimedOut => write!(f, "timed out before producing a usable result"),
            CliError::Failed(msg) => write!(f, "failed: {msg}"),
            CliError::GraphIo(e) => write!(f, "{e}"),
        }
    }
}

impl From<GraphIoError> for CliError {
    fn from(e: GraphIoError) -> Self {
        CliError::GraphIo(e)
    }
}

/// A successful command body: the report text plus a marker when any
/// budgeted stage returned a degraded (anytime) result. Degradation is
/// still success — the output is valid — but the process exits 3 and the
/// reason goes to stderr, so callers can notice.
#[derive(Debug)]
pub struct CmdOutput {
    /// Human-readable one-line report.
    pub report: String,
    /// Set when a budgeted stage returned an anytime (partial) result.
    pub degraded: Option<DegradeReason>,
    /// One JSON line of per-kernel execution metrics (`run`/`simulate`
    /// commands only; printed by the binary under `--stats`).
    pub stats_json: Option<String>,
    /// Structured trace events for this command (`run`/`simulate` emit
    /// one kernel event); the binary writes them under `--trace-out`,
    /// after the manifest it builds from the flags.
    pub trace_events: Vec<gorder_obs::TraceEvent>,
}

/// Renders one JSON object line of run metadata + [`KernelStats`] via the
/// shared `gorder_obs::json` writer (same escaper and number formatting
/// as the trace sink, so the two surfaces never drift).
///
/// `engine` is true for the nine engine-backed kernels, whose counters
/// are real; extension algorithms report zeroed stats.
fn stats_json_line(
    algo: &str,
    ordering: Option<&str>,
    checksum: u64,
    seconds: f64,
    stats: &KernelStats,
) -> String {
    gorder_obs::json::JsonObject::new()
        .str("algo", algo)
        .opt_str("ordering", ordering)
        .u64("checksum", checksum)
        .f64("seconds", seconds)
        .bool("engine", gorder_engine::is_kernel(algo))
        .u64("iterations", stats.iterations)
        .u64("edges_relaxed", stats.edges_relaxed)
        .u64("frontier_pushes", stats.frontier_pushes)
        .u64("frontier_peak", stats.frontier_peak)
        .f64("init_secs", stats.init_secs)
        .f64("compute_secs", stats.compute_secs)
        .f64("finish_secs", stats.finish_secs)
        .u64("threads_used", u64::from(stats.threads_used))
        .f64_array("thread_busy_secs", &stats.thread_busy_secs)
        .bool("degraded_serial", stats.degraded_serial)
        .finish()
}

/// Builds the trace twin of the stats line: a structured
/// [`KernelEvent`](gorder_obs::KernelEvent) with the same fields, keyed
/// for the JSONL sink.
fn kernel_trace_event(
    algo: &str,
    ordering: Option<&str>,
    checksum: u64,
    seconds: f64,
    threads: u32,
    stats: &KernelStats,
) -> gorder_obs::TraceEvent {
    let engine = if !gorder_engine::is_kernel(algo) {
        "extension"
    } else if threads > 1 {
        "parallel"
    } else {
        "serial"
    };
    gorder_obs::TraceEvent::Kernel(gorder_obs::KernelEvent {
        algo: algo.to_string(),
        ordering: ordering.unwrap_or("Original").to_string(),
        checksum,
        seconds,
        engine: engine.to_string(),
        iterations: stats.iterations,
        edges_relaxed: stats.edges_relaxed,
        frontier_pushes: stats.frontier_pushes,
        frontier_peak: stats.frontier_peak,
        init_secs: stats.init_secs,
        compute_secs: stats.compute_secs,
        finish_secs: stats.finish_secs,
        threads_used: u64::from(stats.threads_used),
        thread_busy_secs: stats.thread_busy_secs.iter().sum(),
        degraded_serial: stats.degraded_serial,
    })
}

/// `validate-trace` subcommand: checks that every line of the file at
/// `path` passes the strict JSON parser and that the first line is a
/// manifest with a supported schema version. Returns a one-line summary.
///
/// With `lenient` (the `--lenient` flag), exactly one invalid,
/// unterminated **final** line is tolerated and reported — the signature
/// a crash mid-write leaves, and exactly what `--resume` accepts.
pub fn validate_trace_file(path: &Path, lenient: bool) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Failed(format!("cannot read {}: {e}", path.display())))?;
    let validated = if lenient {
        gorder_obs::validate_jsonl_lenient(&text)
    } else {
        gorder_obs::validate_jsonl(&text)
    };
    let summary = validated.map_err(|e| CliError::Failed(format!("{}: {e}", path.display())))?;
    let kinds = summary
        .by_kind
        .iter()
        .map(|(k, n)| format!("{n} {k}"))
        .collect::<Vec<_>>()
        .join(", ");
    let torn = if summary.truncated_final_line {
        " + 1 torn final line (crash artifact, tolerated)"
    } else {
        ""
    };
    Ok(format!(
        "{}: valid trace, {} lines ({kinds}){torn}",
        path.display(),
        summary.lines
    ))
}

/// Builds the [`Budget`] for a `--timeout` flag; `None` is unlimited.
pub fn budget_from(timeout: Option<Duration>) -> Budget {
    match timeout {
        Some(t) => Budget::unlimited().with_timeout(t),
        None => Budget::unlimited(),
    }
}

/// Graph file formats the CLI understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Whitespace-separated `u v` pairs (default).
    EdgeList,
    /// Matrix Market coordinate.
    MatrixMarket,
    /// This crate's compact binary CSR.
    Binary,
}

/// Picks a format from a path's extension.
pub fn format_of(path: &Path) -> Format {
    match path
        .extension()
        .and_then(|e| e.to_str())
        .map(|e| e.to_ascii_lowercase())
        .as_deref()
    {
        Some("mtx") => Format::MatrixMarket,
        Some("bin") => Format::Binary,
        _ => Format::EdgeList,
    }
}

/// Loads a graph, dispatching on extension.
pub fn load(path: &Path) -> Result<Graph, GraphIoError> {
    match format_of(path) {
        Format::EdgeList => io::read_edge_list_path(path),
        Format::MatrixMarket => io_mm::read_matrix_market_path(path),
        Format::Binary => io::read_binary_path(path),
    }
}

/// Saves a graph, dispatching on extension.
pub fn save(g: &Graph, path: &Path) -> Result<(), GraphIoError> {
    match format_of(path) {
        Format::EdgeList => io::write_edge_list_path(g, path),
        Format::MatrixMarket => io_mm::write_matrix_market_path(g, path),
        Format::Binary => io::write_binary_path(g, path),
    }
}

/// Resolves an ordering by name; `Gorder` honours `--window`.
pub fn ordering_by_name(name: &str, window: u32, seed: u64) -> Option<Box<dyn OrderingAlgorithm>> {
    if name.eq_ignore_ascii_case("gorder") {
        return Some(Box::new(
            gorder_orders::gorder_impl::GorderOrdering::from_gorder(
                GorderBuilder::new().window(window).build(),
            ),
        ));
    }
    gorder_orders::extensions::extended(seed)
        .into_iter()
        .find(|o| o.name().eq_ignore_ascii_case(name))
}

/// Names of every ordering the CLI accepts.
pub fn ordering_names() -> Vec<&'static str> {
    gorder_orders::extensions::extended(0)
        .iter()
        .map(|o| o.name())
        .collect()
}

/// Names of every algorithm the CLI accepts.
pub fn algorithm_names() -> Vec<&'static str> {
    gorder_algos::extended().iter().map(|a| a.name()).collect()
}

/// `stats` subcommand: one human-readable block.
pub fn stats_report(g: &Graph) -> String {
    let s = GraphStats::compute(g);
    format!(
        "nodes            {}\n\
         edges            {}\n\
         mean out-degree  {:.2}\n\
         max out-degree   {}\n\
         max in-degree    {}\n\
         reciprocity      {:.1}%\n\
         isolated nodes   {}\n\
         degree gini      {:.3}\n\
         csr memory       {:.1} MB",
        s.n,
        s.m,
        s.mean_degree,
        s.max_out_degree,
        s.max_in_degree,
        s.reciprocity * 100.0,
        s.isolated,
        degree_gini(g),
        g.memory_bytes() as f64 / 1e6,
    )
}

/// Computes the named ordering under an optional timeout. A degraded
/// result (the anytime prefix completed by a cheaper fallback) is still a
/// valid permutation and is returned alongside its reason; an empty-handed
/// timeout or failure becomes a [`CliError`].
pub fn compute_ordering_budgeted(
    g: &Graph,
    method: &str,
    window: u32,
    seed: u64,
    timeout: Option<Duration>,
) -> Result<(Permutation, Option<DegradeReason>), CliError> {
    resolve_ordering_cached(g, method, window, seed, timeout, None, None)
        .map(|r| (r.perm, r.degraded))
}

/// One resolved ordering: the permutation, the degradation marker, and
/// the trace-ready [`OrderEvent`] describing how it was obtained.
pub struct ResolvedOrdering {
    /// The permutation, computed or cache-loaded.
    pub perm: Permutation,
    /// `Some` when the (anytime) ordering ran out of budget partway.
    pub degraded: Option<DegradeReason>,
    /// The `order` trace record for this resolution.
    pub event: OrderEvent,
}

/// [`compute_ordering_budgeted`] through the unified runner
/// ([`run_ordering`]) with an optional content-addressed permutation
/// cache: a hit skips the computation entirely, a completed miss is
/// stored back (degraded permutations are never cached — they depend on
/// the budget, not just the key). `dataset` labels the resulting
/// [`OrderEvent`] (the CLI passes the input path).
pub fn resolve_ordering_cached(
    g: &Graph,
    method: &str,
    window: u32,
    seed: u64,
    timeout: Option<Duration>,
    cache: Option<&OrderCache>,
    dataset: Option<&str>,
) -> Result<ResolvedOrdering, CliError> {
    resolve_ordering_with_budget(
        g,
        method,
        window,
        seed,
        &budget_from(timeout),
        cache,
        dataset,
    )
}

/// [`resolve_ordering_cached`] against a caller-owned [`Budget`] instead
/// of a bare timeout, so long-lived callers (the serve daemon) can hold a
/// clone and cancel the resolution mid-flight — e.g. when a drain grace
/// period expires.
#[allow(clippy::too_many_arguments)]
pub fn resolve_ordering_with_budget(
    g: &Graph,
    method: &str,
    window: u32,
    seed: u64,
    budget: &Budget,
    cache: Option<&OrderCache>,
    dataset: Option<&str>,
) -> Result<ResolvedOrdering, CliError> {
    let o = ordering_by_name(method, window, seed).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown ordering {method:?}; known: {:?}",
            ordering_names()
        ))
    })?;
    let key = CacheKey::for_ordering(g, o.as_ref(), seed);
    let event = |status: &str, seconds: f64, stats: OrderStats, hit: bool| OrderEvent {
        dataset: dataset.map(str::to_string),
        name: o.name().to_string(),
        params: o.params(),
        seed,
        graph_digest: key.graph_digest,
        identity: key.identity(),
        status: status.to_string(),
        seconds,
        nodes_placed: stats.nodes_placed,
        heap_increments: stats.heap_increments,
        heap_decrements: stats.heap_decrements,
        heap_pops: stats.heap_pops,
        threads_used: u64::from(stats.threads_used),
        cache_hit: hit,
    };
    if let Some(cache) = cache {
        let t = std::time::Instant::now();
        if let Some(perm) = cache.load(&key, g.n()) {
            let stats = OrderStats {
                nodes_placed: u64::from(perm.len()),
                threads_used: 1,
                cache_hit: true,
                ..Default::default()
            };
            let ev = event("completed", t.elapsed().as_secs_f64(), stats, true);
            return Ok(ResolvedOrdering {
                perm,
                degraded: None,
                event: ev,
            });
        }
    }
    match run_ordering(o.as_ref(), g, gorder_orders::ExecPlan::Serial, budget) {
        ExecOutcome::Completed(run) => {
            if let Some(cache) = cache {
                if let Err(e) = cache.store(&key, &run.perm) {
                    eprintln!("warning: order cache store failed: {e}");
                }
            }
            let ev = event("completed", run.stats.compute_secs, run.stats, false);
            Ok(ResolvedOrdering {
                perm: run.perm,
                degraded: None,
                event: ev,
            })
        }
        ExecOutcome::Degraded(run, reason) => {
            let ev = event("degraded", run.stats.compute_secs, run.stats, false);
            Ok(ResolvedOrdering {
                perm: run.perm,
                degraded: Some(reason),
                event: ev,
            })
        }
        ExecOutcome::TimedOut => Err(CliError::TimedOut),
        ExecOutcome::Failed(msg) => Err(CliError::Failed(msg)),
    }
}

/// Resolves and applies the optional `--method` ordering under an optional
/// timeout, returning the (re)labelled graph, a report note, and the
/// degradation marker if the ordering ran out of budget partway.
fn ordered_graph(
    g: &Graph,
    ordering: Option<&str>,
    window: u32,
    seed: u64,
    timeout: Option<Duration>,
) -> Result<(Graph, String, Option<DegradeReason>), CliError> {
    match ordering {
        None => Ok((g.clone(), "original order".to_string(), None)),
        Some(name) => {
            let (perm, degraded) = compute_ordering_budgeted(g, name, window, seed, timeout)?;
            let note = match degraded {
                None => format!("{name} order"),
                Some(reason) => format!("{name} order (degraded: {reason})"),
            };
            Ok((g.relabel(&perm), note, degraded))
        }
    }
}

/// `run` subcommand: execute an algorithm (optionally after reordering),
/// returning a report line. Unbudgeted compatibility wrapper around
/// [`run_algorithm_budgeted`].
pub fn run_algorithm(
    g: &Graph,
    algo: &str,
    ordering: Option<&str>,
    window: u32,
    seed: u64,
) -> Result<String, String> {
    run_algorithm_budgeted(g, algo, ordering, window, seed, None, 1)
        .map(|o| o.report)
        .map_err(|e| e.to_string())
}

/// `run` subcommand under an optional `--timeout`: the ordering phase is
/// budgeted; a degraded ordering still runs the algorithm and is flagged
/// in [`CmdOutput::degraded`]. `threads` schedules the engine-backed
/// kernels' parallel sections (`--threads`); results are byte-identical
/// to serial, only the timing and the `threads_used`/`thread_busy_secs`
/// stats fields change.
#[allow(clippy::too_many_arguments)]
pub fn run_algorithm_budgeted(
    g: &Graph,
    algo: &str,
    ordering: Option<&str>,
    window: u32,
    seed: u64,
    timeout: Option<Duration>,
    threads: u32,
) -> Result<CmdOutput, CliError> {
    let a = gorder_algos::by_name(algo).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown algorithm {algo:?}; known: {:?}",
            algorithm_names()
        ))
    })?;
    let (graph, note, degraded) = ordered_graph(g, ordering, window, seed, timeout)?;
    let ctx = RunCtx {
        seed,
        ..Default::default()
    };
    let t = std::time::Instant::now();
    let (checksum, stats) = a.run_stats_plan(&graph, &ctx, ExecPlan::with_threads(threads));
    let seconds = t.elapsed().as_secs_f64();
    Ok(CmdOutput {
        report: format!("{algo} over {note}: checksum {checksum:#x} in {seconds:.3}s"),
        degraded,
        stats_json: Some(stats_json_line(
            a.name(),
            ordering,
            checksum,
            seconds,
            &stats,
        )),
        trace_events: vec![kernel_trace_event(
            a.name(),
            ordering,
            checksum,
            seconds,
            threads,
            &stats,
        )],
    })
}

/// `simulate` subcommand: cache profile of an algorithm under an ordering.
/// Unbudgeted compatibility wrapper around [`simulate_algorithm_budgeted`].
pub fn simulate_algorithm(
    g: &Graph,
    algo: &str,
    ordering: Option<&str>,
    window: u32,
    seed: u64,
) -> Result<String, String> {
    simulate_algorithm_budgeted(g, algo, ordering, window, seed, None)
        .map(|o| o.report)
        .map_err(|e| e.to_string())
}

/// `simulate` subcommand under an optional `--timeout` on the ordering
/// phase.
pub fn simulate_algorithm_budgeted(
    g: &Graph,
    algo: &str,
    ordering: Option<&str>,
    window: u32,
    seed: u64,
    timeout: Option<Duration>,
) -> Result<CmdOutput, CliError> {
    let (graph, note, degraded) = ordered_graph(g, ordering, window, seed, timeout)?;
    let ctx = TraceCtx {
        pr_iterations: 5,
        diameter_samples: 4,
        seed,
        ..Default::default()
    };
    let mut tracer = Tracer::new(CacheHierarchy::new(&HierarchyConfig::scaled_down()));
    let t = std::time::Instant::now();
    let (checksum, stats) =
        replay_with_stats(algo, &graph, &mut tracer, &ctx).ok_or_else(|| {
            CliError::Usage(format!(
                "no replayer for {algo:?}; known: {:?}",
                algorithm_names()
            ))
        })?;
    let seconds = t.elapsed().as_secs_f64();
    let s = tracer.stats();
    let b = tracer.breakdown(&StallModel::skylake());
    Ok(CmdOutput {
        report: format!(
            "{algo} over {note}: {:.1}M refs, L1-mr {:.1}%, cache-mr {:.1}%, stall share {:.0}%",
            s.l1_refs as f64 / 1e6,
            s.l1_miss_rate * 100.0,
            s.cache_miss_rate * 100.0,
            b.stall_fraction() * 100.0
        ),
        degraded,
        stats_json: Some(stats_json_line(algo, ordering, checksum, seconds, &stats)),
        trace_events: vec![kernel_trace_event(
            algo, ordering, checksum, seconds, 1, &stats,
        )],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_detection() {
        assert_eq!(format_of(Path::new("a.mtx")), Format::MatrixMarket);
        assert_eq!(format_of(Path::new("a.MTX")), Format::MatrixMarket);
        assert_eq!(format_of(Path::new("a.bin")), Format::Binary);
        assert_eq!(format_of(Path::new("a.txt")), Format::EdgeList);
        assert_eq!(format_of(Path::new("noext")), Format::EdgeList);
    }

    #[test]
    fn load_save_roundtrip_all_formats() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4), (4, 0)]);
        let dir = std::env::temp_dir().join("gorder_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["g.txt", "g.mtx", "g.bin"] {
            let p = dir.join(name);
            save(&g, &p).unwrap();
            assert_eq!(load(&p).unwrap(), g, "{name}");
        }
    }

    #[test]
    fn ordering_resolution() {
        assert!(ordering_by_name("Gorder", 5, 1).is_some());
        assert!(ordering_by_name("gorder", 9, 1).is_some());
        assert!(ordering_by_name("rcm", 5, 1).is_some());
        assert!(ordering_by_name("DBG", 5, 1).is_some());
        assert!(ordering_by_name("nope", 5, 1).is_none());
        assert!(ordering_names().contains(&"SlashBurn"));
    }

    #[test]
    fn stats_report_contains_counts() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let r = stats_report(&g);
        assert!(r.contains("nodes            3"));
        assert!(r.contains("edges            2"));
    }

    #[test]
    fn run_and_simulate_work() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (0, 3)]);
        let run = run_algorithm(&g, "BFS", Some("Gorder"), 5, 1).unwrap();
        assert!(run.contains("BFS over Gorder order"));
        let sim = simulate_algorithm(&g, "PR", None, 5, 1).unwrap();
        assert!(sim.contains("L1-mr"));
        assert!(run_algorithm(&g, "XX", None, 5, 1).is_err());
        assert!(simulate_algorithm(&g, "PR", Some("zzz"), 5, 1).is_err());
    }

    #[test]
    fn exit_codes_are_distinct() {
        let errs = [
            CliError::Usage("x".into()),
            CliError::TimedOut,
            CliError::Failed("y".into()),
            CliError::GraphIo(GraphIoError::BadMagic),
        ];
        let mut codes: Vec<u8> = errs.iter().map(CliError::exit_code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len(), "exit codes must not alias");
        // 0 = success, 1 = panic/abort, 3 = degraded are reserved.
        assert!(!codes.contains(&0) && !codes.contains(&1) && !codes.contains(&3));
    }

    #[test]
    fn zero_timeout_gorder_degrades_but_still_runs() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (0, 3)]);
        let out = run_algorithm_budgeted(
            &g,
            "BFS",
            Some("Gorder"),
            5,
            1,
            Some(Duration::from_secs(0)),
            1,
        )
        .unwrap();
        assert!(out.degraded.is_some(), "zero budget must degrade");
        assert!(out.report.contains("degraded"));
    }

    #[test]
    fn zero_timeout_without_anytime_path_times_out() {
        // RCM has no compute_budgeted override: the trait default returns
        // TimedOut when the budget is exhausted before it starts.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        match run_algorithm_budgeted(
            &g,
            "BFS",
            Some("RCM"),
            5,
            1,
            Some(Duration::from_secs(0)),
            1,
        ) {
            Err(CliError::TimedOut) => {}
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn unlimited_budgeted_matches_unbudgeted() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (0, 3)]);
        let plain = run_algorithm(&g, "NQ", Some("ChDFS"), 5, 1).unwrap();
        let budgeted = run_algorithm_budgeted(&g, "NQ", Some("ChDFS"), 5, 1, None, 1).unwrap();
        assert!(budgeted.degraded.is_none());
        // Reports match up to the timing suffix.
        let head = |s: &str| s.split(" in ").next().unwrap().to_string();
        assert_eq!(head(&plain), head(&budgeted.report));
    }

    #[test]
    fn compute_ordering_budgeted_unknown_is_usage() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        match compute_ordering_budgeted(&g, "nope", 5, 1, None) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("unknown ordering")),
            other => panic!("expected Usage, got {other:?}"),
        }
    }

    /// The shared strict parser from `gorder_obs`: the same validation
    /// path the golden tests, the CI trace check, and `validate-trace`
    /// use, so "parses here" means "parses everywhere downstream".
    use gorder_obs::json::parse_object as parse_json_object;

    const STATS_KEYS: [&str; 15] = [
        "algo",
        "ordering",
        "checksum",
        "seconds",
        "engine",
        "iterations",
        "edges_relaxed",
        "frontier_pushes",
        "frontier_peak",
        "init_secs",
        "compute_secs",
        "finish_secs",
        "threads_used",
        "thread_busy_secs",
        "degraded_serial",
    ];

    #[test]
    fn run_stats_json_is_valid_and_complete() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (0, 3)]);
        let out = run_algorithm_budgeted(&g, "BFS", Some("Gorder"), 5, 1, None, 1).unwrap();
        let line = out.stats_json.expect("run emits a stats line");
        let obj = parse_json_object(&line).unwrap_or_else(|e| panic!("{e} in {line}"));
        for key in STATS_KEYS {
            assert!(obj.contains_key(key), "missing {key} in {line}");
        }
        assert_eq!(obj["algo"], "\"BFS\"");
        assert_eq!(obj["ordering"], "\"Gorder\"");
        assert_eq!(obj["engine"], "true");
        assert_eq!(obj["threads_used"], "1");
        assert_eq!(obj["thread_busy_secs"], "[]", "serial runs have no workers");
        assert_eq!(obj["degraded_serial"], "false", "clean runs never degrade");
        assert!(obj["iterations"].parse::<u64>().unwrap() >= 1, "{line}");
        // BFS (with restarts) scans every out-edge exactly once
        assert_eq!(obj["edges_relaxed"].parse::<u64>().unwrap(), g.m());
    }

    #[test]
    fn parallel_run_reports_threads_and_busy_times() {
        // A graph wide enough that the PR partitioner yields four
        // non-empty ranges: 200 nodes in a ring plus some chords.
        let mut edges: Vec<(u32, u32)> = (0..200u32).map(|u| (u, (u + 1) % 200)).collect();
        edges.extend((0..50u32).map(|u| (u * 4, (u * 7 + 3) % 200)));
        let g = Graph::from_edges(200, &edges);
        let out = run_algorithm_budgeted(&g, "PR", None, 5, 1, None, 4).unwrap();
        let line = out.stats_json.expect("run emits a stats line");
        let obj = parse_json_object(&line).unwrap_or_else(|e| panic!("{e} in {line}"));
        assert_eq!(obj["threads_used"], "4", "{line}");
        let busy = obj["thread_busy_secs"].trim_matches(['[', ']']);
        let entries: Vec<f64> = busy.split(',').map(|s| s.parse().unwrap()).collect();
        assert_eq!(entries.len(), 4, "{line}");
        assert!(entries.iter().all(|&s| s > 0.0), "{line}");
    }

    #[test]
    fn simulate_stats_json_covers_engine_and_extensions() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (0, 3)]);
        let out = simulate_algorithm_budgeted(&g, "PR", None, 5, 1, None).unwrap();
        let line = out.stats_json.expect("simulate emits a stats line");
        let obj = parse_json_object(&line).unwrap_or_else(|e| panic!("{e} in {line}"));
        assert_eq!(obj["ordering"], "null");
        assert_eq!(obj["engine"], "true");
        // simulate fixes pr_iterations at 5
        assert_eq!(obj["iterations"], "5");

        let out = simulate_algorithm_budgeted(&g, "WCC", None, 5, 1, None).unwrap();
        let obj = parse_json_object(&out.stats_json.unwrap()).unwrap();
        assert_eq!(obj["engine"], "false");
        assert_eq!(obj["iterations"], "0");
    }

    #[test]
    fn run_trace_round_trips_the_strict_parser() {
        // The acceptance path end-to-end in memory: manifest + the kernel
        // event `run` produces + a registry snapshot, every line through
        // the same strict parser `validate-trace` and CI use.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (0, 3)]);
        let out = run_algorithm_budgeted(&g, "BFS", Some("Gorder"), 5, 1, None, 1).unwrap();
        assert_eq!(out.trace_events.len(), 1, "run emits one kernel event");
        let mut sink = gorder_obs::TraceSink::new(Vec::new());
        sink.manifest(&gorder_obs::RunManifest::new("gorder-cli run", "test"))
            .unwrap();
        for e in &out.trace_events {
            sink.event(e).unwrap();
        }
        sink.metrics(&gorder_obs::global().snapshot()).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let summary = gorder_obs::validate_jsonl(&text).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(summary.by_kind["manifest"], 1);
        assert_eq!(summary.by_kind["kernel"], 1);
        // the kernel event's keys mirror the --stats line exactly
        let kernel_line = text.lines().nth(1).unwrap();
        let obj = parse_json_object(kernel_line).unwrap();
        assert_eq!(obj["kind"], "\"kernel\"");
        for key in STATS_KEYS {
            assert!(obj.contains_key(key), "missing {key} in {kernel_line}");
        }
        assert_eq!(obj["engine"], "\"serial\"", "trace uses the label form");
    }

    #[test]
    fn validate_trace_file_accepts_good_and_rejects_bad() {
        let dir = std::env::temp_dir();
        let good = dir.join(format!("gorder-cli-good-{}.jsonl", std::process::id()));
        let mut sink = gorder_obs::TraceSink::create(&good).unwrap();
        sink.manifest(&gorder_obs::RunManifest::new("t", "c"))
            .unwrap();
        drop(sink);
        let summary = validate_trace_file(&good, false).unwrap();
        assert!(summary.contains("valid trace, 1 lines"), "{summary}");
        std::fs::remove_file(&good).ok();

        let bad = dir.join(format!("gorder-cli-bad-{}.jsonl", std::process::id()));
        std::fs::write(&bad, "{\"kind\":\"cell\"}\n").unwrap();
        match validate_trace_file(&bad, false) {
            Err(CliError::Failed(msg)) => {
                assert!(
                    msg.contains("manifest"),
                    "first line must be a manifest: {msg}"
                )
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn validate_trace_file_lenient_tolerates_a_torn_final_line() {
        // The exact artifact a SIGKILL mid-write leaves: a valid
        // manifest, a valid event, then a half-written line with no
        // trailing newline. Strict mode must reject it; --lenient must
        // accept it and say so in the summary.
        let dir = std::env::temp_dir();
        let torn = dir.join(format!("gorder-cli-torn-{}.jsonl", std::process::id()));
        let mut sink = gorder_obs::TraceSink::create(&torn).unwrap();
        sink.manifest(&gorder_obs::RunManifest::new("t", "c"))
            .unwrap();
        sink.event(&gorder_obs::TraceEvent::Phase(gorder_obs::PhaseEvent {
            name: "order".to_string(),
            seconds: 0.5,
        }))
        .unwrap();
        drop(sink);
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&torn)
            .unwrap();
        f.write_all(b"{\"kind\":\"ce").unwrap();
        drop(f);

        match validate_trace_file(&torn, false) {
            Err(CliError::Failed(_)) => {}
            other => panic!("strict mode must reject a torn line, got {other:?}"),
        }
        let summary = validate_trace_file(&torn, true).unwrap();
        assert!(summary.contains("torn final line"), "{summary}");
        assert!(summary.contains("valid trace, 2 lines"), "{summary}");
        std::fs::remove_file(&torn).ok();
    }
}
