//! # gorder-cli — command-line front end
//!
//! The workflows the original Gorder release supported (reorder an edge
//! list), plus the ones this reproduction adds: inspect, convert between
//! formats, run the benchmark algorithms, and cache-profile a graph under
//! any ordering. The binary is a thin `main` over this library so every
//! piece is unit-testable.
//!
//! ```text
//! gorder-cli stats    <input>
//! gorder-cli order    <input> <output> [--method Gorder] [--window 5]
//! gorder-cli convert  <input> <output>
//! gorder-cli run      <algo> <input> [--method NAME]
//! gorder-cli simulate <algo> <input> [--method NAME]
//! ```
//!
//! Formats are chosen by extension: `.mtx` Matrix Market, `.bin` the
//! compact binary format, anything else a whitespace edge list.

use gorder_algos::RunCtx;
use gorder_cachesim::trace::{replay, TraceCtx};
use gorder_cachesim::{CacheHierarchy, HierarchyConfig, StallModel, Tracer};
use gorder_core::GorderBuilder;
use gorder_graph::io::GraphIoError;
use gorder_graph::stats::{degree_gini, GraphStats};
use gorder_graph::{io, io_mm, Graph};
use gorder_orders::OrderingAlgorithm;
use std::path::Path;

/// Graph file formats the CLI understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Whitespace-separated `u v` pairs (default).
    EdgeList,
    /// Matrix Market coordinate.
    MatrixMarket,
    /// This crate's compact binary CSR.
    Binary,
}

/// Picks a format from a path's extension.
pub fn format_of(path: &Path) -> Format {
    match path
        .extension()
        .and_then(|e| e.to_str())
        .map(|e| e.to_ascii_lowercase())
        .as_deref()
    {
        Some("mtx") => Format::MatrixMarket,
        Some("bin") => Format::Binary,
        _ => Format::EdgeList,
    }
}

/// Loads a graph, dispatching on extension.
pub fn load(path: &Path) -> Result<Graph, GraphIoError> {
    match format_of(path) {
        Format::EdgeList => io::read_edge_list_path(path),
        Format::MatrixMarket => io_mm::read_matrix_market_path(path),
        Format::Binary => io::read_binary_path(path),
    }
}

/// Saves a graph, dispatching on extension.
pub fn save(g: &Graph, path: &Path) -> Result<(), GraphIoError> {
    match format_of(path) {
        Format::EdgeList => io::write_edge_list_path(g, path),
        Format::MatrixMarket => io_mm::write_matrix_market_path(g, path),
        Format::Binary => io::write_binary_path(g, path),
    }
}

/// Resolves an ordering by name; `Gorder` honours `--window`.
pub fn ordering_by_name(name: &str, window: u32, seed: u64) -> Option<Box<dyn OrderingAlgorithm>> {
    if name.eq_ignore_ascii_case("gorder") {
        return Some(Box::new(
            gorder_orders::gorder_impl::GorderOrdering::from_gorder(
                GorderBuilder::new().window(window).build(),
            ),
        ));
    }
    gorder_orders::extensions::extended(seed)
        .into_iter()
        .find(|o| o.name().eq_ignore_ascii_case(name))
}

/// Names of every ordering the CLI accepts.
pub fn ordering_names() -> Vec<&'static str> {
    gorder_orders::extensions::extended(0)
        .iter()
        .map(|o| o.name())
        .collect()
}

/// Names of every algorithm the CLI accepts.
pub fn algorithm_names() -> Vec<&'static str> {
    gorder_algos::extended().iter().map(|a| a.name()).collect()
}

/// `stats` subcommand: one human-readable block.
pub fn stats_report(g: &Graph) -> String {
    let s = GraphStats::compute(g);
    format!(
        "nodes            {}\n\
         edges            {}\n\
         mean out-degree  {:.2}\n\
         max out-degree   {}\n\
         max in-degree    {}\n\
         reciprocity      {:.1}%\n\
         isolated nodes   {}\n\
         degree gini      {:.3}\n\
         csr memory       {:.1} MB",
        s.n,
        s.m,
        s.mean_degree,
        s.max_out_degree,
        s.max_in_degree,
        s.reciprocity * 100.0,
        s.isolated,
        degree_gini(g),
        g.memory_bytes() as f64 / 1e6,
    )
}

/// `run` subcommand: execute an algorithm (optionally after reordering),
/// returning a report line.
pub fn run_algorithm(
    g: &Graph,
    algo: &str,
    ordering: Option<&str>,
    window: u32,
    seed: u64,
) -> Result<String, String> {
    let a = gorder_algos::by_name(algo)
        .ok_or_else(|| format!("unknown algorithm {algo:?}; known: {:?}", algorithm_names()))?;
    let (graph, note) = match ordering {
        None => (g.clone(), "original order".to_string()),
        Some(name) => {
            let o = ordering_by_name(name, window, seed).ok_or_else(|| {
                format!("unknown ordering {name:?}; known: {:?}", ordering_names())
            })?;
            (g.relabel(&o.compute(g)), format!("{} order", o.name()))
        }
    };
    let ctx = RunCtx {
        seed,
        ..Default::default()
    };
    let t = std::time::Instant::now();
    let checksum = a.run(&graph, &ctx);
    Ok(format!(
        "{algo} over {note}: checksum {checksum:#x} in {:.3}s",
        t.elapsed().as_secs_f64()
    ))
}

/// `simulate` subcommand: cache profile of an algorithm under an ordering.
pub fn simulate_algorithm(
    g: &Graph,
    algo: &str,
    ordering: Option<&str>,
    window: u32,
    seed: u64,
) -> Result<String, String> {
    let (graph, note) = match ordering {
        None => (g.clone(), "original order".to_string()),
        Some(name) => {
            let o = ordering_by_name(name, window, seed).ok_or_else(|| {
                format!("unknown ordering {name:?}; known: {:?}", ordering_names())
            })?;
            (g.relabel(&o.compute(g)), format!("{} order", o.name()))
        }
    };
    let ctx = TraceCtx {
        pr_iterations: 5,
        diameter_samples: 4,
        seed,
        ..Default::default()
    };
    let mut tracer = Tracer::new(CacheHierarchy::new(&HierarchyConfig::scaled_down()));
    replay(algo, &graph, &mut tracer, &ctx)
        .ok_or_else(|| format!("no replayer for {algo:?}; known: {:?}", algorithm_names()))?;
    let s = tracer.stats();
    let b = tracer.breakdown(&StallModel::skylake());
    Ok(format!(
        "{algo} over {note}: {:.1}M refs, L1-mr {:.1}%, cache-mr {:.1}%, stall share {:.0}%",
        s.l1_refs as f64 / 1e6,
        s.l1_miss_rate * 100.0,
        s.cache_miss_rate * 100.0,
        b.stall_fraction() * 100.0
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_detection() {
        assert_eq!(format_of(Path::new("a.mtx")), Format::MatrixMarket);
        assert_eq!(format_of(Path::new("a.MTX")), Format::MatrixMarket);
        assert_eq!(format_of(Path::new("a.bin")), Format::Binary);
        assert_eq!(format_of(Path::new("a.txt")), Format::EdgeList);
        assert_eq!(format_of(Path::new("noext")), Format::EdgeList);
    }

    #[test]
    fn load_save_roundtrip_all_formats() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4), (4, 0)]);
        let dir = std::env::temp_dir().join("gorder_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["g.txt", "g.mtx", "g.bin"] {
            let p = dir.join(name);
            save(&g, &p).unwrap();
            assert_eq!(load(&p).unwrap(), g, "{name}");
        }
    }

    #[test]
    fn ordering_resolution() {
        assert!(ordering_by_name("Gorder", 5, 1).is_some());
        assert!(ordering_by_name("gorder", 9, 1).is_some());
        assert!(ordering_by_name("rcm", 5, 1).is_some());
        assert!(ordering_by_name("DBG", 5, 1).is_some());
        assert!(ordering_by_name("nope", 5, 1).is_none());
        assert!(ordering_names().contains(&"SlashBurn"));
    }

    #[test]
    fn stats_report_contains_counts() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let r = stats_report(&g);
        assert!(r.contains("nodes            3"));
        assert!(r.contains("edges            2"));
    }

    #[test]
    fn run_and_simulate_work() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (0, 3)]);
        let run = run_algorithm(&g, "BFS", Some("Gorder"), 5, 1).unwrap();
        assert!(run.contains("BFS over Gorder order"));
        let sim = simulate_algorithm(&g, "PR", None, 5, 1).unwrap();
        assert!(sim.contains("L1-mr"));
        assert!(run_algorithm(&g, "XX", None, 5, 1).is_err());
        assert!(simulate_algorithm(&g, "PR", Some("zzz"), 5, 1).is_err());
    }
}
