//! `gorder-cli` — thin argument dispatcher over the library (see
//! `lib.rs` for the testable logic and the usage synopsis).
//!
//! Exit codes: 0 success, 2 usage error, 3 succeeded but a budgeted
//! stage degraded (`--timeout`), 4 timed out empty-handed, 5 stage
//! failed, 6 graph file unreadable/unwritable. 1 is left to panics so it
//! never aliases a clean error.

use gorder_cli::{
    algorithm_names, load, ordering_names, remote, resolve_ordering_cached, run_algorithm_budgeted,
    save, simulate_algorithm_budgeted, stats_report, validate_trace_file, CliError, CmdOutput,
    ResolvedOrdering,
};
use gorder_core::budget::DegradeReason;
use gorder_obs::{RunManifest, TraceEvent, TraceSink};
use gorder_orders::OrderCache;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> &'static str {
    "usage:\n  \
     gorder-cli stats    <input>\n  \
     gorder-cli order    <input> <output> [--method Gorder] [--window 5] [--seed 42] [--timeout SECS] [--order-cache DIR] [--trace-out PATH]\n  \
     gorder-cli list-orderings\n  \
     gorder-cli convert  <input> <output>\n  \
     gorder-cli run      <algo> <input> [--method NAME] [--window 5] [--seed 42] [--timeout SECS] [--threads N] [--stats] [--trace-out PATH]\n  \
     gorder-cli simulate <algo> <input> [--method NAME] [--window 5] [--seed 42] [--timeout SECS] [--stats] [--trace-out PATH]\n  \
     gorder-cli validate-trace <trace.jsonl> [--lenient]\n  \
     gorder-cli remote <addr> <op> [--dataset NAME] [--method NAME] [--algo NAME] [--window 5] [--seed 0] [--timeout-ms N] [--threads N] [--retries 5] [--retry-base-ms 50] [--retry-budget-ms 2000] [--retry-seed 0]\n\n\
     formats by extension: .mtx (Matrix Market), .bin (compact CSR), else edge list\n\
     --timeout bounds the ordering phase: anytime orderings return their\n\
     best-so-far (exit 3, reason on stderr); others exit 4\n\
     --order-cache reuses permutations across runs: content-addressed by\n\
     graph digest + ordering + params + seed, so a warm run loads instead\n\
     of recomputing (degraded results are never cached)\n\
     --threads runs the engine kernels' parallel sections on N workers\n\
     (results are byte-identical to serial; simulate always traces serially)\n\
     --stats appends one JSON line of per-kernel metrics (iterations,\n\
     edges relaxed, frontier occupancy, phase timings, per-thread busy\n\
     times) to stdout\n\
     --trace-out writes a schema-versioned JSONL run trace (manifest line,\n\
     then one event per phase/kernel plus registry metrics); validate it\n\
     with `gorder-cli validate-trace` (--lenient tolerates one torn\n\
     final line — the signature a crash mid-write leaves)\n\
     remote sends one request to a gorder-serve daemon (ops: health,\n\
     stats, shutdown, order, run, simulate) with seeded-jitter\n\
     exponential backoff; busy responses are always retried, error\n\
     responses never, lost connections only for idempotent ops.\n\
     exit 3 when the served tier was degraded/original, 4 when every\n\
     attempt was shed and the retry budget ran out"
}

struct Flags {
    method: Option<String>,
    window: u32,
    seed: u64,
    timeout: Option<Duration>,
    threads: u32,
    stats: bool,
    trace_out: Option<PathBuf>,
    order_cache: Option<PathBuf>,
}

impl Flags {
    /// Canonical config string hashed into the trace manifest — every
    /// knob that shapes the run, in a fixed order.
    fn config_string(&self, cmd: &str, algo: Option<&str>, input: &str) -> String {
        format!(
            "cmd={cmd},algo={},input={input},method={},window={},seed={},timeout={},threads={}",
            algo.unwrap_or("-"),
            self.method.as_deref().unwrap_or("-"),
            self.window,
            self.seed,
            self.timeout
                .map_or("-".to_string(), |t| t.as_secs_f64().to_string()),
            self.threads,
        )
    }

    /// The trace manifest for one invocation.
    fn manifest(&self, cmd: &str, algo: Option<&str>, input: &str) -> RunManifest {
        let mut m = RunManifest::new(
            &format!("gorder-cli {cmd}"),
            &self.config_string(cmd, algo, input),
        );
        m.dataset = Some(input.to_string());
        m.ordering = self.method.clone();
        m.algo = algo.map(str::to_string);
        m.threads = u64::from(self.threads);
        m.window = Some(u64::from(self.window));
        m
    }
}

/// Opens the `--trace-out` sink, writes the manifest and `events`, then
/// appends every metric the global registry accumulated during the run
/// (gorder.build spans, unit-heap counters, kernel.* aggregates).
///
/// Written atomically (dotted temp name + rename): unlike the sweep
/// harness's streaming traces — which double as crash logs and are
/// deliberately left torn — a CLI trace is assembled after the run
/// finished, so a crash mid-write should leave nothing at `path`.
fn write_trace(path: &Path, manifest: &RunManifest, events: &[TraceEvent]) -> Result<(), CliError> {
    let fail = |e: std::io::Error| CliError::Failed(format!("trace {}: {e}", path.display()));
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .ok_or_else(|| CliError::Failed(format!("trace {}: not a file path", path.display())))?;
    let tmp = path.with_file_name(format!(".{name}.tmp"));
    let mut sink = TraceSink::create(&tmp).map_err(fail)?;
    sink.manifest(manifest).map_err(fail)?;
    for e in events {
        sink.event(e).map_err(fail)?;
    }
    sink.metrics(&gorder_obs::global().snapshot())
        .map_err(fail)?;
    let lines = sink.lines_written();
    let file = sink
        .into_inner()
        .into_inner()
        .map_err(|e| CliError::Failed(format!("trace {}: {e}", path.display())))?;
    file.sync_all().map_err(fail)?;
    std::fs::rename(&tmp, path).map_err(fail)?;
    eprintln!("trace: {} lines -> {}", lines, path.display());
    Ok(())
}

fn parse_flags(args: &[String]) -> Result<Flags, CliError> {
    let mut flags = Flags {
        method: None,
        window: 5,
        seed: 42,
        timeout: None,
        threads: 1,
        stats: false,
        trace_out: None,
        order_cache: None,
    };
    let usage_err = |msg: &str| CliError::Usage(msg.to_string());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--method" => {
                flags.method = Some(
                    it.next()
                        .ok_or_else(|| usage_err("--method needs a value"))?
                        .clone(),
                );
            }
            "--window" => {
                flags.window = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage_err("--window needs a positive integer"))?;
            }
            "--seed" => {
                flags.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage_err("--seed needs an integer"))?;
            }
            "--timeout" => {
                let secs: f64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage_err("--timeout needs a number of seconds"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(usage_err("--timeout must be a non-negative number"));
                }
                flags.timeout = Some(Duration::from_secs_f64(secs));
            }
            "--threads" => {
                let threads: u32 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage_err("--threads needs a positive integer"))?;
                if threads == 0 {
                    return Err(usage_err("--threads must be at least 1"));
                }
                flags.threads = threads;
            }
            "--stats" => flags.stats = true,
            "--order-cache" => {
                flags.order_cache =
                    Some(PathBuf::from(it.next().ok_or_else(|| {
                        usage_err("--order-cache needs a directory")
                    })?));
            }
            "--trace-out" => {
                flags.trace_out = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| usage_err("--trace-out needs a path"))?,
                ));
            }
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    Ok(flags)
}

/// Flags for `gorder-cli remote`: the request fields plus the retry
/// schedule. Ordering reuses `--method` so local and remote invocations
/// read the same.
fn parse_remote_flags(
    op: &str,
    args: &[String],
) -> Result<(remote::RemoteRequest, remote::RetryPolicy), CliError> {
    let mut req = remote::RemoteRequest::control(op);
    let mut policy = remote::RetryPolicy::default();
    let usage_err = |msg: &str| CliError::Usage(msg.to_string());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let flag = a.as_str();
        let value = it
            .next()
            .ok_or_else(|| usage_err(&format!("flag {flag} needs a value")))?;
        let int = || -> Result<u64, CliError> {
            value
                .parse::<u64>()
                .map_err(|_| usage_err(&format!("flag {flag} needs a non-negative integer")))
        };
        match flag {
            "--dataset" => req.dataset = Some(value.clone()),
            "--method" => req.ordering = Some(value.clone()),
            "--algo" => req.algo = Some(value.clone()),
            "--window" => {
                req.window =
                    u32::try_from(int()?).map_err(|_| usage_err("--window out of range"))?
            }
            "--seed" => req.seed = int()?,
            "--timeout-ms" => req.timeout_ms = Some(int()?),
            "--threads" => {
                req.threads =
                    u32::try_from(int()?.max(1)).map_err(|_| usage_err("--threads out of range"))?
            }
            "--retries" => {
                policy.attempts =
                    u32::try_from(int()?.max(1)).map_err(|_| usage_err("--retries out of range"))?
            }
            "--retry-base-ms" => policy.base_ms = int()?,
            "--retry-budget-ms" => policy.budget_ms = int()?,
            "--retry-seed" => policy.seed = int()?,
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    let is_work = matches!(op, "order" | "run" | "simulate");
    if is_work && req.dataset.is_none() {
        return Err(usage_err(&format!("op {op:?} needs --dataset")));
    }
    if !is_work && !matches!(op, "health" | "stats" | "shutdown") {
        return Err(usage_err(&format!("unknown remote op {op:?}")));
    }
    Ok((req, policy))
}

fn real_main() -> Result<Option<DegradeReason>, CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    let need = |i: usize| -> Result<&String, CliError> {
        args.get(i).ok_or_else(|| CliError::Usage(usage().into()))
    };
    match cmd {
        "stats" => {
            let g = load(&PathBuf::from(need(1)?))?;
            println!("{}", stats_report(&g));
            Ok(None)
        }
        "order" => {
            let input = need(1)?.clone();
            let output = need(2)?.clone();
            let flags = parse_flags(&args[3..])?;
            let method = flags.method.as_deref().unwrap_or("Gorder");
            let cache = match &flags.order_cache {
                None => None,
                Some(dir) => Some(OrderCache::new(dir).map_err(|e| {
                    CliError::Failed(format!("order cache {}: {e}", dir.display()))
                })?),
            };
            let g = load(&PathBuf::from(&input))?;
            eprintln!("loaded {}: n = {}, m = {}", input, g.n(), g.m());
            let t = std::time::Instant::now();
            let ResolvedOrdering {
                perm,
                degraded,
                event,
            } = resolve_ordering_cached(
                &g,
                method,
                flags.window,
                flags.seed,
                flags.timeout,
                cache.as_ref(),
                Some(&input),
            )?;
            eprintln!(
                "{method} {} in {:.2?}",
                if event.cache_hit {
                    "loaded from cache"
                } else {
                    "computed"
                },
                t.elapsed()
            );
            save(&g.relabel(&perm), &PathBuf::from(&output))?;
            println!("wrote {output}");
            if let Some(path) = &flags.trace_out {
                let mut manifest = flags.manifest("order", None, &input);
                manifest.ordering = Some(method.to_string());
                let events = [TraceEvent::Order(event)];
                write_trace(path, &manifest, &events)?;
            }
            Ok(degraded)
        }
        "list-orderings" => {
            for name in ordering_names() {
                println!("{name}");
            }
            Ok(None)
        }
        "convert" => {
            let input = need(1)?.clone();
            let output = need(2)?.clone();
            let g = load(&PathBuf::from(&input))?;
            save(&g, &PathBuf::from(&output))?;
            println!("wrote {output} ({} nodes, {} edges)", g.n(), g.m());
            Ok(None)
        }
        "run" | "simulate" => {
            let algo = need(1)?.clone();
            let input = need(2)?.clone();
            let flags = parse_flags(&args[3..])?;
            let g = load(&PathBuf::from(&input))?;
            let CmdOutput {
                report,
                degraded,
                stats_json,
                trace_events,
            } = if cmd == "run" {
                run_algorithm_budgeted(
                    &g,
                    &algo,
                    flags.method.as_deref(),
                    flags.window,
                    flags.seed,
                    flags.timeout,
                    flags.threads,
                )?
            } else {
                simulate_algorithm_budgeted(
                    &g,
                    &algo,
                    flags.method.as_deref(),
                    flags.window,
                    flags.seed,
                    flags.timeout,
                )?
            };
            println!("{report}");
            if flags.stats {
                if let Some(line) = stats_json {
                    println!("{line}");
                }
            }
            if let Some(path) = &flags.trace_out {
                let manifest = flags.manifest(cmd, Some(&algo), &input);
                write_trace(path, &manifest, &trace_events)?;
            }
            Ok(degraded)
        }
        "validate-trace" => {
            let path = PathBuf::from(need(1)?);
            let lenient = match args.get(2).map(String::as_str) {
                None => false,
                Some("--lenient") => true,
                Some(other) => {
                    return Err(CliError::Usage(format!("unknown flag {other:?}")));
                }
            };
            let summary = validate_trace_file(&path, lenient)?;
            println!("{summary}");
            Ok(None)
        }
        "remote" => {
            let addr = need(1)?.clone();
            let op = need(2)?.clone();
            let (req, policy) = parse_remote_flags(&op, &args[3..])?;
            let reply = gorder_cli::remote::call(&addr, &req, &policy).map_err(|e| match e {
                remote::RemoteError::Transport(msg) => CliError::GraphIo(
                    gorder_graph::io::GraphIoError::Io(std::io::Error::other(msg)),
                ),
                remote::RemoteError::BusyExhausted { attempts } => {
                    eprintln!("server busy: gave up after {attempts} shed attempts");
                    CliError::TimedOut
                }
                remote::RemoteError::Server(msg) => CliError::Failed(msg),
            })?;
            println!("{}", reply.report);
            if reply.attempts > 1 {
                eprintln!("succeeded on attempt {}", reply.attempts);
            }
            if let Some(tier) = &reply.tier {
                eprintln!(
                    "served tier: {tier}{}",
                    if reply.degraded_serial {
                        " (serial retry after a worker panic)"
                    } else {
                        ""
                    }
                );
                if tier == "degraded" || tier == "original" {
                    return Ok(Some(DegradeReason::DeadlineExceeded));
                }
            }
            Ok(None)
        }
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            println!("\norderings: {:?}", ordering_names());
            println!("algorithms: {:?}", algorithm_names());
            Ok(None)
        }
        _ => Err(CliError::Usage(usage().to_string())),
    }
}

fn main() -> ExitCode {
    match real_main() {
        Ok(None) => ExitCode::SUCCESS,
        Ok(Some(reason)) => {
            eprintln!("warning: result is degraded ({reason}) — budget ran out partway");
            ExitCode::from(3)
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(e.exit_code())
        }
    }
}
