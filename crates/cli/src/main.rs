//! `gorder-cli` — thin argument dispatcher over the library (see
//! `lib.rs` for the testable logic and the usage synopsis).
//!
//! Exit codes: 0 success, 2 usage error, 3 succeeded but a budgeted
//! stage degraded (`--timeout`), 4 timed out empty-handed, 5 stage
//! failed, 6 graph file unreadable/unwritable. 1 is left to panics so it
//! never aliases a clean error.

use gorder_cli::{
    algorithm_names, compute_ordering_budgeted, load, ordering_names, run_algorithm_budgeted, save,
    simulate_algorithm_budgeted, stats_report, CliError, CmdOutput,
};
use gorder_core::budget::DegradeReason;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> &'static str {
    "usage:\n  \
     gorder-cli stats    <input>\n  \
     gorder-cli order    <input> <output> [--method Gorder] [--window 5] [--seed 42] [--timeout SECS]\n  \
     gorder-cli convert  <input> <output>\n  \
     gorder-cli run      <algo> <input> [--method NAME] [--window 5] [--seed 42] [--timeout SECS] [--threads N] [--stats]\n  \
     gorder-cli simulate <algo> <input> [--method NAME] [--window 5] [--seed 42] [--timeout SECS] [--stats]\n\n\
     formats by extension: .mtx (Matrix Market), .bin (compact CSR), else edge list\n\
     --timeout bounds the ordering phase: anytime orderings return their\n\
     best-so-far (exit 3, reason on stderr); others exit 4\n\
     --threads runs the engine kernels' parallel sections on N workers\n\
     (results are byte-identical to serial; simulate always traces serially)\n\
     --stats appends one JSON line of per-kernel metrics (iterations,\n\
     edges relaxed, frontier occupancy, phase timings, per-thread busy\n\
     times) to stdout"
}

struct Flags {
    method: Option<String>,
    window: u32,
    seed: u64,
    timeout: Option<Duration>,
    threads: u32,
    stats: bool,
}

fn parse_flags(args: &[String]) -> Result<Flags, CliError> {
    let mut flags = Flags {
        method: None,
        window: 5,
        seed: 42,
        timeout: None,
        threads: 1,
        stats: false,
    };
    let usage_err = |msg: &str| CliError::Usage(msg.to_string());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--method" => {
                flags.method = Some(
                    it.next()
                        .ok_or_else(|| usage_err("--method needs a value"))?
                        .clone(),
                );
            }
            "--window" => {
                flags.window = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage_err("--window needs a positive integer"))?;
            }
            "--seed" => {
                flags.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage_err("--seed needs an integer"))?;
            }
            "--timeout" => {
                let secs: f64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage_err("--timeout needs a number of seconds"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(usage_err("--timeout must be a non-negative number"));
                }
                flags.timeout = Some(Duration::from_secs_f64(secs));
            }
            "--threads" => {
                let threads: u32 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| usage_err("--threads needs a positive integer"))?;
                if threads == 0 {
                    return Err(usage_err("--threads must be at least 1"));
                }
                flags.threads = threads;
            }
            "--stats" => flags.stats = true,
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    Ok(flags)
}

fn real_main() -> Result<Option<DegradeReason>, CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    let need = |i: usize| -> Result<&String, CliError> {
        args.get(i).ok_or_else(|| CliError::Usage(usage().into()))
    };
    match cmd {
        "stats" => {
            let g = load(&PathBuf::from(need(1)?))?;
            println!("{}", stats_report(&g));
            Ok(None)
        }
        "order" => {
            let input = need(1)?.clone();
            let output = need(2)?.clone();
            let flags = parse_flags(&args[3..])?;
            let method = flags.method.as_deref().unwrap_or("Gorder");
            let g = load(&PathBuf::from(&input))?;
            eprintln!("loaded {}: n = {}, m = {}", input, g.n(), g.m());
            let t = std::time::Instant::now();
            let (perm, degraded) =
                compute_ordering_budgeted(&g, method, flags.window, flags.seed, flags.timeout)?;
            eprintln!("{method} computed in {:.2?}", t.elapsed());
            save(&g.relabel(&perm), &PathBuf::from(&output))?;
            println!("wrote {output}");
            Ok(degraded)
        }
        "convert" => {
            let input = need(1)?.clone();
            let output = need(2)?.clone();
            let g = load(&PathBuf::from(&input))?;
            save(&g, &PathBuf::from(&output))?;
            println!("wrote {output} ({} nodes, {} edges)", g.n(), g.m());
            Ok(None)
        }
        "run" | "simulate" => {
            let algo = need(1)?.clone();
            let input = need(2)?.clone();
            let flags = parse_flags(&args[3..])?;
            let g = load(&PathBuf::from(&input))?;
            let CmdOutput {
                report,
                degraded,
                stats_json,
            } = if cmd == "run" {
                run_algorithm_budgeted(
                    &g,
                    &algo,
                    flags.method.as_deref(),
                    flags.window,
                    flags.seed,
                    flags.timeout,
                    flags.threads,
                )?
            } else {
                simulate_algorithm_budgeted(
                    &g,
                    &algo,
                    flags.method.as_deref(),
                    flags.window,
                    flags.seed,
                    flags.timeout,
                )?
            };
            println!("{report}");
            if flags.stats {
                if let Some(line) = stats_json {
                    println!("{line}");
                }
            }
            Ok(degraded)
        }
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            println!("\norderings: {:?}", ordering_names());
            println!("algorithms: {:?}", algorithm_names());
            Ok(None)
        }
        _ => Err(CliError::Usage(usage().to_string())),
    }
}

fn main() -> ExitCode {
    match real_main() {
        Ok(None) => ExitCode::SUCCESS,
        Ok(Some(reason)) => {
            eprintln!("warning: result is degraded ({reason}) — budget ran out partway");
            ExitCode::from(3)
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(e.exit_code())
        }
    }
}
