//! `gorder-cli` — thin argument dispatcher over the library (see
//! `lib.rs` for the testable logic and the usage synopsis).

use gorder_cli::{
    algorithm_names, load, ordering_by_name, ordering_names, run_algorithm, save,
    simulate_algorithm, stats_report,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage:\n  \
     gorder-cli stats    <input>\n  \
     gorder-cli order    <input> <output> [--method Gorder] [--window 5] [--seed 42]\n  \
     gorder-cli convert  <input> <output>\n  \
     gorder-cli run      <algo> <input> [--method NAME] [--window 5] [--seed 42]\n  \
     gorder-cli simulate <algo> <input> [--method NAME] [--window 5] [--seed 42]\n\n\
     formats by extension: .mtx (Matrix Market), .bin (compact CSR), else edge list"
}

struct Flags {
    method: Option<String>,
    window: u32,
    seed: u64,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        method: None,
        window: 5,
        seed: 42,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--method" => {
                flags.method = Some(it.next().ok_or("--method needs a value")?.clone());
            }
            "--window" => {
                flags.window = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--window needs a positive integer")?;
            }
            "--seed" => {
                flags.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(flags)
}

fn real_main() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "stats" => {
            let input = args.get(1).ok_or_else(|| usage().to_string())?;
            let g = load(&PathBuf::from(input)).map_err(|e| e.to_string())?;
            println!("{}", stats_report(&g));
            Ok(())
        }
        "order" => {
            let input = args.get(1).ok_or_else(|| usage().to_string())?;
            let output = args.get(2).ok_or_else(|| usage().to_string())?;
            let flags = parse_flags(&args[3..])?;
            let method = flags.method.as_deref().unwrap_or("Gorder");
            let ordering = ordering_by_name(method, flags.window, flags.seed).ok_or_else(|| {
                format!("unknown ordering {method:?}; known: {:?}", ordering_names())
            })?;
            let g = load(&PathBuf::from(input)).map_err(|e| e.to_string())?;
            eprintln!("loaded {}: n = {}, m = {}", input, g.n(), g.m());
            let t = std::time::Instant::now();
            let perm = ordering.compute(&g);
            eprintln!("{} computed in {:.2?}", ordering.name(), t.elapsed());
            save(&g.relabel(&perm), &PathBuf::from(output)).map_err(|e| e.to_string())?;
            println!("wrote {output}");
            Ok(())
        }
        "convert" => {
            let input = args.get(1).ok_or_else(|| usage().to_string())?;
            let output = args.get(2).ok_or_else(|| usage().to_string())?;
            let g = load(&PathBuf::from(input)).map_err(|e| e.to_string())?;
            save(&g, &PathBuf::from(output)).map_err(|e| e.to_string())?;
            println!("wrote {output} ({} nodes, {} edges)", g.n(), g.m());
            Ok(())
        }
        "run" | "simulate" => {
            let algo = args.get(1).ok_or_else(|| usage().to_string())?;
            let input = args.get(2).ok_or_else(|| usage().to_string())?;
            let flags = parse_flags(&args[3..])?;
            let g = load(&PathBuf::from(input)).map_err(|e| e.to_string())?;
            let report = if cmd == "run" {
                run_algorithm(&g, algo, flags.method.as_deref(), flags.window, flags.seed)?
            } else {
                simulate_algorithm(&g, algo, flags.method.as_deref(), flags.window, flags.seed)?
            };
            println!("{report}");
            Ok(())
        }
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            println!("\norderings: {:?}", ordering_names());
            println!("algorithms: {:?}", algorithm_names());
            Ok(())
        }
        _ => Err(usage().to_string()),
    }
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
