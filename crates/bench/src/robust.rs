//! Fault-isolated sweep execution.
//!
//! [`run_grid`](crate::run_grid) dies with the first panicking ordering
//! or runaway cell; this module runs the same grid so that **no single
//! cell can take down the sweep**. Every ordering computation and every
//! algorithm cell runs through [`run_guarded`]: on its own thread, under
//! `catch_unwind`, watched by a deadline. Cooperative work (the anytime
//! orderings) receives a [`Budget`] and degrades on its own; a panicking
//! cell is recorded as failed; a cell that ignores its budget past the
//! grace period is abandoned as timed out. The sweep then continues, and
//! a skip report lists everything that did not complete.

use crate::experiment::{CellResult, GridConfig};
use crate::timing::median_secs;
use gorder_algos::{GraphAlgorithm, KernelStats, RunCtx};
use gorder_cachesim::trace::{replay_with_stats, TraceCtx};
use gorder_cachesim::{CacheHierarchy, HierarchyConfig, StallModel, Tracer};
use gorder_core::budget::{Budget, DegradeReason, ExecOutcome};
use gorder_graph::Graph;
use gorder_obs::OrderEvent;
use gorder_orders::{run_ordering, CacheKey, ExecPlan, OrderCache, OrderingAlgorithm, OrderingRun};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How one sweep cell ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellStatus {
    /// Ran to completion.
    Completed,
    /// Its ordering ran out of budget and fell back to a weaker, still
    /// valid layout; the cell's numbers describe that layout.
    Degraded(DegradeReason),
    /// Produced nothing before the watchdog gave up on it.
    TimedOut,
    /// Panicked or hit an internal error (message attached).
    Failed(String),
}

impl CellStatus {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CellStatus::Completed => "completed",
            CellStatus::Degraded(_) => "degraded",
            CellStatus::TimedOut => "timed-out",
            CellStatus::Failed(_) => "failed",
        }
    }

    /// Whether the cell produced usable numbers (completed or degraded).
    pub fn is_usable(&self) -> bool {
        matches!(self, CellStatus::Completed | CellStatus::Degraded(_))
    }
}

/// One cell of a guarded sweep: the usual [`CellResult`] numbers plus how
/// the cell ended. Timed-out and failed cells carry zeroed numbers.
#[derive(Debug, Clone)]
pub struct RobustCell {
    /// The timing/checksum payload (zeroed unless the status is usable).
    pub result: CellResult,
    /// How the cell ended.
    pub status: CellStatus,
}

/// Everything a guarded sweep produced.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// All cells, in grid order — including the unusable ones.
    pub cells: Vec<RobustCell>,
}

impl SweepReport {
    /// The usable cells (completed + degraded), as plain results.
    pub fn usable(&self) -> Vec<CellResult> {
        self.cells
            .iter()
            .filter(|c| c.status.is_usable())
            .map(|c| c.result.clone())
            .collect()
    }

    /// The cells that produced no numbers.
    pub fn skipped(&self) -> Vec<&RobustCell> {
        self.cells
            .iter()
            .filter(|c| !c.status.is_usable())
            .collect()
    }

    /// Prints one stderr line per non-completed cell (degradations and
    /// skips), then a one-line summary. Prints nothing when every cell
    /// completed.
    pub fn print_skip_report(&self) {
        let mut degraded = 0usize;
        let mut skipped = 0usize;
        for cell in &self.cells {
            let r = &cell.result;
            match &cell.status {
                CellStatus::Completed => {}
                CellStatus::Degraded(reason) => {
                    degraded += 1;
                    eprintln!(
                        "[sweep] degraded {}/{}/{}: {}",
                        r.dataset, r.ordering, r.algo, reason
                    );
                }
                CellStatus::TimedOut => {
                    skipped += 1;
                    eprintln!(
                        "[sweep] skipped {}/{}/{}: timed out",
                        r.dataset, r.ordering, r.algo
                    );
                }
                CellStatus::Failed(msg) => {
                    skipped += 1;
                    eprintln!(
                        "[sweep] skipped {}/{}/{}: failed: {}",
                        r.dataset, r.ordering, r.algo, msg
                    );
                }
            }
        }
        if degraded + skipped > 0 {
            eprintln!(
                "[sweep] {} of {} cells completed ({} degraded, {} skipped)",
                self.cells.len() - skipped,
                self.cells.len(),
                degraded,
                skipped
            );
        }
    }
}

/// Extra time the watchdog allows beyond the budget deadline: first for
/// the worker to finish normally or notice the deadline cooperatively,
/// then again after an explicit cancellation before the worker is
/// abandoned. Large enough that sub-millisecond cells never time out
/// spuriously on a loaded machine.
const WATCHDOG_GRACE: Duration = Duration::from_millis(250);

/// Threads the watchdog walked away from. Abandoning a handle used to
/// mean `drop(worker)` — the thread could never be joined again, so a
/// sweep full of timeouts accumulated runaway threads (and their
/// captured graphs) until exit. Handles now land here instead, and
/// [`reap_abandoned`] joins the ones that have since noticed their
/// cancelled budget and returned.
static ABANDONED: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());

/// Joins every abandoned worker that has finished since the last call,
/// releasing its stack and captured state; still-running workers stay in
/// the registry. Returns how many were reaped. Called opportunistically
/// at every [`run_guarded`] entry, so a long sweep cleans up after its
/// own timeouts instead of hoarding dead threads.
pub fn reap_abandoned() -> usize {
    let finished: Vec<JoinHandle<()>> = {
        let mut held = ABANDONED.lock().unwrap();
        let (done, still) = std::mem::take(&mut *held)
            .into_iter()
            .partition(|h| h.is_finished());
        *held = still;
        done
    };
    // join outside the lock: a finished thread joins instantly, but
    // there is no reason to hold the registry closed while it does
    let n = finished.len();
    for h in finished {
        let _ = h.join();
    }
    n
}

/// Abandoned workers still running (timed-out cells that have not yet
/// honoured their cancelled budget).
pub fn abandoned_count() -> usize {
    ABANDONED.lock().unwrap().len()
}

/// Runs `f` isolated on its own thread under `catch_unwind` and a
/// watchdog deadline. `f` receives a [`Budget`] carrying the deadline so
/// cooperative work can degrade instead of being abandoned. A panic maps
/// to [`ExecOutcome::Failed`]; a worker that is still running one grace
/// period after the deadline is cancelled, and abandoned one grace
/// period later with [`ExecOutcome::TimedOut`]. Abandoned workers are
/// not leaked: their handles land in the abandoned-handle registry and are
/// joined by [`reap_abandoned`] (called here on every entry) once they
/// notice their cancelled budget and return.
///
/// With `timeout = None` the closure simply runs on the current thread
/// under `catch_unwind` with an unlimited budget.
pub fn run_guarded<T, F>(timeout: Option<Duration>, f: F) -> ExecOutcome<T>
where
    T: Send + 'static,
    F: FnOnce(&Budget) -> ExecOutcome<T> + Send + 'static,
{
    reap_abandoned();
    let Some(timeout) = timeout else {
        let budget = Budget::unlimited();
        return match catch_unwind(AssertUnwindSafe(|| f(&budget))) {
            Ok(outcome) => outcome,
            Err(payload) => ExecOutcome::Failed(panic_message(payload.as_ref())),
        };
    };
    let budget = Budget::unlimited().with_timeout(timeout);
    let worker_budget = budget.clone();
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        let outcome = match catch_unwind(AssertUnwindSafe(|| f(&worker_budget))) {
            Ok(outcome) => outcome,
            Err(payload) => ExecOutcome::Failed(panic_message(payload.as_ref())),
        };
        // the watchdog may already have walked away; that's fine
        let _ = tx.send(outcome);
    });
    match rx.recv_timeout(timeout + WATCHDOG_GRACE) {
        Ok(outcome) => {
            let _ = worker.join();
            outcome
        }
        Err(_) => {
            budget.cancel();
            match rx.recv_timeout(WATCHDOG_GRACE) {
                Ok(outcome) => {
                    let _ = worker.join();
                    outcome
                }
                Err(_) => {
                    // the budget is cancelled; park the handle so a
                    // later reap joins the thread when it gives up
                    ABANDONED.lock().unwrap().push(worker);
                    ExecOutcome::TimedOut
                }
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_string()
    }
}

/// Computes `o` through the unified runner ([`run_ordering`]) under
/// [`run_guarded`]: per-ordering stats are exported to the registry
/// exactly once, the watchdog budget is threaded through, and a panic or
/// hang is contained. The shared helper behind the guarded grid and the
/// `table2`/`ablation` binaries.
pub fn guarded_ordering_run(
    o: &Arc<dyn OrderingAlgorithm>,
    g: &Arc<Graph>,
    plan: ExecPlan,
    timeout: Option<Duration>,
) -> ExecOutcome<OrderingRun> {
    let o = Arc::clone(o);
    let g = Arc::clone(g);
    run_guarded(timeout, move |budget| {
        run_ordering(o.as_ref(), &g, plan, budget)
    })
}

/// [`guarded_ordering_run`] under a serial plan, reduced to the
/// permutation — for callers that do not need the stats.
pub fn guarded_ordering(
    o: &Arc<dyn OrderingAlgorithm>,
    g: &Arc<Graph>,
    timeout: Option<Duration>,
) -> ExecOutcome<gorder_graph::Permutation> {
    guarded_ordering_run(o, g, ExecPlan::Serial, timeout).map(|run| run.perm)
}

/// Side channels for ordering resolution in a guarded sweep: an optional
/// permutation cache and an observer that receives one [`OrderEvent`]
/// per resolution (cache hit or fresh computation), ready to stream to a
/// trace sink.
pub struct OrderHooks<'a> {
    /// Permutation cache to consult and populate. Only **completed**
    /// permutations are stored — degraded ones depend on the budget that
    /// cut them short, not just on the cache key, and would poison warm
    /// runs.
    pub cache: Option<&'a OrderCache>,
    /// The seed the sweep hands its orderings (part of the cache key).
    pub seed: u64,
    /// Fires once per resolution with the full order record.
    pub on_order: &'a mut dyn FnMut(&OrderEvent),
}

/// Resolves one ordering for `g`: consults the cache (when hooked),
/// computes under guard on a miss, stores completed permutations back,
/// and reports an [`OrderEvent`] either way. Without hooks this is
/// [`guarded_ordering_run`] reduced to its permutation — no digest is
/// computed and no event is emitted.
pub fn resolve_ordering(
    o: &Arc<dyn OrderingAlgorithm>,
    g: &Arc<Graph>,
    dataset: Option<&str>,
    plan: ExecPlan,
    timeout: Option<Duration>,
    hooks: Option<&mut OrderHooks<'_>>,
) -> ExecOutcome<gorder_graph::Permutation> {
    let Some(hooks) = hooks else {
        return guarded_ordering_run(o, g, plan, timeout).map(|run| run.perm);
    };
    let key = CacheKey::for_ordering(g, o.as_ref(), hooks.seed);
    let event =
        |status: String, seconds: f64, stats: gorder_orders::OrderStats, hit: bool| OrderEvent {
            dataset: dataset.map(str::to_string),
            name: o.name().to_string(),
            params: o.params(),
            seed: hooks.seed,
            graph_digest: key.graph_digest,
            identity: key.identity(),
            status,
            seconds,
            nodes_placed: stats.nodes_placed,
            heap_increments: stats.heap_increments,
            heap_decrements: stats.heap_decrements,
            heap_pops: stats.heap_pops,
            threads_used: u64::from(stats.threads_used),
            cache_hit: hit,
        };
    if let Some(cache) = hooks.cache {
        let started = std::time::Instant::now();
        if let Some(perm) = cache.load(&key, g.n()) {
            let stats = gorder_orders::OrderStats {
                nodes_placed: u64::from(perm.len()),
                threads_used: 1,
                cache_hit: true,
                ..Default::default()
            };
            (hooks.on_order)(&event(
                "completed".to_string(),
                started.elapsed().as_secs_f64(),
                stats,
                true,
            ));
            return ExecOutcome::Completed(perm);
        }
    }
    let outcome = guarded_ordering_run(o, g, plan, timeout);
    let status = outcome.status_label().to_string();
    let stats = outcome.value_ref().map(|run| run.stats).unwrap_or_default();
    if let (Some(cache), ExecOutcome::Completed(run)) = (hooks.cache, &outcome) {
        if let Err(e) = cache.store(&key, &run.perm) {
            eprintln!(
                "[order-cache] warning: could not store {}: {e}",
                key.identity()
            );
        }
    }
    (hooks.on_order)(&event(status, stats.compute_secs, stats, false));
    outcome.map(|run| run.perm)
}

/// Guarded counterpart of [`run_grid`](crate::run_grid) /
/// [`run_grid_sim`](crate::experiment::run_grid_sim), using the pool of
/// orderings implied by `cfg`.
pub fn run_grid_robust(cfg: &GridConfig, timeout: Option<Duration>, sim: bool) -> SweepReport {
    run_grid_robust_observed(cfg, timeout, sim, &mut |_| {})
}

/// [`run_grid_robust`] with a cell observer: `on_cell` fires for **every**
/// cell the moment its fate is decided — completed, degraded, timed out,
/// or failed — before the sweep moves on. This is how the experiment
/// binaries stream trace events to disk as the grid runs, so an
/// interrupted sweep leaves a reconstructable record of everything that
/// finished.
pub fn run_grid_robust_observed(
    cfg: &GridConfig,
    timeout: Option<Duration>,
    sim: bool,
    on_cell: &mut dyn FnMut(&RobustCell),
) -> SweepReport {
    run_grid_robust_with_observed(cfg, timeout, sim, pool_for(cfg), on_cell)
}

/// The fully-hooked guarded grid: trace recovery plus ordering hooks
/// (permutation cache and order-event observer). Every other
/// `run_grid_robust*` entry point forwards here — directly or through
/// the private `grid_with_recovery` body — with the extras it lacks
/// set to `None`.
pub fn run_grid_robust_full(
    cfg: &GridConfig,
    timeout: Option<Duration>,
    sim: bool,
    recovered: Option<RecoveredLookup<'_>>,
    hooks: Option<&mut OrderHooks<'_>>,
    on_cell: &mut dyn FnMut(&RobustCell),
) -> SweepReport {
    grid_with_recovery(cfg, timeout, sim, pool_for(cfg), recovered, hooks, on_cell)
}

/// The ordering pool `cfg` implies: the standard or extended set,
/// narrowed by `cfg.orderings` when present.
fn pool_for(cfg: &GridConfig) -> Vec<Arc<dyn OrderingAlgorithm>> {
    let pool = if cfg.extended {
        gorder_orders::extensions::extended(cfg.seed)
    } else {
        gorder_orders::all(cfg.seed)
    };
    pool.into_iter()
        .filter(|o| match &cfg.orderings {
            None => true,
            Some(keep) => keep.iter().any(|k| k == o.name()),
        })
        .map(Arc::from)
        .collect()
}

/// [`run_grid_robust_observed`] resuming a crashed sweep: `recovered` is
/// consulted with `(dataset, ordering, algo)` before any work is done
/// for a cell, and a `Some(CellResult)` is emitted as a completed cell
/// without recomputing anything. When **every** algorithm cell of a
/// (dataset, ordering) pair is recovered, the ordering itself is not
/// recomputed either — and a dataset whose every cell is recovered is
/// never even built. A pair with any missing cell re-runs whole: the
/// ordering must be recomputed anyway, so partial recovery would mix a
/// fresh permutation with stale timings.
pub fn run_grid_robust_resumed(
    cfg: &GridConfig,
    timeout: Option<Duration>,
    sim: bool,
    recovered: RecoveredLookup<'_>,
    on_cell: &mut dyn FnMut(&RobustCell),
) -> SweepReport {
    grid_with_recovery(
        cfg,
        timeout,
        sim,
        pool_for(cfg),
        Some(recovered),
        None,
        on_cell,
    )
}

/// Guarded sweep over an explicit ordering pool — the entry point the
/// fault-injection tests use to plant panicking or never-terminating
/// orderings among the real ones. `cfg.orderings` is ignored (the pool
/// *is* the selection); `cfg.algos` still filters the algorithms.
pub fn run_grid_robust_with(
    cfg: &GridConfig,
    timeout: Option<Duration>,
    sim: bool,
    orderings: Vec<Arc<dyn OrderingAlgorithm>>,
) -> SweepReport {
    run_grid_robust_with_observed(cfg, timeout, sim, orderings, &mut |_| {})
}

/// Appends `cell` to the report, notifying the observer first — every
/// cell the sweep records flows through here exactly once.
fn emit(report: &mut SweepReport, on_cell: &mut dyn FnMut(&RobustCell), cell: RobustCell) {
    on_cell(&cell);
    report.cells.push(cell);
}

/// [`run_grid_robust_with`] plus the [`run_grid_robust_observed`] cell
/// observer.
pub fn run_grid_robust_with_observed(
    cfg: &GridConfig,
    timeout: Option<Duration>,
    sim: bool,
    orderings: Vec<Arc<dyn OrderingAlgorithm>>,
    on_cell: &mut dyn FnMut(&RobustCell),
) -> SweepReport {
    grid_with_recovery(cfg, timeout, sim, orderings, None, None, on_cell)
}

/// A resume lookup: maps `(dataset, ordering, algo)` to the recovered
/// cell from a prior run's trace, or `None` when the cell must re-run.
pub type RecoveredLookup<'a> = &'a dyn Fn(&str, &str, &str) -> Option<CellResult>;

/// The guarded grid with an optional trace-recovery hook — the single
/// body behind every `run_grid_robust*` entry point.
fn grid_with_recovery(
    cfg: &GridConfig,
    timeout: Option<Duration>,
    sim: bool,
    orderings: Vec<Arc<dyn OrderingAlgorithm>>,
    recovered: Option<RecoveredLookup<'_>>,
    mut hooks: Option<&mut OrderHooks<'_>>,
    on_cell: &mut dyn FnMut(&RobustCell),
) -> SweepReport {
    let algos: Vec<Arc<dyn GraphAlgorithm>> = if cfg.extended {
        gorder_algos::extended()
    } else {
        gorder_algos::all()
    }
    .into_iter()
    .filter(|a| match &cfg.algos {
        None => true,
        Some(keep) => keep.iter().any(|k| k == a.name()),
    })
    .map(Arc::from)
    .collect();
    let base_ctx = cfg.run_ctx();
    let mut report = SweepReport::default();
    for d in &cfg.datasets {
        // built lazily: a fully recovered dataset is never constructed
        let mut built: Option<(Arc<Graph>, u32)> = None;
        for o in &orderings {
            let rec_cells: Option<Vec<CellResult>> = recovered.and_then(|rec| {
                algos
                    .iter()
                    .map(|a| rec(d.name, o.name(), a.name()))
                    .collect()
            });
            if let Some(cells) = rec_cells {
                for result in cells {
                    emit(
                        &mut report,
                        on_cell,
                        RobustCell {
                            result,
                            status: CellStatus::Completed,
                        },
                    );
                }
                eprintln!(
                    "[grid/robust]   {}/{} recovered from trace ({} cells)",
                    d.name,
                    o.name(),
                    algos.len()
                );
                continue;
            }
            if built.is_none() {
                let g = Arc::new(d.build(cfg.scale));
                eprintln!("[grid/robust] {}: n = {}, m = {}", d.name, g.n(), g.m());
                let source = g.max_degree_node().unwrap_or(0);
                built = Some((g, source));
            }
            let (g, logical_source) = built.as_ref().expect("built above");
            let (g, logical_source) = (Arc::clone(g), *logical_source);
            let blank = |algo: &str| CellResult {
                dataset: d.name.to_string(),
                algo: algo.to_string(),
                ordering: o.name().to_string(),
                seconds: 0.0,
                checksum: 0,
                stats: KernelStats::default(),
            };
            let (perm, ordering_status) = match resolve_ordering(
                o,
                &g,
                Some(d.name),
                cfg.exec_plan(),
                timeout,
                hooks.as_deref_mut(),
            ) {
                ExecOutcome::Completed(p) => (p, CellStatus::Completed),
                ExecOutcome::Degraded(p, reason) => (p, CellStatus::Degraded(reason)),
                ExecOutcome::TimedOut => {
                    for a in &algos {
                        emit(
                            &mut report,
                            on_cell,
                            RobustCell {
                                result: blank(a.name()),
                                status: CellStatus::TimedOut,
                            },
                        );
                    }
                    eprintln!("[grid/robust]   {} timed out", o.name());
                    continue;
                }
                ExecOutcome::Failed(msg) => {
                    for a in &algos {
                        emit(
                            &mut report,
                            on_cell,
                            RobustCell {
                                result: blank(a.name()),
                                status: CellStatus::Failed(msg.clone()),
                            },
                        );
                    }
                    eprintln!("[grid/robust]   {} failed: {msg}", o.name());
                    continue;
                }
            };
            if perm.len() != g.n() {
                let msg = format!(
                    "returned a permutation over {} nodes for a {}-node graph",
                    perm.len(),
                    g.n()
                );
                for a in &algos {
                    emit(
                        &mut report,
                        on_cell,
                        RobustCell {
                            result: blank(a.name()),
                            status: CellStatus::Failed(msg.clone()),
                        },
                    );
                }
                eprintln!("[grid/robust]   {} {msg}", o.name());
                continue;
            }
            let rg = Arc::new(g.relabel(&perm));
            let mapped_source = perm.apply(logical_source);
            for a in &algos {
                let cell = run_algo_cell(cfg, &base_ctx, a, &rg, mapped_source, timeout, sim);
                let status = match cell {
                    ExecOutcome::Completed((seconds, checksum, stats)) => {
                        let mut result = blank(a.name());
                        result.seconds = seconds;
                        result.checksum = checksum;
                        result.stats = stats;
                        emit(
                            &mut report,
                            on_cell,
                            RobustCell {
                                result,
                                status: ordering_status.clone(),
                            },
                        );
                        continue;
                    }
                    ExecOutcome::Degraded(_, reason) => CellStatus::Degraded(reason),
                    ExecOutcome::TimedOut => CellStatus::TimedOut,
                    ExecOutcome::Failed(msg) => CellStatus::Failed(msg),
                };
                emit(
                    &mut report,
                    on_cell,
                    RobustCell {
                        result: blank(a.name()),
                        status,
                    },
                );
            }
            eprintln!(
                "[grid/robust]   {} done ({})",
                o.name(),
                ordering_status.label()
            );
        }
    }
    report
}

/// One guarded algorithm cell: wall-clock timing or a cache-simulator
/// replay, on a watchdog thread.
fn run_algo_cell(
    cfg: &GridConfig,
    base_ctx: &RunCtx,
    a: &Arc<dyn GraphAlgorithm>,
    rg: &Arc<Graph>,
    mapped_source: u32,
    timeout: Option<Duration>,
    sim: bool,
) -> ExecOutcome<(f64, u64, KernelStats)> {
    let a = Arc::clone(a);
    let rg = Arc::clone(rg);
    if sim {
        let tctx = TraceCtx {
            source: Some(mapped_source),
            pr_iterations: (base_ctx.pr_iterations / 5).max(2),
            damping: base_ctx.damping,
            diameter_samples: (base_ctx.diameter_samples / 4).max(2),
            seed: base_ctx.seed,
        };
        run_guarded(timeout, move |_budget| {
            // fault point: holds a crashing-sweep test mid-grid; the
            // sleep never touches the modelled (simulated) seconds
            gorder_obs::faults::slow_cell("bench.cell");
            let mut tracer = Tracer::new(CacheHierarchy::new(&HierarchyConfig::scaled_down()));
            match replay_with_stats(a.name(), &rg, &mut tracer, &tctx) {
                Some((checksum, stats)) => {
                    let cycles = tracer.breakdown(&StallModel::skylake()).total();
                    ExecOutcome::Completed((cycles / 4e9, checksum, stats))
                }
                None => ExecOutcome::Failed(format!("no cache-sim replayer for {}", a.name())),
            }
        })
    } else {
        let ctx = RunCtx {
            source: Some(mapped_source),
            ..base_ctx.clone()
        };
        let reps = cfg.reps;
        let plan = cfg.exec_plan();
        run_guarded(timeout, move |_budget| {
            gorder_obs::faults::slow_cell("bench.cell");
            let mut stats = KernelStats::default();
            let (secs, checksum) = median_secs(
                || {
                    let (checksum, s) = a.run_stats_plan(&rg, &ctx, plan);
                    stats = s;
                    checksum
                },
                reps,
            );
            ExecOutcome::Completed((secs, checksum, stats))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::datasets::epinion_like;
    use gorder_graph::Permutation;

    struct Panicker;
    impl OrderingAlgorithm for Panicker {
        fn name(&self) -> &'static str {
            "Panicker"
        }
        fn compute(&self, _g: &Graph) -> Permutation {
            panic!("injected ordering fault")
        }
    }

    struct Hang;
    impl OrderingAlgorithm for Hang {
        fn name(&self) -> &'static str {
            "Hang"
        }
        fn compute(&self, g: &Graph) -> Permutation {
            // non-cooperative: ignores every budget signal
            std::thread::sleep(Duration::from_secs(600));
            Permutation::identity(g.n())
        }
        fn compute_budgeted(&self, g: &Graph, _budget: &Budget) -> ExecOutcome<Permutation> {
            ExecOutcome::Completed(self.compute(g))
        }
    }

    fn tiny_cfg() -> GridConfig {
        GridConfig {
            scale: 0.02,
            reps: 1,
            seed: 1,
            quick: true,
            datasets: vec![epinion_like()],
            orderings: None,
            algos: Some(vec!["NQ".into(), "BFS".into()]),
            extended: false,
            threads: 1,
        }
    }

    #[test]
    fn robust_parallel_grid_matches_serial() {
        let mut cfg = tiny_cfg();
        cfg.orderings = Some(vec!["Original".into(), "ChDFS".into()]);
        let serial = run_grid_robust(&cfg, Some(Duration::from_secs(60)), false);
        cfg.threads = 3;
        let parallel = run_grid_robust(&cfg, Some(Duration::from_secs(60)), false);
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (s, p) in serial.usable().iter().zip(&parallel.usable()) {
            assert_eq!(s.checksum, p.checksum, "{}/{}", s.ordering, s.algo);
            assert_eq!(s.stats.iterations, p.stats.iterations);
            assert_eq!(s.stats.edges_relaxed, p.stats.edges_relaxed);
            assert_eq!(p.stats.threads_used, 3);
        }
    }

    #[test]
    fn guarded_closure_completes() {
        let out = run_guarded(Some(Duration::from_secs(5)), |_b| {
            ExecOutcome::Completed(41 + 1)
        });
        assert_eq!(out, ExecOutcome::Completed(42));
    }

    #[test]
    fn guarded_panic_is_failed_not_fatal() {
        let out: ExecOutcome<u32> = run_guarded(Some(Duration::from_secs(5)), |_b| panic!("boom"));
        match out {
            ExecOutcome::Failed(msg) => assert!(msg.contains("boom"), "{msg}"),
            other => panic!("expected Failed, got {}", other.status_label()),
        }
    }

    #[test]
    fn guarded_panic_without_watchdog() {
        let out: ExecOutcome<u32> = run_guarded(None, |_b| panic!("inline boom"));
        match out {
            ExecOutcome::Failed(msg) => assert!(msg.contains("inline boom"), "{msg}"),
            other => panic!("expected Failed, got {}", other.status_label()),
        }
    }

    #[test]
    fn guarded_hang_times_out() {
        let out: ExecOutcome<u32> = run_guarded(Some(Duration::from_millis(10)), |_b| {
            std::thread::sleep(Duration::from_secs(600));
            ExecOutcome::Completed(0)
        });
        assert_eq!(out, ExecOutcome::TimedOut);
    }

    #[test]
    fn guarded_cooperative_degrade_survives_deadline() {
        // A worker that honours cancellation returns Degraded, not
        // TimedOut: it notices the cancel flag during the grace period.
        let out = run_guarded(Some(Duration::from_millis(10)), |budget| loop {
            if let Some(reason) = budget.exhausted(0) {
                return ExecOutcome::Degraded(7u32, reason);
            }
            std::thread::sleep(Duration::from_millis(1));
        });
        match out {
            ExecOutcome::Degraded(7, _) => {}
            other => panic!("expected Degraded(7), got {}", other.status_label()),
        }
    }

    #[test]
    fn sweep_survives_panicking_and_hanging_orderings() {
        let cfg = tiny_cfg();
        let pool: Vec<Arc<dyn OrderingAlgorithm>> = vec![
            Arc::new(gorder_orders::Original),
            Arc::new(Panicker),
            Arc::new(Hang),
            Arc::new(gorder_orders::ChDfs),
        ];
        let report = run_grid_robust_with(&cfg, Some(Duration::from_millis(50)), false, pool);
        // 4 orderings × 2 algos, every cell present
        assert_eq!(report.cells.len(), 8);
        let by = |ordering: &str| -> Vec<&RobustCell> {
            report
                .cells
                .iter()
                .filter(|c| c.result.ordering == ordering)
                .collect()
        };
        for c in by("Original").iter().chain(by("ChDFS").iter()) {
            assert_eq!(c.status, CellStatus::Completed, "{:?}", c.result);
        }
        for c in by("Panicker") {
            match &c.status {
                CellStatus::Failed(msg) => {
                    assert!(msg.contains("injected ordering fault"), "{msg}")
                }
                other => panic!("Panicker cell should fail, got {}", other.label()),
            }
        }
        for c in by("Hang") {
            assert_eq!(c.status, CellStatus::TimedOut, "{:?}", c.result);
        }
        // the skip report names exactly the unusable cells
        assert_eq!(report.skipped().len(), 4);
        assert_eq!(report.usable().len(), 4);
        report.print_skip_report();
    }

    #[test]
    fn observer_sees_every_cell_in_report_order() {
        let cfg = tiny_cfg();
        let pool: Vec<Arc<dyn OrderingAlgorithm>> =
            vec![Arc::new(gorder_orders::Original), Arc::new(Panicker)];
        let mut seen: Vec<(String, String, &'static str)> = Vec::new();
        let report = run_grid_robust_with_observed(
            &cfg,
            Some(Duration::from_secs(60)),
            false,
            pool,
            &mut |c| {
                seen.push((
                    c.result.ordering.clone(),
                    c.result.algo.clone(),
                    c.status.label(),
                ));
            },
        );
        // failed cells stream through the observer just like completed ones
        assert_eq!(seen.len(), report.cells.len());
        assert_eq!(report.skipped().len(), 2);
        for (s, c) in seen.iter().zip(&report.cells) {
            assert_eq!(s.0, c.result.ordering);
            assert_eq!(s.1, c.result.algo);
            assert_eq!(s.2, c.status.label());
        }
    }

    #[test]
    fn robust_grid_matches_plain_grid_when_nothing_fails() {
        let mut cfg = tiny_cfg();
        cfg.orderings = Some(vec!["Original".into(), "ChDFS".into()]);
        let plain = crate::run_grid(&cfg);
        let robust = run_grid_robust(&cfg, Some(Duration::from_secs(60)), false);
        assert_eq!(robust.cells.len(), plain.len());
        for (r, p) in robust.usable().iter().zip(&plain) {
            assert_eq!(r.dataset, p.dataset);
            assert_eq!(r.algo, p.algo);
            assert_eq!(r.ordering, p.ordering);
            assert_eq!(r.checksum, p.checksum, "{}/{}", p.ordering, p.algo);
        }
    }

    #[test]
    fn resumed_grid_recovers_cells_verbatim_and_recomputes_the_rest() {
        let mut cfg = tiny_cfg();
        cfg.orderings = Some(vec!["Original".into(), "ChDFS".into()]);
        // sim mode: modelled seconds are deterministic, so recomputed
        // cells must match the fresh sweep exactly
        let fresh = run_grid_robust(&cfg, Some(Duration::from_secs(60)), true);
        // pretend Original's cells survived a crash; ChDFS's did not
        let rec = |dataset: &str, ordering: &str, algo: &str| -> Option<CellResult> {
            fresh
                .cells
                .iter()
                .find(|c| {
                    ordering == "Original"
                        && c.result.dataset == dataset
                        && c.result.ordering == ordering
                        && c.result.algo == algo
                })
                .map(|c| c.result.clone())
        };
        let mut observed = 0usize;
        let resumed =
            run_grid_robust_resumed(&cfg, Some(Duration::from_secs(60)), true, &rec, &mut |_| {
                observed += 1
            });
        assert_eq!(resumed.cells.len(), fresh.cells.len());
        assert_eq!(observed, fresh.cells.len(), "recovered cells still stream");
        for (f, r) in fresh.cells.iter().zip(&resumed.cells) {
            assert_eq!(f.result.ordering, r.result.ordering);
            assert_eq!(f.result.algo, r.result.algo);
            assert_eq!(f.result.checksum, r.result.checksum);
            assert_eq!(f.result.seconds, r.result.seconds, "{:?}", r.result);
            assert_eq!(r.status, CellStatus::Completed);
        }
    }

    #[test]
    fn partially_recovered_pair_is_rerun_whole() {
        let mut cfg = tiny_cfg(); // algos: NQ + BFS
        cfg.orderings = Some(vec!["Original".into()]);
        // only NQ recovered: the ordering must be recomputed for BFS
        // anyway, so the sentinel recovery must be discarded
        let rec = |dataset: &str, ordering: &str, algo: &str| -> Option<CellResult> {
            (algo == "NQ").then(|| CellResult {
                dataset: dataset.to_string(),
                algo: algo.to_string(),
                ordering: ordering.to_string(),
                seconds: 999.0,
                checksum: 7,
                stats: KernelStats::default(),
            })
        };
        let resumed =
            run_grid_robust_resumed(&cfg, Some(Duration::from_secs(60)), true, &rec, &mut |_| {});
        assert_eq!(resumed.cells.len(), 2);
        for c in &resumed.cells {
            assert_ne!(c.result.seconds, 999.0, "{:?}", c.result);
            assert_eq!(c.status, CellStatus::Completed);
        }
    }

    #[test]
    fn robust_sim_grid_produces_modelled_times() {
        let mut cfg = tiny_cfg();
        cfg.orderings = Some(vec!["Original".into()]);
        let report = run_grid_robust(&cfg, Some(Duration::from_secs(60)), true);
        assert_eq!(report.cells.len(), 2);
        for c in &report.cells {
            assert_eq!(c.status, CellStatus::Completed);
            assert!(c.result.seconds > 0.0, "{:?}", c.result);
        }
    }
}
