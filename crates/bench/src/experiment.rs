//! The full-factorial experiment runner behind Figures 5/6/S1.
//!
//! For every dataset: build the graph, compute each ordering, relabel,
//! map the logical source node through the permutation (so every ordering
//! solves the *same* problem instance), and time every algorithm. The
//! result is a flat list of cells, one per (dataset, ordering, algorithm).

use crate::timing::median_secs;
use gorder_algos::{ExecPlan, GraphAlgorithm, KernelStats, RunCtx};
use gorder_cachesim::trace::{replay_with_stats, TraceCtx};
use gorder_cachesim::{CacheHierarchy, HierarchyConfig, StallModel, Tracer};
use gorder_core::budget::Budget;
use gorder_graph::datasets::Dataset;
use gorder_graph::Permutation;
use gorder_orders::{run_ordering, OrderingAlgorithm};

/// Configuration for [`run_grid`].
pub struct GridConfig {
    /// Dataset size multiplier.
    pub scale: f64,
    /// Timing repetitions per cell.
    pub reps: u32,
    /// Seed for randomised orderings and Diam sampling.
    pub seed: u64,
    /// Light algorithm parameters (fewer PR iterations / Diam sources).
    pub quick: bool,
    /// Datasets to run (paper order).
    pub datasets: Vec<Dataset>,
    /// Ordering-name filter (`None` = all ten).
    pub orderings: Option<Vec<String>>,
    /// Algorithm-name filter (`None` = all nine).
    pub algos: Option<Vec<String>>,
    /// Include the extension orderings (HubSort/HubCluster/DBG/Bisect)
    /// and extension algorithms (WCC/Tri/LP/BC) alongside the paper's.
    pub extended: bool,
    /// Worker threads granted to the engine kernels (1 = serial). Only
    /// affects wall-clock runs; the simulated grid always traces
    /// serially.
    pub threads: u32,
}

impl GridConfig {
    /// Full grid at the given scale.
    pub fn new(scale: f64, reps: u32, seed: u64, quick: bool) -> Self {
        GridConfig {
            scale,
            reps,
            seed,
            quick,
            datasets: gorder_graph::datasets::all(),
            orderings: None,
            algos: None,
            extended: false,
            threads: 1,
        }
    }

    /// The execution plan implied by this configuration.
    pub fn exec_plan(&self) -> ExecPlan {
        ExecPlan::with_threads(self.threads)
    }

    fn ordering_pool(&self) -> Vec<Box<dyn OrderingAlgorithm>> {
        if self.extended {
            gorder_orders::extensions::extended(self.seed)
        } else {
            gorder_orders::all(self.seed)
        }
    }

    /// The algorithm parameters implied by this configuration.
    pub fn run_ctx(&self) -> RunCtx {
        RunCtx {
            source: None,
            pr_iterations: if self.quick { 10 } else { 100 },
            damping: 0.85,
            diameter_samples: if self.quick { 4 } else { 16 },
            seed: self.seed,
        }
    }
}

/// One timed cell of the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Dataset name.
    pub dataset: String,
    /// Algorithm label.
    pub algo: String,
    /// Ordering label.
    pub ordering: String,
    /// Median wall-clock seconds.
    pub seconds: f64,
    /// Checksum of the last run (work-elision guard; relabeling-invariant
    /// where the algorithm's output is).
    pub checksum: u64,
    /// Engine execution metrics of the last run (zeroed for algorithms
    /// without engine instrumentation).
    pub stats: KernelStats,
}

/// Computes one ordering through the unified runner ([`run_ordering`]) —
/// so even the unguarded grids export per-ordering stats exactly once —
/// under an unlimited budget (the guarded grids pass real budgets).
fn ordered(o: &dyn OrderingAlgorithm, g: &gorder_graph::Graph) -> Permutation {
    run_ordering(o, g, gorder_orders::ExecPlan::Serial, &Budget::unlimited())
        .value()
        .expect("unlimited budget always completes")
        .perm
}

fn selected<T, F: Fn(&T) -> &str>(all: Vec<T>, filter: &Option<Vec<String>>, name: F) -> Vec<T> {
    match filter {
        None => all,
        Some(keep) => all
            .into_iter()
            .filter(|x| keep.iter().any(|k| k == name(x)))
            .collect(),
    }
}

/// Runs the grid, reporting progress on stderr.
pub fn run_grid(cfg: &GridConfig) -> Vec<CellResult> {
    let orderings: Vec<Box<dyn OrderingAlgorithm>> =
        selected(cfg.ordering_pool(), &cfg.orderings, |o| o.name());
    let algo_pool = if cfg.extended {
        gorder_algos::extended()
    } else {
        gorder_algos::all()
    };
    let algos: Vec<Box<dyn GraphAlgorithm>> = selected(algo_pool, &cfg.algos, |a| a.name());
    let base_ctx = cfg.run_ctx();
    let mut cells = Vec::new();
    for d in &cfg.datasets {
        let g = d.build(cfg.scale);
        eprintln!("[grid] {}: n = {}, m = {}", d.name, g.n(), g.m());
        let logical_source = g.max_degree_node().unwrap_or(0);
        for o in &orderings {
            let perm = ordered(o.as_ref(), &g);
            let rg = g.relabel(&perm);
            let ctx = RunCtx {
                source: Some(perm.apply(logical_source)),
                ..base_ctx.clone()
            };
            for a in &algos {
                let plan = cfg.exec_plan();
                let mut stats = KernelStats::default();
                let (secs, checksum) = median_secs(
                    || {
                        let (checksum, s) = a.run_stats_plan(&rg, &ctx, plan);
                        stats = s;
                        checksum
                    },
                    cfg.reps,
                );
                cells.push(CellResult {
                    dataset: d.name.to_string(),
                    algo: a.name().to_string(),
                    ordering: o.name().to_string(),
                    seconds: secs,
                    checksum,
                    stats,
                });
            }
            eprintln!("[grid]   {} done", o.name());
        }
    }
    cells
}

/// Runs the grid through the cache simulator instead of the wall clock:
/// each cell's `seconds` is modelled cycles (stall model, 4 GHz) for one
/// replayed run.
///
/// This is the harness's *default* Figure 5 mode: the paper's wall-clock
/// differences come from cache behaviour on machines whose LLC is tiny
/// relative to the graphs, and commodity/cloud hosts (this reproduction's
/// dev box has a 260 MiB L3) swallow laptop-scale datasets whole, hiding
/// the effect wall clocks are supposed to show. The simulator restores
/// the paper's working-set-to-cache ratio (DESIGN.md §3).
pub fn run_grid_sim(cfg: &GridConfig) -> Vec<CellResult> {
    let orderings: Vec<Box<dyn OrderingAlgorithm>> =
        selected(cfg.ordering_pool(), &cfg.orderings, |o| o.name());
    let algo_names: Vec<&'static str> = {
        let mut all: Vec<&'static str> = gorder_cachesim::trace::TRACED_ALGOS.to_vec();
        if cfg.extended {
            all.extend(gorder_cachesim::trace::TRACED_EXTENSIONS);
        }
        match &cfg.algos {
            None => all,
            Some(keep) => all
                .into_iter()
                .filter(|a| keep.iter().any(|k| k == a))
                .collect(),
        }
    };
    let base = cfg.run_ctx();
    // Replays cost ~40× native, so trim the heavy iteration counts.
    let tctx_base = TraceCtx {
        source: None,
        pr_iterations: (base.pr_iterations / 5).max(2),
        damping: base.damping,
        diameter_samples: (base.diameter_samples / 4).max(2),
        seed: base.seed,
    };
    let hconfig = HierarchyConfig::scaled_down();
    let model = StallModel::skylake();
    let clock_hz = 4e9;
    let mut cells = Vec::new();
    for d in &cfg.datasets {
        let g = d.build(cfg.scale);
        eprintln!("[grid/sim] {}: n = {}, m = {}", d.name, g.n(), g.m());
        let logical_source = g.max_degree_node().unwrap_or(0);
        for o in &orderings {
            let perm = ordered(o.as_ref(), &g);
            let rg = g.relabel(&perm);
            let tctx = TraceCtx {
                source: Some(perm.apply(logical_source)),
                ..tctx_base.clone()
            };
            for &name in &algo_names {
                let mut tracer = Tracer::new(CacheHierarchy::new(&hconfig));
                let (checksum, stats) = replay_with_stats(name, &rg, &mut tracer, &tctx)
                    .expect("TRACED_ALGOS entries all have replayers");
                let cycles = tracer.breakdown(&model).total();
                cells.push(CellResult {
                    dataset: d.name.to_string(),
                    algo: name.to_string(),
                    ordering: o.name().to_string(),
                    seconds: cycles / clock_hz,
                    checksum,
                    stats,
                });
            }
            eprintln!("[grid/sim]   {} done", o.name());
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_graph::datasets::epinion_like;

    fn tiny_cfg() -> GridConfig {
        GridConfig {
            scale: 0.02,
            reps: 1,
            seed: 1,
            quick: true,
            datasets: vec![epinion_like()],
            orderings: Some(vec!["Original".into(), "Gorder".into()]),
            algos: Some(vec!["NQ".into(), "BFS".into(), "Kcore".into()]),
            extended: false,
            threads: 1,
        }
    }

    #[test]
    fn parallel_grid_matches_serial_grid() {
        let serial = run_grid(&tiny_cfg());
        let mut cfg = tiny_cfg();
        cfg.threads = 4;
        let parallel = run_grid(&cfg);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.checksum, p.checksum, "{}/{}", s.algo, s.ordering);
            assert_eq!(s.stats.iterations, p.stats.iterations);
            assert_eq!(s.stats.edges_relaxed, p.stats.edges_relaxed);
            assert_eq!(p.stats.threads_used, 4, "{}/{}", p.algo, p.ordering);
        }
    }

    #[test]
    fn extended_grid_includes_extensions() {
        let mut cfg = tiny_cfg();
        cfg.extended = true;
        cfg.orderings = Some(vec!["HubSort".into()]);
        cfg.algos = Some(vec!["WCC".into(), "Tri".into()]);
        let wall = run_grid(&cfg);
        let sim = run_grid_sim(&cfg);
        assert_eq!(wall.len(), 2);
        assert_eq!(sim.len(), 2);
        for (w, s) in wall.iter().zip(&sim) {
            assert_eq!(w.checksum, s.checksum, "{}", w.algo);
        }
    }

    #[test]
    fn grid_shape() {
        let cells = run_grid(&tiny_cfg());
        assert_eq!(cells.len(), 2 * 3);
        assert!(cells.iter().all(|c| c.seconds >= 0.0));
    }

    #[test]
    fn invariant_checksums_agree_across_orderings() {
        // NQ, BFS (mapped source) and Kcore produce relabeling-invariant
        // checksums: Original and Gorder must agree per algorithm.
        let cells = run_grid(&tiny_cfg());
        for algo in ["NQ", "BFS", "Kcore"] {
            let sums: Vec<u64> = cells
                .iter()
                .filter(|c| c.algo == algo)
                .map(|c| c.checksum)
                .collect();
            assert_eq!(sums.len(), 2);
            assert_eq!(sums[0], sums[1], "{algo} differs across orderings");
        }
    }

    #[test]
    fn filters_apply() {
        let mut cfg = tiny_cfg();
        cfg.orderings = Some(vec!["Random".into()]);
        cfg.algos = Some(vec!["SP".into()]);
        let cells = run_grid(&cfg);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].ordering, "Random");
        assert_eq!(cells[0].algo, "SP");
    }

    #[test]
    fn sim_grid_matches_shape_and_checksums() {
        let cfg = tiny_cfg();
        let wall = run_grid(&cfg);
        let sim = run_grid_sim(&cfg);
        assert_eq!(sim.len(), wall.len());
        for cell in &sim {
            assert!(
                cell.seconds > 0.0,
                "{}/{} has no modelled time",
                cell.algo,
                cell.ordering
            );
        }
        // NQ and Kcore take no iteration-count parameters, so the sim
        // checksums must equal the wall-run checksums exactly.
        for name in ["NQ", "Kcore"] {
            for o in ["Original", "Gorder"] {
                let w = wall
                    .iter()
                    .find(|c| c.algo == name && c.ordering == o)
                    .unwrap();
                let s = sim
                    .iter()
                    .find(|c| c.algo == name && c.ordering == o)
                    .unwrap();
                assert_eq!(w.checksum, s.checksum, "{name}/{o}");
            }
        }
    }

    #[test]
    fn grid_cells_carry_engine_stats() {
        // NQ/BFS/Kcore are engine kernels: both grid modes must surface
        // real per-kernel counters, not the zeroed default.
        for cells in [run_grid(&tiny_cfg()), run_grid_sim(&tiny_cfg())] {
            for c in &cells {
                assert!(
                    c.stats.iterations > 0,
                    "{}/{} reported no iterations",
                    c.algo,
                    c.ordering
                );
                assert!(
                    c.stats.edges_relaxed > 0,
                    "{}/{} reported no edge work",
                    c.algo,
                    c.ordering
                );
            }
        }
    }

    #[test]
    fn quick_ctx_is_light() {
        let cfg = tiny_cfg();
        let ctx = cfg.run_ctx();
        assert_eq!(ctx.pr_iterations, 10);
        assert_eq!(ctx.diameter_samples, 4);
    }
}
