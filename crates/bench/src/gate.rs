//! The benchmark regression gate behind `gorder-bench gate`.
//!
//! CI cannot trust raw wall clocks (shared runners, frequency scaling),
//! and it cannot skip performance checking either — the whole paper is a
//! performance claim. The gate therefore has two modes against one
//! committed baseline file (`BENCH_gate.json`, JSONL like every trace):
//!
//! * **sim** — replays a pinned grid (datasets × orderings × kernels)
//!   through the cache simulator and records *exact* counters: per-level
//!   misses, reuse-distance histograms, edges relaxed, unit-heap ops.
//!   The counters are pure functions of (graph, ordering, kernel), so
//!   two runs of the same tree produce **byte-identical** reports and CI
//!   can diff against the committed baseline with zero noise tolerance.
//! * **wall** — measures paired, interleaved A/B samples (A = Original
//!   layout, B = the ordering under test) and reduces them with
//!   [`crate::stats`] into a median speedup with a sign-test p-value and
//!   a bootstrap CI, so a regression verdict means "statistically slower
//!   by more than the threshold", not "one noisy sample moved".
//!
//! The report serialises with the obs trace machinery (schema-versioned
//! manifest first, fixed key order per record kind), parses back with
//! the same strict line/byte-offset errors as `validate-trace`, and
//! [`compare`] renders any drift as a delta table naming the offending
//! (dataset, ordering, algo, metric) cells.

use crate::fmt::Table;
use crate::schema::GATE_DELTA_HEADER;
use crate::stats::paired_stats;
use crate::timing::time_once;
use gorder_algos::{ExecPlan, KernelStats, RunCtx};
use gorder_cachesim::trace::{replay_with_stats, TraceCtx};
use gorder_cachesim::{CacheHierarchy, HierarchyConfig, Tracer};
use gorder_core::budget::Budget;
use gorder_graph::datasets;
use gorder_obs::json::{parse_object, parse_string};
use gorder_obs::{GateEvent, OrderEvent, RunManifest, TraceEvent, SCHEMA_VERSION};
use gorder_orders::{run_ordering, CacheKey, OrderingAlgorithm};
use std::collections::BTreeMap;

/// PageRank iterations for sim-mode replays (replays cost ~40× native,
/// and the counters only need a stable, representative access stream).
const SIM_PR_ITERATIONS: u32 = 4;
/// Diameter BFS sources for sim-mode replays.
const SIM_DIAMETER_SAMPLES: u32 = 2;
/// PageRank iterations for wall-mode runs (long enough to time, short
/// enough for CI).
const WALL_PR_ITERATIONS: u32 = 10;
/// Diameter BFS sources for wall-mode runs.
const WALL_DIAMETER_SAMPLES: u32 = 4;

/// Which measurement the gate runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateMode {
    /// Deterministic cache-simulator counters (CI-exact).
    Sim,
    /// Paired interleaved wall-clock samples (statistical verdicts).
    Wall,
}

impl GateMode {
    /// The mode string carried by every gate record.
    pub fn label(self) -> &'static str {
        match self {
            GateMode::Sim => "sim",
            GateMode::Wall => "wall",
        }
    }

    /// Parses a `--mode` value.
    pub fn parse(s: &str) -> Option<GateMode> {
        match s {
            "sim" => Some(GateMode::Sim),
            "wall" => Some(GateMode::Wall),
            _ => None,
        }
    }
}

/// Everything that shapes one gate run. [`GateConfig::pinned`] is the
/// grid CI runs; every field except `gorder_window` enters the config
/// hash, so a baseline can only be compared against a run of the same
/// experiment.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Measurement mode.
    pub mode: GateMode,
    /// Dataset size multiplier.
    pub scale: f64,
    /// Seed for randomised orderings and source sampling.
    pub seed: u64,
    /// Dataset names (resolved via [`datasets::by_name`]).
    pub datasets: Vec<String>,
    /// Ordering names (resolved via the extended registry). Wall mode
    /// requires `"Original"` among them — it is the A side of every pair.
    pub orderings: Vec<String>,
    /// Kernel names (sim: replayer names; wall: `gorder_algos` names).
    pub algos: Vec<String>,
    /// Wall mode: interleaved A/B sample pairs kept per cell.
    pub pairs: u32,
    /// Wall mode: leading pairs discarded as warmup.
    pub warmup: u32,
    /// Test hook: overrides Gorder's window size. Deliberately **not**
    /// part of the config hash — the injected-regression self-test must
    /// reach the comparison (and fail it with a delta table), not bounce
    /// off a hash mismatch at the door.
    pub gorder_window: Option<u32>,
}

impl GateConfig {
    /// The pinned CI grid: two generated graphs × three orderings ×
    /// three kernels, small enough to replay in seconds.
    pub fn pinned(mode: GateMode) -> GateConfig {
        GateConfig {
            mode,
            scale: 0.05,
            seed: 42,
            datasets: vec!["epinion".into(), "flickr".into()],
            orderings: vec!["Original".into(), "RCM".into(), "Gorder".into()],
            algos: vec!["NQ".into(), "BFS".into(), "PR".into()],
            pairs: 8,
            warmup: 2,
            gorder_window: None,
        }
    }

    /// The canonical config string folded into the manifest hash. Wall
    /// knobs are zeroed in sim mode (they cannot affect sim output, so
    /// they must not split sim baselines).
    pub fn config_string(&self) -> String {
        let (pairs, warmup) = match self.mode {
            GateMode::Sim => (0, 0),
            GateMode::Wall => (self.pairs, self.warmup),
        };
        format!(
            "tool=gate,mode={},scale={},seed={},datasets={},orderings={},algos={},\
             pairs={pairs},warmup={warmup}",
            self.mode.label(),
            self.scale,
            self.seed,
            self.datasets.join("+"),
            self.orderings.join("+"),
            self.algos.join("+"),
        )
    }

    /// The report's manifest line. `started_unix_secs` is pinned to 0:
    /// the baseline is content-addressed, and a timestamp is exactly the
    /// kind of byte that would break double-run identity.
    pub fn manifest(&self) -> RunManifest {
        let mut m = RunManifest::new("gate", &self.config_string());
        m.threads = 1;
        m.window = self.gorder_window.map(u64::from);
        m.started_unix_secs = 0;
        m
    }

    fn ordering_named(&self, name: &str) -> Result<Box<dyn OrderingAlgorithm>, String> {
        if name == "Gorder" {
            if let Some(w) = self.gorder_window {
                return Ok(Box::new(
                    gorder_orders::gorder_impl::GorderOrdering::with_window(w),
                ));
            }
        }
        gorder_orders::by_name_extended(name, self.seed)
            .ok_or_else(|| format!("unknown ordering {name:?}"))
    }
}

/// One gate run, ready to serialise: the manifest, one `gate` record per
/// grid cell, one `order` record per (dataset, ordering).
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Provenance + config hash (`started_unix_secs` pinned to 0).
    pub manifest: RunManifest,
    /// Grid cells in generation order (dataset-major, then ordering).
    pub cells: Vec<GateEvent>,
    /// Ordering constructions, with `seconds` pinned to 0.0 so sim
    /// reports stay byte-reproducible.
    pub orders: Vec<OrderEvent>,
}

/// Runs the configured grid. Unknown dataset/ordering/algo names fail
/// up-front, before any graph is built.
pub fn run_gate(cfg: &GateConfig) -> Result<GateReport, String> {
    for name in &cfg.datasets {
        if datasets::by_name(name).is_none() {
            return Err(format!("unknown dataset {name:?}"));
        }
    }
    for name in &cfg.orderings {
        cfg.ordering_named(name)?;
    }
    for name in &cfg.algos {
        let known = match cfg.mode {
            GateMode::Sim => gorder_cachesim::trace::TRACED_ALGOS.contains(&name.as_str()),
            GateMode::Wall => gorder_algos::by_name(name).is_some(),
        };
        if !known {
            return Err(format!("unknown algorithm {name:?}"));
        }
    }
    if cfg.mode == GateMode::Wall && !cfg.orderings.iter().any(|o| o == "Original") {
        return Err("wall mode needs \"Original\" among --orderings (it is the A side)".into());
    }

    let mut cells = Vec::new();
    let mut orders = Vec::new();
    for dname in &cfg.datasets {
        let g = datasets::by_name(dname).unwrap().build(cfg.scale);
        let logical_source = g.max_degree_node().unwrap_or(0);
        let mut layouts = Vec::new();
        for oname in &cfg.orderings {
            let o = cfg.ordering_named(oname)?;
            let key = CacheKey::for_ordering(&g, o.as_ref(), cfg.seed);
            let run = run_ordering(
                o.as_ref(),
                &g,
                gorder_orders::ExecPlan::Serial,
                &Budget::unlimited(),
            )
            .value()
            .ok_or_else(|| format!("ordering {oname:?} failed under an unlimited budget"))?;
            orders.push(OrderEvent {
                dataset: Some(dname.clone()),
                name: oname.clone(),
                params: o.params(),
                seed: cfg.seed,
                graph_digest: key.graph_digest,
                identity: key.identity(),
                status: "completed".into(),
                // Pinned: construction time is wall noise, and the order
                // record is here for its deterministic counters.
                seconds: 0.0,
                nodes_placed: run.stats.nodes_placed,
                heap_increments: run.stats.heap_increments,
                heap_decrements: run.stats.heap_decrements,
                heap_pops: run.stats.heap_pops,
                threads_used: 1,
                cache_hit: false,
            });
            layouts.push((oname.clone(), run.perm));
        }
        match cfg.mode {
            GateMode::Sim => sim_cells(cfg, dname, &g, logical_source, &layouts, &mut cells),
            GateMode::Wall => wall_cells(cfg, dname, &g, logical_source, &layouts, &mut cells),
        }
    }
    Ok(GateReport {
        manifest: cfg.manifest(),
        cells,
        orders,
    })
}

fn sim_cells(
    cfg: &GateConfig,
    dname: &str,
    g: &gorder_graph::Graph,
    logical_source: u32,
    layouts: &[(String, gorder_graph::Permutation)],
    cells: &mut Vec<GateEvent>,
) {
    let hconfig = HierarchyConfig::scaled_down();
    for (oname, perm) in layouts {
        let rg = g.relabel(perm);
        let tctx = TraceCtx {
            source: Some(perm.apply(logical_source)),
            pr_iterations: SIM_PR_ITERATIONS,
            damping: 0.85,
            diameter_samples: SIM_DIAMETER_SAMPLES,
            seed: cfg.seed,
        };
        for algo in &cfg.algos {
            let mut tracer = Tracer::new(CacheHierarchy::new(&hconfig));
            tracer.enable_reuse_tracking();
            let (checksum, kstats) = replay_with_stats(algo, &rg, &mut tracer, &tctx)
                .expect("algo names validated against TRACED_ALGOS");
            let c = tracer.counters();
            cells.push(GateEvent {
                mode: "sim".into(),
                dataset: dname.to_string(),
                ordering: oname.clone(),
                algo: algo.clone(),
                checksum,
                iterations: kstats.iterations,
                edges_relaxed: kstats.edges_relaxed,
                refs: c.refs,
                level_misses: c.level_misses,
                mem_accesses: c.memory_accesses,
                ops: c.ops,
                reuse_total: c.reuse_total,
                reuse_sum: c.reuse_sum,
                reuse_counts: c.reuse_counts,
                pairs: 0,
                speedup: 0.0,
                sign_p: 0.0,
                ci_lo: 0.0,
                ci_hi: 0.0,
            });
        }
    }
}

fn wall_cells(
    cfg: &GateConfig,
    dname: &str,
    g: &gorder_graph::Graph,
    logical_source: u32,
    layouts: &[(String, gorder_graph::Permutation)],
    cells: &mut Vec<GateEvent>,
) {
    let (_, operm) = layouts
        .iter()
        .find(|(n, _)| n == "Original")
        .expect("wall mode validated Original is present");
    let og = g.relabel(operm);
    let plan = ExecPlan::with_threads(1);
    let base_ctx = RunCtx {
        source: None,
        pr_iterations: WALL_PR_ITERATIONS,
        damping: 0.85,
        diameter_samples: WALL_DIAMETER_SAMPLES,
        seed: cfg.seed,
    };
    let actx = RunCtx {
        source: Some(operm.apply(logical_source)),
        ..base_ctx.clone()
    };
    for (oname, perm) in layouts.iter().filter(|(n, _)| n != "Original") {
        let rg = g.relabel(perm);
        let bctx = RunCtx {
            source: Some(perm.apply(logical_source)),
            ..base_ctx.clone()
        };
        for algo in &cfg.algos {
            let a = gorder_algos::by_name(algo).expect("algo names validated");
            let mut t_orig = Vec::new();
            let mut t_ord = Vec::new();
            let mut checksum = 0u64;
            let mut kstats = KernelStats::default();
            for i in 0..cfg.warmup + cfg.pairs {
                // Interleaved A then B: slow drift (thermal, neighbours)
                // lands on both sides of every pair.
                let (sa, _) = time_once(|| a.run_stats_plan(&og, &actx, plan));
                let (sb, (cb, sb_stats)) = time_once(|| a.run_stats_plan(&rg, &bctx, plan));
                checksum = cb;
                kstats = sb_stats;
                if i >= cfg.warmup {
                    t_orig.push(sa);
                    t_ord.push(sb);
                }
            }
            // paired_stats(a, b) medians ln(b/a): with a = ordering
            // times and b = Original times that is ln(speedup).
            let st = paired_stats(&t_ord, &t_orig);
            cells.push(GateEvent {
                mode: "wall".into(),
                dataset: dname.to_string(),
                ordering: oname.clone(),
                algo: algo.clone(),
                checksum,
                iterations: kstats.iterations,
                edges_relaxed: kstats.edges_relaxed,
                refs: 0,
                level_misses: Vec::new(),
                mem_accesses: 0,
                ops: 0,
                reuse_total: 0,
                reuse_sum: 0.0,
                reuse_counts: Vec::new(),
                pairs: st.pairs,
                speedup: st.median_log_ratio.exp(),
                sign_p: st.sign_p,
                ci_lo: st.ci_lo.exp(),
                ci_hi: st.ci_hi.exp(),
            });
        }
    }
}

/// Serialises a report to `BENCH_gate.json` content: manifest line, then
/// `gate` lines, then `order` lines, every line newline-terminated.
pub fn render_report(r: &GateReport) -> String {
    let mut out = String::new();
    out.push_str(&r.manifest.to_json_line());
    out.push('\n');
    for c in &r.cells {
        out.push_str(&TraceEvent::Gate(c.clone()).to_json_line());
        out.push('\n');
    }
    for o in &r.orders {
        out.push_str(&TraceEvent::Order(o.clone()).to_json_line());
        out.push('\n');
    }
    out
}

/// Parses `BENCH_gate.json` content back into a [`GateReport`],
/// losslessly ([`render_report`] of the result reproduces the input
/// byte-for-byte). Errors carry the validate-trace conventions: `line
/// {n} (byte offset {offset}): {what}`. A final line without its
/// newline is rejected as truncated — baseline lines are flushed
/// newline-last, so a complete file always ends with one.
pub fn parse_report(text: &str) -> Result<GateReport, String> {
    let mut manifest: Option<RunManifest> = None;
    let mut cells = Vec::new();
    let mut orders = Vec::new();
    let mut offset = 0usize;
    for (idx, raw) in text.split_inclusive('\n').enumerate() {
        let n = idx + 1;
        let at = |e: String| format!("line {n} (byte offset {offset}): {e}");
        let Some(line) = raw.strip_suffix('\n') else {
            return Err(at("truncated line (missing trailing newline)".into()));
        };
        let obj = parse_object(line).map_err(&at)?;
        let kind = get_str(&obj, "kind").map_err(&at)?;
        if idx == 0 {
            if kind != "manifest" {
                return Err(at(format!("first line must be a manifest, got {kind:?}")));
            }
            let ver = get_u64(&obj, "schema_version").map_err(&at)?;
            if ver != SCHEMA_VERSION {
                return Err(at(format!(
                    "schema_version {ver} != supported {SCHEMA_VERSION} — \
                     regenerate the baseline with --update"
                )));
            }
            manifest = Some(parse_manifest(&obj).map_err(&at)?);
        } else {
            match kind.as_str() {
                "gate" => cells.push(parse_gate(&obj).map_err(&at)?),
                "order" => orders.push(parse_order(&obj).map_err(&at)?),
                other => {
                    return Err(at(format!(
                        "unexpected record kind {other:?} in a gate file"
                    )))
                }
            }
        }
        offset += raw.len();
    }
    let manifest = manifest.ok_or("empty gate file: expected at least a manifest line")?;
    Ok(GateReport {
        manifest,
        cells,
        orders,
    })
}

fn req<'a>(obj: &'a BTreeMap<String, String>, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing {key:?}"))
}

fn get_str(obj: &BTreeMap<String, String>, key: &str) -> Result<String, String> {
    parse_string(req(obj, key)?).map_err(|e| format!("{key}: {e}"))
}

fn get_opt_str(obj: &BTreeMap<String, String>, key: &str) -> Result<Option<String>, String> {
    let raw = req(obj, key)?;
    if raw == "null" {
        return Ok(None);
    }
    parse_string(raw)
        .map(Some)
        .map_err(|e| format!("{key}: {e}"))
}

fn get_u64(obj: &BTreeMap<String, String>, key: &str) -> Result<u64, String> {
    let raw = req(obj, key)?;
    raw.parse()
        .map_err(|_| format!("{key}: not an unsigned integer: {raw}"))
}

fn get_opt_u64(obj: &BTreeMap<String, String>, key: &str) -> Result<Option<u64>, String> {
    let raw = req(obj, key)?;
    if raw == "null" {
        return Ok(None);
    }
    raw.parse()
        .map(Some)
        .map_err(|_| format!("{key}: not an unsigned integer: {raw}"))
}

fn get_f64(obj: &BTreeMap<String, String>, key: &str) -> Result<f64, String> {
    let raw = req(obj, key)?;
    raw.parse()
        .map_err(|_| format!("{key}: not a finite number: {raw}"))
}

fn get_bool(obj: &BTreeMap<String, String>, key: &str) -> Result<bool, String> {
    match req(obj, key)? {
        "true" => Ok(true),
        "false" => Ok(false),
        raw => Err(format!("{key}: not a boolean: {raw}")),
    }
}

fn get_u64_array(obj: &BTreeMap<String, String>, key: &str) -> Result<Vec<u64>, String> {
    let raw = req(obj, key)?;
    let inner = raw
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| format!("{key}: not an array: {raw}"))?;
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|v| {
            v.parse()
                .map_err(|_| format!("{key}: not an unsigned integer: {v}"))
        })
        .collect()
}

fn parse_manifest(obj: &BTreeMap<String, String>) -> Result<RunManifest, String> {
    Ok(RunManifest {
        tool: get_str(obj, "tool")?,
        dataset: get_opt_str(obj, "dataset")?,
        ordering: get_opt_str(obj, "ordering")?,
        algo: get_opt_str(obj, "algo")?,
        threads: get_u64(obj, "threads")?,
        window: get_opt_u64(obj, "window")?,
        config_hash: get_u64(obj, "config_hash")?,
        started_unix_secs: get_u64(obj, "started_unix_secs")?,
    })
}

fn parse_gate(obj: &BTreeMap<String, String>) -> Result<GateEvent, String> {
    Ok(GateEvent {
        mode: get_str(obj, "mode")?,
        dataset: get_str(obj, "dataset")?,
        ordering: get_str(obj, "ordering")?,
        algo: get_str(obj, "algo")?,
        checksum: get_u64(obj, "checksum")?,
        iterations: get_u64(obj, "iterations")?,
        edges_relaxed: get_u64(obj, "edges_relaxed")?,
        refs: get_u64(obj, "refs")?,
        level_misses: get_u64_array(obj, "level_misses")?,
        mem_accesses: get_u64(obj, "mem_accesses")?,
        ops: get_u64(obj, "ops")?,
        reuse_total: get_u64(obj, "reuse_total")?,
        reuse_sum: get_f64(obj, "reuse_sum")?,
        reuse_counts: get_u64_array(obj, "reuse_counts")?,
        pairs: get_u64(obj, "pairs")?,
        speedup: get_f64(obj, "speedup")?,
        sign_p: get_f64(obj, "sign_p")?,
        ci_lo: get_f64(obj, "ci_lo")?,
        ci_hi: get_f64(obj, "ci_hi")?,
    })
}

fn parse_order(obj: &BTreeMap<String, String>) -> Result<OrderEvent, String> {
    Ok(OrderEvent {
        dataset: get_opt_str(obj, "dataset")?,
        name: get_str(obj, "name")?,
        params: get_str(obj, "params")?,
        seed: get_u64(obj, "seed")?,
        graph_digest: get_u64(obj, "graph_digest")?,
        identity: get_str(obj, "identity")?,
        status: get_str(obj, "status")?,
        seconds: get_f64(obj, "seconds")?,
        nodes_placed: get_u64(obj, "nodes_placed")?,
        heap_increments: get_u64(obj, "heap_increments")?,
        heap_decrements: get_u64(obj, "heap_decrements")?,
        heap_pops: get_u64(obj, "heap_pops")?,
        threads_used: get_u64(obj, "threads_used")?,
        cache_hit: get_bool(obj, "cache_hit")?,
    })
}

/// One baseline-vs-current discrepancy, addressable down to the metric.
#[derive(Debug, Clone, PartialEq)]
pub struct GateDelta {
    /// Dataset of the offending cell.
    pub dataset: String,
    /// Ordering of the offending cell.
    pub ordering: String,
    /// Algorithm of the offending cell (`"-"` for order records).
    pub algo: String,
    /// Which metric drifted (e.g. `"level_misses[2]"`, `"speedup"`).
    pub metric: String,
    /// Baseline value, rendered.
    pub baseline: String,
    /// Current value, rendered.
    pub current: String,
}

/// The outcome of [`compare`]: empty deltas = gate passed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateComparison {
    /// Every discrepancy found, in baseline order.
    pub deltas: Vec<GateDelta>,
}

impl GateComparison {
    /// True when current matched the baseline everywhere.
    pub fn passed(&self) -> bool {
        self.deltas.is_empty()
    }

    /// The human-readable delta table CI prints on failure.
    pub fn render_table(&self) -> String {
        let mut t = Table::new(GATE_DELTA_HEADER.iter().copied());
        for d in &self.deltas {
            t.row([
                d.dataset.as_str(),
                d.ordering.as_str(),
                d.algo.as_str(),
                d.metric.as_str(),
                d.baseline.as_str(),
                d.current.as_str(),
            ]);
        }
        t.render()
    }
}

/// `|cur - base| <= base · tol%` — with zero tolerance, exact equality.
fn within_u64(base: u64, cur: u64, tol_pct: f64) -> bool {
    if tol_pct <= 0.0 {
        return base == cur;
    }
    (cur as f64 - base as f64).abs() <= base as f64 * tol_pct / 100.0
}

fn within_f64(base: f64, cur: f64, tol_pct: f64) -> bool {
    if tol_pct <= 0.0 {
        return base == cur;
    }
    (cur - base).abs() <= base.abs() * tol_pct / 100.0
}

/// Compares a current report against the committed baseline.
///
/// Sim cells: the checksum must match exactly (a checksum drift means
/// the kernel computed something else — no tolerance makes that ok), and
/// every counter must match within `tolerance_pct` (CI uses 0 = exact).
/// Wall cells: a regression is declared when the current CI upper bound
/// on the speedup falls below the baseline speedup shrunk by
/// `threshold_pct` — i.e. the whole confidence interval says
/// "statistically slower by more than X%". Order records compare their
/// deterministic counters like sim cells. Missing and unexpected cells
/// are discrepancies in both modes.
pub fn compare(
    base: &GateReport,
    cur: &GateReport,
    tolerance_pct: f64,
    threshold_pct: f64,
) -> GateComparison {
    let mut out = GateComparison::default();
    let cur_cells: BTreeMap<_, _> = cur
        .cells
        .iter()
        .map(|c| ((&c.dataset, &c.ordering, &c.algo), c))
        .collect();
    for b in &base.cells {
        let Some(c) = cur_cells.get(&(&b.dataset, &b.ordering, &b.algo)) else {
            out.deltas.push(delta(b, "cell", "present", "missing"));
            continue;
        };
        compare_cell(b, c, tolerance_pct, threshold_pct, &mut out.deltas);
    }
    let base_keys: std::collections::BTreeSet<_> = base
        .cells
        .iter()
        .map(|c| (&c.dataset, &c.ordering, &c.algo))
        .collect();
    for c in &cur.cells {
        if !base_keys.contains(&(&c.dataset, &c.ordering, &c.algo)) {
            out.deltas.push(delta(c, "cell", "missing", "present"));
        }
    }

    let cur_orders: BTreeMap<_, _> = cur
        .orders
        .iter()
        .map(|o| ((&o.dataset, &o.name), o))
        .collect();
    for b in &base.orders {
        let Some(c) = cur_orders.get(&(&b.dataset, &b.name)) else {
            out.deltas
                .push(order_delta(b, "order", "present", "missing"));
            continue;
        };
        compare_order(b, c, tolerance_pct, &mut out.deltas);
    }
    let base_order_keys: std::collections::BTreeSet<_> =
        base.orders.iter().map(|o| (&o.dataset, &o.name)).collect();
    for c in &cur.orders {
        if !base_order_keys.contains(&(&c.dataset, &c.name)) {
            out.deltas
                .push(order_delta(c, "order", "missing", "present"));
        }
    }
    out
}

fn delta(
    c: &GateEvent,
    metric: &str,
    baseline: impl ToString,
    current: impl ToString,
) -> GateDelta {
    GateDelta {
        dataset: c.dataset.clone(),
        ordering: c.ordering.clone(),
        algo: c.algo.clone(),
        metric: metric.to_string(),
        baseline: baseline.to_string(),
        current: current.to_string(),
    }
}

fn order_delta(
    o: &OrderEvent,
    metric: &str,
    baseline: impl ToString,
    current: impl ToString,
) -> GateDelta {
    GateDelta {
        dataset: o.dataset.clone().unwrap_or_else(|| "-".into()),
        ordering: o.name.clone(),
        algo: "-".into(),
        metric: metric.to_string(),
        baseline: baseline.to_string(),
        current: current.to_string(),
    }
}

fn compare_cell(
    b: &GateEvent,
    c: &GateEvent,
    tolerance_pct: f64,
    threshold_pct: f64,
    deltas: &mut Vec<GateDelta>,
) {
    if b.mode != c.mode {
        deltas.push(delta(b, "mode", &b.mode, &c.mode));
        return;
    }
    if b.checksum != c.checksum {
        deltas.push(delta(b, "checksum", b.checksum, c.checksum));
    }
    if b.mode == "sim" {
        let scalars = [
            ("iterations", b.iterations, c.iterations),
            ("edges_relaxed", b.edges_relaxed, c.edges_relaxed),
            ("refs", b.refs, c.refs),
            ("mem_accesses", b.mem_accesses, c.mem_accesses),
            ("ops", b.ops, c.ops),
            ("reuse_total", b.reuse_total, c.reuse_total),
        ];
        for (name, bv, cv) in scalars {
            if !within_u64(bv, cv, tolerance_pct) {
                deltas.push(delta(b, name, bv, cv));
            }
        }
        if !within_f64(b.reuse_sum, c.reuse_sum, tolerance_pct) {
            deltas.push(delta(b, "reuse_sum", b.reuse_sum, c.reuse_sum));
        }
        for (name, bv, cv) in [
            ("level_misses", &b.level_misses, &c.level_misses),
            ("reuse_counts", &b.reuse_counts, &c.reuse_counts),
        ] {
            if bv.len() != cv.len() {
                deltas.push(delta(b, &format!("{name}.len"), bv.len(), cv.len()));
                continue;
            }
            for (i, (x, y)) in bv.iter().zip(cv).enumerate() {
                if !within_u64(*x, *y, tolerance_pct) {
                    deltas.push(delta(b, &format!("{name}[{i}]"), x, y));
                }
            }
        }
    } else {
        // Wall: regression = the current interval's most optimistic end
        // is still slower than the baseline speedup minus the threshold.
        let floor = b.speedup / (1.0 + threshold_pct.max(0.0) / 100.0);
        if c.ci_hi < floor {
            deltas.push(delta(
                b,
                "speedup",
                format!("{:.4}", b.speedup),
                format!(
                    "{:.4} (ci {:.4}..{:.4}, p={:.4})",
                    c.speedup, c.ci_lo, c.ci_hi, c.sign_p
                ),
            ));
        }
    }
}

fn compare_order(b: &OrderEvent, c: &OrderEvent, tolerance_pct: f64, deltas: &mut Vec<GateDelta>) {
    if b.identity != c.identity {
        deltas.push(order_delta(b, "identity", &b.identity, &c.identity));
    }
    let scalars = [
        ("nodes_placed", b.nodes_placed, c.nodes_placed),
        ("heap_increments", b.heap_increments, c.heap_increments),
        ("heap_decrements", b.heap_decrements, c.heap_decrements),
        ("heap_pops", b.heap_pops, c.heap_pops),
    ];
    for (name, bv, cv) in scalars {
        if !within_u64(bv, cv, tolerance_pct) {
            deltas.push(order_delta(b, name, bv, cv));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-dataset, two-ordering, one-kernel sim grid that runs in
    /// well under a second.
    fn tiny(mode: GateMode) -> GateConfig {
        GateConfig {
            mode,
            scale: 0.02,
            seed: 7,
            datasets: vec!["epinion".into()],
            orderings: vec!["Original".into(), "Gorder".into()],
            algos: vec!["NQ".into()],
            pairs: 3,
            warmup: 1,
            gorder_window: None,
        }
    }

    #[test]
    fn config_hash_ignores_the_window_hook() {
        let base = tiny(GateMode::Sim);
        let hooked = GateConfig {
            gorder_window: Some(1),
            ..base.clone()
        };
        assert_eq!(
            base.manifest().config_hash,
            hooked.manifest().config_hash,
            "the injected-regression hook must reach the comparison, not die on hash mismatch"
        );
        assert_eq!(base.manifest().started_unix_secs, 0);
        // ...but the wall knobs do hash in wall mode
        let wall = tiny(GateMode::Wall);
        let more_pairs = GateConfig {
            pairs: 9,
            ..wall.clone()
        };
        assert_ne!(
            wall.manifest().config_hash,
            more_pairs.manifest().config_hash
        );
        // ...and not in sim mode, where they are inert
        let sim_more_pairs = GateConfig {
            pairs: 9,
            ..base.clone()
        };
        assert_eq!(
            base.manifest().config_hash,
            sim_more_pairs.manifest().config_hash
        );
    }

    #[test]
    fn sim_run_is_deterministic_and_roundtrips() {
        let cfg = tiny(GateMode::Sim);
        let r1 = run_gate(&cfg).unwrap();
        let r2 = run_gate(&cfg).unwrap();
        let text = render_report(&r1);
        assert_eq!(
            text,
            render_report(&r2),
            "sim reports must be byte-identical"
        );
        assert_eq!(r1.cells.len(), 2);
        assert_eq!(r1.orders.len(), 2);
        assert!(r1
            .cells
            .iter()
            .all(|c| c.refs > 0 && !c.level_misses.is_empty()));
        // lossless round trip
        let parsed = parse_report(&text).unwrap();
        assert_eq!(parsed, r1);
        assert_eq!(render_report(&parsed), text);
        // a report compares clean against itself, exactly
        assert!(compare(&r1, &parsed, 0.0, 5.0).passed());
    }

    #[test]
    fn injected_window_regression_is_caught_and_named() {
        let cfg = tiny(GateMode::Sim);
        let base = run_gate(&cfg).unwrap();
        let hooked = GateConfig {
            gorder_window: Some(1),
            ..cfg
        };
        let cur = run_gate(&hooked).unwrap();
        let cmp = compare(&base, &cur, 0.0, 5.0);
        assert!(!cmp.passed(), "w=1 must shift the simulated counters");
        assert!(
            cmp.deltas.iter().all(|d| d.ordering == "Gorder"),
            "only Gorder cells may drift: {:?}",
            cmp.deltas
        );
        let table = cmp.render_table();
        assert!(table.contains("Gorder") && table.contains("epinion"));
    }

    #[test]
    fn tolerance_absorbs_small_counter_drift() {
        let cfg = tiny(GateMode::Sim);
        let base = run_gate(&cfg).unwrap();
        let mut cur = base.clone();
        cur.cells[0].refs += 1;
        assert!(!compare(&base, &cur, 0.0, 5.0).passed());
        assert!(compare(&base, &cur, 1.0, 5.0).passed());
        // checksum drift is never tolerated
        cur.cells[0].checksum ^= 1;
        assert!(!compare(&base, &cur, 50.0, 5.0).passed());
    }

    #[test]
    fn missing_and_extra_cells_are_discrepancies() {
        let cfg = tiny(GateMode::Sim);
        let base = run_gate(&cfg).unwrap();
        let mut cur = base.clone();
        let moved = cur.cells.remove(0);
        let cmp = compare(&base, &cur, 0.0, 5.0);
        assert_eq!(cmp.deltas.len(), 1);
        assert_eq!(cmp.deltas[0].metric, "cell");
        assert_eq!(cmp.deltas[0].current, "missing");
        cur.cells.push(GateEvent {
            algo: "PR".into(),
            ..moved
        });
        let cmp = compare(&base, &cur, 0.0, 5.0);
        assert!(cmp.deltas.iter().any(|d| d.current == "present"));
    }

    #[test]
    fn parse_errors_name_line_and_byte_offset() {
        let cfg = tiny(GateMode::Sim);
        let text = render_report(&run_gate(&cfg).unwrap());
        // truncation: drop the final newline
        let err = parse_report(text.trim_end()).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        // corruption mid-file: garbage where line 2 starts
        let manifest_len = text.find('\n').unwrap() + 1;
        let corrupt = format!("{}not json\n", &text[..manifest_len]);
        let err = parse_report(&corrupt).unwrap_err();
        assert!(
            err.starts_with(&format!("line 2 (byte offset {manifest_len}):")),
            "{err}"
        );
        // foreign record kinds are rejected
        let foreign = format!("{}{{\"kind\":\"cell\",\"x\":1}}\n", &text[..manifest_len]);
        assert!(parse_report(&foreign)
            .unwrap_err()
            .contains("unexpected record kind"));
        // stale schema version names the fix
        let stale = text.replacen(
            &format!("\"schema_version\":{SCHEMA_VERSION}"),
            "\"schema_version\":1",
            1,
        );
        assert!(parse_report(&stale).unwrap_err().contains("--update"));
        // empty file
        assert!(parse_report("").unwrap_err().contains("empty gate file"));
    }

    #[test]
    fn wall_comparison_uses_the_interval_not_the_point() {
        let cfg = tiny(GateMode::Wall);
        let mk = |speedup: f64, ci_lo: f64, ci_hi: f64| GateReport {
            manifest: cfg.manifest(),
            cells: vec![GateEvent {
                mode: "wall".into(),
                dataset: "epinion".into(),
                ordering: "Gorder".into(),
                algo: "NQ".into(),
                checksum: 1,
                iterations: 1,
                edges_relaxed: 1,
                refs: 0,
                level_misses: Vec::new(),
                mem_accesses: 0,
                ops: 0,
                reuse_total: 0,
                reuse_sum: 0.0,
                reuse_counts: Vec::new(),
                pairs: 8,
                speedup,
                sign_p: 0.01,
                ci_lo,
                ci_hi,
            }],
            orders: Vec::new(),
        };
        let base = mk(1.30, 1.25, 1.35);
        // point estimate dropped, but the interval still reaches the
        // floor: not a regression
        let noisy = mk(1.20, 1.10, 1.30);
        assert!(compare(&base, &noisy, 0.0, 5.0).passed());
        // the whole interval is below baseline/1.05: regression
        let slow = mk(1.10, 1.05, 1.15);
        let cmp = compare(&base, &slow, 0.0, 5.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.deltas[0].metric, "speedup");
        // a bigger threshold forgives it
        assert!(compare(&base, &slow, 0.0, 25.0).passed());
    }

    #[test]
    fn wall_mode_requires_original() {
        let mut cfg = tiny(GateMode::Wall);
        cfg.orderings = vec!["Gorder".into()];
        assert!(run_gate(&cfg).unwrap_err().contains("Original"));
    }

    #[test]
    fn unknown_names_fail_fast() {
        let mut cfg = tiny(GateMode::Sim);
        cfg.datasets = vec!["nope".into()];
        assert!(run_gate(&cfg).unwrap_err().contains("unknown dataset"));
        let mut cfg = tiny(GateMode::Sim);
        cfg.orderings = vec!["nope".into()];
        assert!(run_gate(&cfg).unwrap_err().contains("unknown ordering"));
        let mut cfg = tiny(GateMode::Sim);
        cfg.algos = vec!["WCC+".into()];
        assert!(run_gate(&cfg).unwrap_err().contains("unknown algorithm"));
    }
}
