//! Paired-sample statistics for the wall-clock regression gate.
//!
//! Wall-clock benchmarking on shared hosts is noisy in ways a single
//! median cannot absorb: frequency scaling, cache pollution from
//! neighbours, page-cache state. The gate therefore measures **paired,
//! interleaved** samples (A and B alternating, so drift hits both sides
//! equally) and reduces them here into three mutually supporting views:
//!
//! * the median per-pair log-ratio (a robust effect size);
//! * a two-sided **sign test** over the pairs (distribution-free: no
//!   variance assumptions, immune to outlier pairs);
//! * a deterministic **bootstrap confidence interval** on the median
//!   log-ratio (seeded resampling, so the same samples always produce
//!   the same interval).
//!
//! Everything is computed from the *sorted* multiset of per-pair
//! log-ratios, which buys two properties the property tests pin down:
//! the result is invariant under any permutation of the pairs, and
//! exactly antisymmetric under swapping A and B (each bootstrap
//! replicate is drawn together with its mirror, so the replicate set
//! negates elementwise under a swap — the interval endpoints exchange
//! and negate exactly, not just approximately).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Significance level for the sign test ([`PairedStats::verdict`]).
pub const ALPHA: f64 = 0.05;

/// Bootstrap replicates (even: replicates are drawn in mirror pairs).
const BOOTSTRAP_REPLICATES: usize = 200;

/// Two-sided bootstrap coverage (`[2.5%, 97.5%]` percentile interval).
const BOOTSTRAP_TAIL: f64 = 0.025;

/// Fixed seed for bootstrap resampling: part of the statistic's
/// definition, like the histogram bucket bounds — never data-derived,
/// so two evaluations of the same samples agree bit-for-bit.
const BOOTSTRAP_SEED: u64 = 0x5eed0fb007;

/// The reduction of one paired A/B comparison. Log-ratios are
/// `ln(b_i / a_i)`: positive means B (current) was slower than A
/// (baseline) on that pair.
#[derive(Debug, Clone, PartialEq)]
pub struct PairedStats {
    /// Pairs that entered the statistics (both sides finite and > 0).
    pub pairs: u64,
    /// Pairs dropped for non-finite or non-positive samples.
    pub skipped: u64,
    /// Pairs where B was strictly slower (log-ratio > 0).
    pub wins_b_slower: u64,
    /// Pairs where B was strictly faster (log-ratio < 0).
    pub wins_b_faster: u64,
    /// Median per-pair log-ratio `ln(b/a)` (0.0 with no usable pairs).
    pub median_log_ratio: f64,
    /// Two-sided sign-test p-value (1.0 when no pair differed).
    pub sign_p: f64,
    /// Bootstrap CI lower bound on the median log-ratio.
    pub ci_lo: f64,
    /// Bootstrap CI upper bound on the median log-ratio.
    pub ci_hi: f64,
}

/// Three-way outcome of a paired comparison at a relative threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// B is statistically slower than A by more than the threshold.
    Regression,
    /// B is statistically faster than A by more than the threshold.
    Improvement,
    /// Neither direction clears the threshold with significance.
    NoChange,
}

impl PairedStats {
    /// Classifies the comparison at `threshold_pct` (e.g. `5.0` = "more
    /// than 5 % slower"). A [`Verdict::Regression`] requires all three
    /// views to agree: the median effect exceeds the threshold, the sign
    /// test rejects "coin flip" at [`ALPHA`], and the bootstrap interval
    /// excludes zero. The rule is exactly symmetric: swapping A and B
    /// turns every `Regression` into an `Improvement` and vice versa.
    pub fn verdict(&self, threshold_pct: f64) -> Verdict {
        // Thresholding on the log scale keeps the rule antisymmetric
        // ("5 % slower" and "5 % faster" are reciprocal factors, which
        // percentage deltas are not).
        let thr = (1.0 + threshold_pct.max(0.0) / 100.0).ln();
        if self.median_log_ratio > thr && self.sign_p < ALPHA && self.ci_lo > 0.0 {
            Verdict::Regression
        } else if self.median_log_ratio < -thr && self.sign_p < ALPHA && self.ci_hi < 0.0 {
            Verdict::Improvement
        } else {
            Verdict::NoChange
        }
    }

    /// The median ratio `b/a` as a percentage delta (`+5.0` = B is 5 %
    /// slower). Display only — verdicts work on the log scale.
    pub fn delta_pct(&self) -> f64 {
        (self.median_log_ratio.exp() - 1.0) * 100.0
    }
}

/// Reduces paired samples `(a_i, b_i)` — `a` and `b` must be the same
/// length; pairing is positional. Pairs with a non-finite or
/// non-positive side are skipped (and counted), so a timer glitch
/// weakens the statistics instead of poisoning them.
///
/// # Panics
/// Panics when `a` and `b` have different lengths — that is a harness
/// bug, not a data property.
pub fn paired_stats(a: &[f64], b: &[f64]) -> PairedStats {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    let mut diffs: Vec<f64> = Vec::with_capacity(a.len());
    let mut skipped = 0u64;
    for (&x, &y) in a.iter().zip(b) {
        if x.is_finite() && y.is_finite() && x > 0.0 && y > 0.0 {
            // ln(y) - ln(x), not ln(y/x): IEEE subtraction negates
            // exactly under operand swap, so the swapped comparison sees
            // the elementwise negation of these diffs bit-for-bit.
            diffs.push(y.ln() - x.ln());
        } else {
            skipped += 1;
        }
    }
    // Canonical order: every statistic below sees the sorted multiset,
    // never the arrival order — permutation invariance by construction.
    diffs.sort_by(f64::total_cmp);
    let wins_b_slower = diffs.iter().filter(|&&d| d > 0.0).count() as u64;
    let wins_b_faster = diffs.iter().filter(|&&d| d < 0.0).count() as u64;
    let (ci_lo, ci_hi) = bootstrap_ci(&diffs);
    PairedStats {
        pairs: diffs.len() as u64,
        skipped,
        wins_b_slower,
        wins_b_faster,
        median_log_ratio: median_sorted(&diffs),
        sign_p: sign_test_p(wins_b_slower, wins_b_faster),
        ci_lo,
        ci_hi,
    }
}

/// Median of an already-sorted slice; 0.0 when empty. The even-length
/// midpoint is `(x + y) / 2`, which negates exactly under negated
/// inputs — part of the A/B-swap antisymmetry contract.
pub fn median_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Two-sided exact sign test: under H0 (no systematic difference) the
/// `wins` among the `wins + losses` informative pairs are
/// Binomial(n, ½). Returns `2 · P(X ≥ max(wins, losses))`, capped at 1;
/// ties carry no information and are excluded, and zero informative
/// pairs return 1.0 (no evidence of any difference).
pub fn sign_test_p(wins: u64, losses: u64) -> f64 {
    let n = wins + losses;
    if n == 0 {
        return 1.0;
    }
    let k = wins.max(losses);
    // Tail sum in log2 space: log2 C(n,i) - n accumulated stably even
    // for n in the hundreds (where C(n, n/2) overflows f64).
    let mut tail = 0.0f64;
    for i in k..=n {
        tail += (log2_choose(n, i) - n as f64).exp2();
    }
    (2.0 * tail).min(1.0)
}

/// `log2 C(n, k)` via a running product — exact enough for p-values and
/// free of factorial overflow.
fn log2_choose(n: u64, k: u64) -> f64 {
    let k = k.min(n - k);
    let mut acc = 0.0f64;
    for i in 1..=k {
        acc += ((n - k + i) as f64).log2() - (i as f64).log2();
    }
    acc
}

/// Percentile bootstrap CI on the median of `sorted` (ascending).
/// Replicates are drawn in mirror pairs — for every drawn index multiset
/// `{i}` the mirrored multiset `{n-1-i}` is also evaluated — so negating
/// and reversing the input (what an A/B swap does to sorted log-ratios)
/// maps the replicate set to its elementwise negation, and the interval
/// endpoints swap and negate *exactly*. Resampling is seeded by
/// [`BOOTSTRAP_SEED`] alone: deterministic, data-independent.
fn bootstrap_ci(sorted: &[f64]) -> (f64, f64) {
    let n = sorted.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mut rng = StdRng::seed_from_u64(BOOTSTRAP_SEED);
    let mut medians = Vec::with_capacity(BOOTSTRAP_REPLICATES);
    let mut draw = Vec::with_capacity(n);
    let mut mirror = Vec::with_capacity(n);
    for _ in 0..BOOTSTRAP_REPLICATES / 2 {
        draw.clear();
        mirror.clear();
        for _ in 0..n {
            let i = rng.gen_range(0..n);
            draw.push(sorted[i]);
            mirror.push(sorted[n - 1 - i]);
        }
        draw.sort_by(f64::total_cmp);
        mirror.sort_by(f64::total_cmp);
        medians.push(median_sorted(&draw));
        medians.push(median_sorted(&mirror));
    }
    medians.sort_by(f64::total_cmp);
    let b = medians.len();
    let cut = ((b as f64) * BOOTSTRAP_TAIL) as usize;
    (medians[cut], medians[b - 1 - cut])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_are_no_change() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = paired_stats(&a, &a);
        assert_eq!(s.pairs, 5);
        assert_eq!(s.skipped, 0);
        assert_eq!(s.wins_b_slower, 0);
        assert_eq!(s.wins_b_faster, 0);
        assert_eq!(s.median_log_ratio, 0.0);
        assert_eq!(s.sign_p, 1.0);
        assert_eq!((s.ci_lo, s.ci_hi), (0.0, 0.0));
        assert_eq!(s.verdict(0.0), Verdict::NoChange);
    }

    #[test]
    fn consistent_slowdown_is_a_regression() {
        let a: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x * 1.25).collect();
        let s = paired_stats(&a, &b);
        assert_eq!(s.wins_b_slower, 12);
        assert!(s.sign_p < ALPHA, "p = {}", s.sign_p);
        assert!(s.ci_lo > 0.0);
        assert_eq!(s.verdict(5.0), Verdict::Regression);
        assert!((s.delta_pct() - 25.0).abs() < 1e-9);
        // ...but not at a threshold above the effect size
        assert_eq!(s.verdict(30.0), Verdict::NoChange);
    }

    #[test]
    fn swap_symmetry_is_exact() {
        let a = [1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0];
        let b = [1.4, 2.5, 3.9, 6.6, 9.9, 17.0, 28.0, 45.0];
        let ab = paired_stats(&a, &b);
        let ba = paired_stats(&b, &a);
        assert_eq!(ab.median_log_ratio, -ba.median_log_ratio);
        assert_eq!(ab.sign_p, ba.sign_p);
        assert_eq!(ab.ci_lo, -ba.ci_hi);
        assert_eq!(ab.ci_hi, -ba.ci_lo);
        assert_eq!(ab.verdict(5.0), Verdict::Regression);
        assert_eq!(ba.verdict(5.0), Verdict::Improvement);
    }

    #[test]
    fn non_finite_and_non_positive_pairs_are_skipped() {
        let a = [1.0, f64::NAN, 2.0, 0.0, 3.0];
        let b = [1.1, 2.0, f64::INFINITY, 1.0, -3.0];
        let s = paired_stats(&a, &b);
        assert_eq!(s.pairs, 1);
        assert_eq!(s.skipped, 4);
    }

    #[test]
    fn sign_test_reference_values() {
        // 5 wins / 0 losses: p = 2 · (1/2)^5 = 0.0625
        assert!((sign_test_p(5, 0) - 0.0625).abs() < 1e-12);
        // 6/0: p = 2/64 = 0.03125 — the smallest n that can reject
        assert!((sign_test_p(6, 0) - 0.03125).abs() < 1e-12);
        // symmetric and capped
        assert_eq!(sign_test_p(3, 3), 1.0);
        assert_eq!(sign_test_p(2, 7), sign_test_p(7, 2));
        // large n does not overflow
        let p = sign_test_p(400, 100);
        assert!(p > 0.0 && p < 1e-10, "p = {p}");
    }

    #[test]
    fn mismatched_lengths_panic() {
        let r = std::panic::catch_unwind(|| paired_stats(&[1.0], &[1.0, 2.0]));
        assert!(r.is_err());
    }

    #[test]
    fn bootstrap_is_deterministic() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.2, 2.1, 3.5, 4.4, 5.9, 6.6];
        assert_eq!(paired_stats(&a, &b), paired_stats(&a, &b));
    }
}
