//! CSV schemas shared by the experiment binaries.
//!
//! `fig5` writes a grid that `fig6` reads back, possibly across repo
//! generations (a cached `results/fig5.csv` from an older checkout).
//! Keeping every known header generation here — and snapshotting the
//! current ones in `tests/golden/` — turns silent schema drift into a
//! test failure instead of a fig6 that quietly drops columns.

/// Current `results/fig5.csv` header (generation 3: adds `threads`).
pub const FIG5_HEADER: &[&str] = &[
    "dataset",
    "algo",
    "ordering",
    "seconds",
    "checksum",
    "iterations",
    "edges_relaxed",
    "frontier_peak",
    "threads",
];

/// Generation 2: engine counters appended, before `threads` existed.
pub const FIG5_HEADER_V2: &[&str] = &[
    "dataset",
    "algo",
    "ordering",
    "seconds",
    "checksum",
    "iterations",
    "edges_relaxed",
    "frontier_peak",
];

/// Generation 1: the historical five columns.
pub const FIG5_HEADER_V1: &[&str] = &["dataset", "algo", "ordering", "seconds", "checksum"];

/// Every fig5 header generation a reader must accept, newest first.
pub const FIG5_KNOWN_HEADERS: [&[&str]; 3] = [FIG5_HEADER, FIG5_HEADER_V2, FIG5_HEADER_V1];

/// Current `results/table2.csv` header (generation 2: adds `threads`,
/// the thread count used by the BFS layout-sanity probe).
pub const TABLE2_HEADER: &[&str] = &[
    "ordering",
    "dataset",
    "seconds",
    "bfs_iterations",
    "bfs_edges_relaxed",
    "threads",
];

/// Generation 1 table2 header, before `threads` existed.
pub const TABLE2_HEADER_V1: &[&str] = &[
    "ordering",
    "dataset",
    "seconds",
    "bfs_iterations",
    "bfs_edges_relaxed",
];

/// The committed regression-gate baseline `gorder-bench gate` compares
/// against by default (repo root; regenerate with `--update`).
pub const GATE_BASELINE: &str = "BENCH_gate.json";

/// Where `gorder-bench gate` writes the current run's report.
pub const GATE_OUT: &str = "results/BENCH_gate.json";

/// Record kinds a `BENCH_gate.json` may contain, in file order: one
/// manifest line, then `gate` cells, then `order` constructions.
pub const GATE_RECORD_KINDS: &[&str] = &["manifest", "gate", "order"];

/// Columns of the regression-gate delta table printed on failure.
pub const GATE_DELTA_HEADER: &[&str] = &[
    "dataset", "ordering", "algo", "metric", "baseline", "current",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_are_prefix_compatible() {
        // Readers index columns positionally, so every newer generation
        // must extend the older one — never reorder or rename.
        assert_eq!(&FIG5_HEADER[..FIG5_HEADER_V2.len()], FIG5_HEADER_V2);
        assert_eq!(&FIG5_HEADER_V2[..FIG5_HEADER_V1.len()], FIG5_HEADER_V1);
        assert_eq!(&TABLE2_HEADER[..TABLE2_HEADER_V1.len()], TABLE2_HEADER_V1);
    }

    #[test]
    fn known_headers_lists_newest_first() {
        assert_eq!(FIG5_KNOWN_HEADERS[0], FIG5_HEADER);
        assert_eq!(FIG5_KNOWN_HEADERS.len(), 3);
    }
}
