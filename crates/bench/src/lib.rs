//! # gorder-bench — experiment harness
//!
//! One binary per table/figure of the evaluation (see DESIGN.md §5):
//!
//! | binary | reproduces | original-paper counterpart |
//! |---|---|---|
//! | `table1` | dataset features | Table 1 |
//! | `table2` | ordering computation time | Table 9 |
//! | `table3` | PR cache statistics per ordering | Tables 3–4 |
//! | `fig1` | CPU vs cache-stall split, Original vs Gorder | Figure 1 |
//! | `fig3` | simulated-annealing (S, k) sweep | (replication-only) |
//! | `fig4` | PR runtime vs Gorder window size | Figure 8 |
//! | `fig5` | relative runtimes, all orderings × algorithms × datasets | Figure 9 |
//! | `fig6` | ordering rank histogram | (aggregation of Figure 9) |
//! | `gate` | CI regression gate vs a committed baseline | (replication-only) |
//!
//! Every binary accepts `--scale <f>` (dataset size multiplier, default
//! 0.25), `--quick` (tiny sizes + fewer repetitions, for smoke runs) and
//! `--seed <n>`. `fig5` writes its grid to `results/fig5.csv` so `fig6`
//! can aggregate without re-running.

pub mod args;
pub mod experiment;
pub mod fmt;
pub mod gate;
pub mod ranking;
pub mod resume;
pub mod robust;
pub mod schema;
pub mod stats;
pub mod timing;
pub mod tracefile;

pub use args::HarnessArgs;
pub use experiment::{run_grid, CellResult, GridConfig};
pub use gate::{
    compare, parse_report, render_report, run_gate, GateComparison, GateConfig, GateDelta,
    GateMode, GateReport,
};
pub use ranking::{rank_counts, Ranking};
pub use resume::{RecoveredCell, ResumeState};
pub use robust::{
    abandoned_count, guarded_ordering, guarded_ordering_run, reap_abandoned, resolve_ordering,
    run_grid_robust, run_grid_robust_full, run_grid_robust_observed, run_grid_robust_resumed,
    run_grid_robust_with, run_grid_robust_with_observed, run_guarded, CellStatus, OrderHooks,
    RobustCell, SweepReport,
};
pub use stats::{paired_stats, sign_test_p, PairedStats, Verdict};
pub use tracefile::{expected_config_hash, SweepTrace};

/// Validates an `--orderings` filter against the extended registry
/// before any work runs, returning the offending name and a "did you
/// mean" suggestion when one is close enough. `None`/empty filters are
/// trivially valid.
pub fn check_ordering_filter(names: &Option<Vec<String>>) -> Result<(), String> {
    let Some(names) = names else { return Ok(()) };
    for name in names {
        if gorder_orders::by_name_extended(name, 0).is_none() {
            let hint = gorder_orders::suggest_name(name)
                .map(|s| format!(" (did you mean {s:?}?)"))
                .unwrap_or_default();
            return Err(format!(
                "--orderings: unknown ordering {name:?}{hint}; \
                 run `gorder-cli list-orderings` for the full set"
            ));
        }
    }
    Ok(())
}
