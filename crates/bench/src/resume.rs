//! Crash-safe sweep resume: rebuilding finished work from a prior
//! `--trace-out` JSONL.
//!
//! The streaming trace is the sweep's write-ahead log: the manifest
//! line pins the configuration (via its config hash), every finished
//! cell appends a `cell` line, and every finished CSV row appends a
//! `row` line — each flushed before the sweep moves on. [`ResumeState`]
//! parses such a file back, tolerating the one torn final line a
//! SIGKILL mid-write leaves behind, and hands the experiment binaries
//! two lookups:
//!
//! * [`ResumeState::completed_cell`] — the timing/checksum of a cell
//!   whose `cell` line made it to disk with status `completed`;
//! * [`ResumeState::row`] — the verbatim CSV cells of a finished row.
//!
//! A binary recovers a cell only when **both** are present (the cell
//! line proves the work finished; the row line carries the exact bytes
//! to re-emit), so a crash between the two lines safely re-runs the
//! cell. Recovery is refused outright when the trace's `config_hash`
//! differs from the current invocation's — resuming under a different
//! grid would splice rows from a different experiment.

use gorder_obs::json::{parse_object, parse_string, parse_string_array};
use gorder_obs::SCHEMA_VERSION;
use std::collections::BTreeMap;

/// A completed cell as recovered from a prior trace's `cell` line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveredCell {
    /// The measured (or modelled) seconds the cell recorded.
    pub seconds: f64,
    /// The cell's result checksum.
    pub checksum: u64,
}

/// Everything recoverable from one prior trace file.
#[derive(Debug, Clone, Default)]
pub struct ResumeState {
    /// Completed cells, keyed `"dataset|ordering|algo"`. Later lines
    /// overwrite earlier ones, so a trace that is itself the product of
    /// a resume (which re-emits recovered cells) never double-counts.
    cells: BTreeMap<String, RecoveredCell>,
    /// Verbatim CSV rows, keyed `(table, row key)`.
    rows: BTreeMap<(String, String), Vec<String>>,
    /// Whether the trace ended in a torn final line (crash signature).
    pub truncated_final_line: bool,
}

impl ResumeState {
    /// Parses a prior trace. `expected_hash` is the config hash the
    /// *current* invocation would stamp into its own manifest; a
    /// mismatch rejects the whole file. A torn final line (invalid,
    /// unterminated, last) is tolerated; any other malformed line is an
    /// error naming its line number and byte offset.
    pub fn parse(text: &str, expected_hash: u64) -> Result<ResumeState, String> {
        let mut state = ResumeState::default();
        let mut offset = 0usize;
        let mut lines = 0usize;
        for (idx, raw) in text.split_inclusive('\n').enumerate() {
            let n = idx + 1;
            let line = raw.strip_suffix('\n').unwrap_or(raw);
            // Same tolerance rule as the lenient validator: complete
            // lines are flushed newline-last, so only an unterminated
            // final line past the manifest can be a crash artifact.
            let torn_tolerable = n >= 2 && offset + raw.len() == text.len() && raw == line;
            match record_line(&mut state, line, n == 1, expected_hash) {
                Ok(()) => lines = n,
                Err(_) if torn_tolerable => {
                    state.truncated_final_line = true;
                    break;
                }
                Err(e) => return Err(format!("line {n} (byte offset {offset}): {e}")),
            }
            offset += raw.len();
        }
        if lines == 0 {
            return Err("empty trace: expected at least a manifest line".to_string());
        }
        Ok(state)
    }

    /// [`ResumeState::parse`] over a file, prefixing errors with `path`.
    pub fn load(path: &str, expected_hash: u64) -> Result<ResumeState, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        ResumeState::parse(&text, expected_hash).map_err(|e| format!("{path}: {e}"))
    }

    /// The recovered timing/checksum of a cell whose `cell` line made it
    /// to disk with status `completed`. Degraded, timed-out, and failed
    /// cells are never recovered — a resumed sweep re-runs them.
    pub fn completed_cell(
        &self,
        dataset: &str,
        ordering: &str,
        algo: &str,
    ) -> Option<RecoveredCell> {
        self.cells.get(&cell_key(dataset, ordering, algo)).copied()
    }

    /// The verbatim CSV cells of a finished `table` row.
    pub fn row(&self, table: &str, key: &str) -> Option<&[String]> {
        self.rows
            .get(&(table.to_string(), key.to_string()))
            .map(Vec::as_slice)
    }

    /// Completed cells recovered.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Rows recovered.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

fn cell_key(dataset: &str, ordering: &str, algo: &str) -> String {
    format!("{dataset}|{ordering}|{algo}")
}

/// Parses one line into `state`. Only `manifest`, `cell`, and `row`
/// records carry resume information; every other kind just has to parse.
fn record_line(
    state: &mut ResumeState,
    line: &str,
    first: bool,
    expected_hash: u64,
) -> Result<(), String> {
    let obj = parse_object(line)?;
    let kind = obj.get("kind").ok_or("missing \"kind\"")?.trim_matches('"');
    if first {
        if kind != "manifest" {
            return Err(format!("first line must be a manifest, got {kind:?}"));
        }
        let ver = obj
            .get("schema_version")
            .ok_or("manifest missing schema_version")?;
        if ver != &SCHEMA_VERSION.to_string() {
            return Err(format!(
                "schema_version {ver} != supported {SCHEMA_VERSION}"
            ));
        }
        let hash: u64 = obj
            .get("config_hash")
            .ok_or("manifest missing config_hash")?
            .parse()
            .map_err(|e| format!("bad config_hash: {e}"))?;
        if hash != expected_hash {
            return Err(format!(
                "config_hash mismatch: trace has {hash}, current invocation is {expected_hash} \
                 — refusing to resume a differently-configured run"
            ));
        }
        return Ok(());
    }
    match kind {
        "cell" => {
            let field = |k: &str| obj.get(k).ok_or(format!("cell missing {k:?}"));
            if parse_string(field("status")?)? != "completed" {
                return Ok(());
            }
            let key = cell_key(
                &parse_string(field("dataset")?)?,
                &parse_string(field("ordering")?)?,
                &parse_string(field("algo")?)?,
            );
            let seconds: f64 = field("seconds")?
                .parse()
                .map_err(|e| format!("bad cell seconds: {e}"))?;
            let checksum: u64 = field("checksum")?
                .parse()
                .map_err(|e| format!("bad cell checksum: {e}"))?;
            state.cells.insert(key, RecoveredCell { seconds, checksum });
        }
        "row" => {
            let field = |k: &str| obj.get(k).ok_or(format!("row missing {k:?}"));
            let table = parse_string(field("table")?)?;
            let key = parse_string(field("key")?)?;
            let cells = parse_string_array(field("cells")?)?;
            state.rows.insert((table, key), cells);
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gorder_obs::trace::config_hash;
    use gorder_obs::{CellEvent, RowEvent, RunManifest, TraceEvent};

    const CFG: &str = "tool=test,scale=0.1";

    fn manifest_line() -> String {
        RunManifest::new("test", CFG).to_json_line()
    }

    fn cell_line(dataset: &str, ordering: &str, algo: &str, status: &str, secs: f64) -> String {
        TraceEvent::Cell(CellEvent {
            dataset: dataset.into(),
            ordering: ordering.into(),
            algo: algo.into(),
            status: status.into(),
            seconds: secs,
            checksum: 42,
        })
        .to_json_line()
    }

    fn row_line(table: &str, key: &str, cells: &[&str]) -> String {
        TraceEvent::Row(RowEvent {
            table: table.into(),
            key: key.into(),
            cells: cells.iter().map(|s| s.to_string()).collect(),
        })
        .to_json_line()
    }

    #[test]
    fn recovers_completed_cells_and_rows_only() {
        let text = format!(
            "{}\n{}\n{}\n{}\n{}\n",
            manifest_line(),
            cell_line("d1", "Gorder", "PR", "completed", 0.5),
            cell_line("d1", "Gorder", "BFS", "timed-out", f64::NAN),
            cell_line("d1", "MLOGGAPA", "PR", "degraded", 0.9),
            row_line("fig5.csv", "d1|PR|Gorder", &["d1", "PR", "0.500000"]),
        );
        let s = ResumeState::parse(&text, config_hash(CFG)).unwrap();
        assert!(!s.truncated_final_line);
        assert_eq!(s.cell_count(), 1);
        assert_eq!(s.row_count(), 1);
        let c = s.completed_cell("d1", "Gorder", "PR").unwrap();
        assert_eq!(c.seconds, 0.5);
        assert_eq!(c.checksum, 42);
        assert_eq!(s.completed_cell("d1", "Gorder", "BFS"), None);
        assert_eq!(s.completed_cell("d1", "MLOGGAPA", "PR"), None);
        assert_eq!(
            s.row("fig5.csv", "d1|PR|Gorder").unwrap(),
            &["d1".to_string(), "PR".into(), "0.500000".into()]
        );
        assert_eq!(s.row("fig5.csv", "nope"), None);
    }

    #[test]
    fn torn_final_line_is_tolerated_and_reported() {
        let whole = format!(
            "{}\n{}\n",
            manifest_line(),
            cell_line("d", "Gorder", "PR", "completed", 1.0)
        );
        let torn = format!("{whole}{{\"kind\":\"ce");
        let s = ResumeState::parse(&torn, config_hash(CFG)).unwrap();
        assert!(s.truncated_final_line);
        assert_eq!(s.cell_count(), 1, "everything before the tear survives");
        // a malformed line mid-file is a hard error, not a truncation
        let mid = format!("{}\n{{\"kind\":\"ce\n{whole}", manifest_line());
        let err = ResumeState::parse(&mid, config_hash(CFG)).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn config_hash_mismatch_is_refused() {
        let text = format!("{}\n", manifest_line());
        let err = ResumeState::parse(&text, config_hash("something-else")).unwrap_err();
        assert!(err.contains("config_hash mismatch"), "{err}");
        assert!(ResumeState::parse(&text, config_hash(CFG)).is_ok());
    }

    #[test]
    fn torn_manifest_and_empty_traces_are_refused() {
        assert!(ResumeState::parse("", 0).is_err());
        let m = manifest_line();
        let prefix = &m[..m.len() / 2];
        assert!(ResumeState::parse(prefix, config_hash(CFG)).is_err());
        // wrong first kind
        let text = format!("{}\n", cell_line("d", "o", "a", "completed", 1.0));
        assert!(ResumeState::parse(&text, config_hash(CFG)).is_err());
    }

    #[test]
    fn later_lines_overwrite_earlier_ones() {
        let text = format!(
            "{}\n{}\n{}\n{}\n{}\n",
            manifest_line(),
            cell_line("d", "Gorder", "PR", "completed", 1.0),
            cell_line("d", "Gorder", "PR", "completed", 2.0),
            row_line("t.csv", "k", &["old"]),
            row_line("t.csv", "k", &["new"]),
        );
        let s = ResumeState::parse(&text, config_hash(CFG)).unwrap();
        assert_eq!(s.cell_count(), 1, "re-emitted cells never double-count");
        assert_eq!(s.completed_cell("d", "Gorder", "PR").unwrap().seconds, 2.0);
        assert_eq!(s.row("t.csv", "k").unwrap(), &["new".to_string()]);
    }

    #[test]
    fn load_reads_from_disk_and_names_the_path() {
        let path = std::env::temp_dir().join(format!("gorder-resume-{}.jsonl", std::process::id()));
        std::fs::write(&path, format!("{}\n", manifest_line())).unwrap();
        let p = path.display().to_string();
        assert!(ResumeState::load(&p, config_hash(CFG)).is_ok());
        let err = ResumeState::load(&p, 0).unwrap_err();
        assert!(err.contains(&p), "{err}");
        std::fs::remove_file(&path).ok();
        let err = ResumeState::load("/nope/missing.jsonl", 0).unwrap_err();
        assert!(err.contains("missing.jsonl"), "{err}");
    }
}
