//! Fixed-width table rendering and CSV output for the experiment binaries.

use std::io::Write;
use std::path::Path;

/// A simple right-aligned text table with a left-aligned label column.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], out: &mut String| {
            for (i, cell) in row.iter().enumerate() {
                if i == 0 {
                    out.push_str(&format!("{:<w$}", cell, w = widths[0]));
                } else {
                    out.push_str(&format!("  {:>w$}", cell, w = widths[i]));
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Writes rows as CSV under `results/` (created on demand); returns the
/// path written.
///
/// The write is atomic: rows land in `results/.<name>.tmp`, are flushed
/// through to the device, and the temp file is renamed over the final
/// path. A crash mid-write therefore leaves either the previous complete
/// CSV or the new one — never a half-written artifact.
pub fn write_csv(
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let tmp = dir.join(format!(".{name}.tmp"));
    {
        let file = std::fs::File::create(&tmp)?;
        let mut f = std::io::BufWriter::new(file);
        writeln!(f, "{}", header.join(","))?;
        for row in rows {
            writeln!(f, "{}", row.join(","))?;
        }
        f.flush()?;
        f.get_ref().sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Reads a CSV produced by [`write_csv`]; returns (header, rows). No
/// quoting support — our values never contain commas.
pub fn read_csv(path: &Path) -> std::io::Result<(Vec<String>, Vec<Vec<String>>)> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .map(|l| l.split(',').map(str::to_string).collect())
        .unwrap_or_default();
    let rows = lines
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split(',').map(str::to_string).collect())
        .collect();
    Ok((header, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    // Serialises the tests that change the process-wide working directory.
    static CWD_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn csv_roundtrip() {
        let _guard = CWD_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("gorder_fmt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prev = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let rows = vec![vec!["x".to_string(), "1".to_string()]];
        let path = write_csv("t.csv", &["k", "v"], &rows).unwrap();
        let (h, r) = read_csv(&path).unwrap();
        std::env::set_current_dir(prev).unwrap();
        assert_eq!(h, vec!["k", "v"]);
        assert_eq!(r, rows);
    }

    #[test]
    fn write_csv_is_atomic_rename() {
        let _guard = CWD_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("gorder_fmt_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prev = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let res1 = write_csv("a.csv", &["k"], &[vec!["1".to_string()]]);
        let res2 = write_csv("a.csv", &["k"], &[vec!["2".to_string()]]);
        let leftover = Path::new("results/.a.csv.tmp").exists();
        let text = std::fs::read_to_string("results/a.csv");
        std::env::set_current_dir(prev).unwrap();
        res1.unwrap();
        res2.unwrap();
        assert!(!leftover, "temp file must be renamed away");
        assert_eq!(text.unwrap(), "k\n2\n", "second write replaced the first");
    }

    #[test]
    fn write_csv_creates_results_dir() {
        let _guard = CWD_LOCK.lock().unwrap();
        let dir = std::env::temp_dir().join("gorder_fmt_mkdir_test");
        std::fs::create_dir_all(&dir).unwrap();
        let _ = std::fs::remove_dir_all(dir.join("results"));
        let prev = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let res = write_csv("made.csv", &["a"], &[vec!["1".to_string()]]);
        let created = dir.join("results");
        std::env::set_current_dir(prev).unwrap();
        let path = res.unwrap();
        assert!(created.is_dir(), "results/ not created on demand");
        assert!(created.join("made.csv").is_file());
        assert_eq!(path, Path::new("results").join("made.csv"));
    }
}
