//! Dynamic-graph experiment (extension, DESIGN.md §8): the paper's
//! discussion flags that evolving networks would force constant, costly
//! Gorder recomputation. This binary measures the incremental
//! anchor-sorted-append maintainer from `gorder-core::incremental`
//! against the two baselines on a growing social graph:
//!
//! * **full** — recompute Gorder from scratch at every growth step
//!   (best quality, pays the full ordering cost each time);
//! * **incremental** — splice new nodes via anchors (tiny cost);
//! * **append** — keep the stale layout, new nodes at the end in id
//!   order (zero cost, decaying quality).
//!
//! Reported per step: cumulative ordering time and the layout's `F(π)`
//! relative to the fresh full recompute.

use gorder_bench::fmt::{write_csv, Table};
use gorder_bench::timing::{pretty_secs, time_once};
use gorder_bench::HarnessArgs;
use gorder_core::score::f_score_of;
use gorder_core::{Gorder, IncrementalGorder};
use gorder_graph::gen::{preferential_attachment, PrefAttachConfig};
use gorder_graph::{Graph, GraphBuilder, NodeId, Permutation};

fn prefix(full: &Graph, k: u32) -> Graph {
    let mut b = GraphBuilder::new(k);
    for (u, v) in full.edges().filter(|&(u, v)| u < k && v < k) {
        b.add_edge(u, v);
    }
    b.build()
}

fn main() {
    let args = HarnessArgs::parse();
    let n_final = ((20_000.0 * args.scale) as u32).max(1_000);
    let full_graph = preferential_attachment(PrefAttachConfig {
        n: n_final,
        out_degree: 8,
        reciprocity: 0.3,
        uniform_mix: 0.1,
        closure_prob: 0.4,
        recency_bias: 0.3,
        seed: args.seed,
    });
    let steps: Vec<u32> = (4..=10).map(|i| n_final / 10 * i).collect();
    println!(
        "Dynamic graphs: growing a social graph to n = {n_final} in {} steps\n",
        steps.len()
    );

    let w = 5;
    let gorder = Gorder::with_defaults();
    let base_graph = prefix(&full_graph, steps[0]);
    let (t0, base_perm) = time_once(|| gorder.compute(&base_graph));
    let mut incremental = IncrementalGorder::new(&base_perm);
    let mut append_placement: Vec<NodeId> = base_perm.placement();
    let mut cost_full = t0;
    let mut cost_incremental = t0;

    let mut t = Table::new([
        "n",
        "full time(cum)",
        "incr time(cum)",
        "F full",
        "F incr",
        "F append",
        "incr/full F",
    ]);
    let mut csv_rows = Vec::new();
    for &k in &steps[1..] {
        let g = prefix(&full_graph, k);
        // full recompute
        let (tf, full_perm) = time_once(|| gorder.compute(&g));
        cost_full += tf;
        // incremental
        let (ti, ()) = time_once(|| incremental.extend(&g));
        cost_incremental += ti;
        let incr_perm = incremental.permutation();
        // naive append
        append_placement.extend(append_placement.len() as u32..k);
        let append_perm =
            Permutation::from_placement(&append_placement).expect("prefix growth is append-only");

        let f_full = f_score_of(&g, &full_perm, w);
        let f_incr = f_score_of(&g, &incr_perm, w);
        let f_append = f_score_of(&g, &append_perm, w);
        t.row([
            k.to_string(),
            pretty_secs(cost_full),
            pretty_secs(cost_incremental),
            f_full.to_string(),
            f_incr.to_string(),
            f_append.to_string(),
            format!("{:.2}", f_incr as f64 / f_full as f64),
        ]);
        csv_rows.push(vec![
            k.to_string(),
            format!("{cost_full:.4}"),
            format!("{cost_incremental:.4}"),
            f_full.to_string(),
            f_incr.to_string(),
            f_append.to_string(),
        ]);
        eprintln!("[dynamic] n = {k} done");
    }
    t.print();
    println!("\n(expect: incremental time ≪ full time; F incr between F append and F full)");
    match write_csv(
        "dynamic.csv",
        &[
            "n",
            "full_time_cum",
            "incr_time_cum",
            "f_full",
            "f_incr",
            "f_append",
        ],
        &csv_rows,
    ) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
