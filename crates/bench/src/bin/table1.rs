//! Table 1 — dataset features.
//!
//! Prints the same columns as the replication's Table 1 (size, nodes,
//! edges, category) for the synthetic stand-ins, plus the skew/diameter
//! diagnostics that justify the substitution (DESIGN.md §4).

use gorder_bench::fmt::Table;
use gorder_bench::HarnessArgs;
use gorder_graph::stats::{approx_diameter, degree_gini, GraphStats};

fn main() {
    let args = HarnessArgs::parse();
    println!("Table 1: dataset features (scale = {})\n", args.scale);
    let mut t = Table::new([
        "Dataset", "Category", "Nodes", "Edges", "Mem(MB)", "MeanDeg", "MaxInDeg", "Gini", "~Diam",
    ]);
    let mut rows_csv = Vec::new();
    for d in gorder_graph::datasets::all() {
        let g = d.build(args.scale);
        let s = GraphStats::compute(&g);
        let gini = degree_gini(&g);
        let diam = approx_diameter(&g, 4, args.seed);
        t.row([
            d.name.to_string(),
            d.category.to_string(),
            s.n.to_string(),
            s.m.to_string(),
            format!("{:.1}", g.memory_bytes() as f64 / 1e6),
            format!("{:.1}", s.mean_degree),
            s.max_in_degree.to_string(),
            format!("{gini:.2}"),
            diam.to_string(),
        ]);
        rows_csv.push(vec![
            d.name.to_string(),
            d.category.to_string(),
            s.n.to_string(),
            s.m.to_string(),
            format!("{gini:.4}"),
            diam.to_string(),
        ]);
    }
    t.print();
    match gorder_bench::fmt::write_csv(
        "table1.csv",
        &["dataset", "category", "nodes", "edges", "gini", "diam"],
        &rows_csv,
    ) {
        Ok(p) => println!("\nwrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
