//! Figure 6 — rank histogram of ordering methods.
//!
//! Aggregates the Figure 5 grid: for each of the (algorithm × dataset)
//! series, orderings are ranked by runtime; the histogram shows how often
//! each ordering takes each rank. Reads `results/fig5.csv` if present
//! (run `fig5` first for a free ride), otherwise recomputes the grid.
//!
//! Shape to reproduce: Gorder first in roughly half the series and
//! near-first elsewhere; RCM and ChDFS its only real challengers; Random
//! last almost always, LDG just above it.

use gorder_algos::KernelStats;
use gorder_bench::fmt::{read_csv, Table};
use gorder_bench::schema::FIG5_KNOWN_HEADERS;
use gorder_bench::{rank_counts, run_grid, CellResult, GridConfig, HarnessArgs};
use std::path::Path;

fn main() {
    let args = HarnessArgs::parse();
    let cells = load_or_run(&args);
    println!("Figure 6: rank histogram over {} cells\n", cells.len());

    // (a) raw ranking, as in the replication's Figure 6a
    print_ranking("exact ranking (replication Fig 6a)", &cells, None);
    // (b) with the original paper's 1.5× visibility cap (Fig 6b)
    print_ranking(
        "capped at 1.5x Gorder (original-paper reading, Fig 6b)",
        &cells,
        Some(1.5),
    );
}

fn print_ranking(title: &str, cells: &[CellResult], tie: Option<f64>) {
    let r = rank_counts(cells, tie);
    println!("-- {title}: {} series --", r.series);
    if r.skipped_no_gorder > 0 {
        eprintln!(
            "[fig6] warning: {} series skipped (no Gorder cell to anchor the cap)",
            r.skipped_no_gorder
        );
    }
    let k = r.orderings.len();
    let mut header = vec!["Ordering".to_string()];
    header.extend((1..=k).map(|i| format!("#{i}")));
    header.push("mean".into());
    let mut t = Table::new(header);
    // sort by mean rank, best first — mirrors the figure's left-to-right
    let mut idx: Vec<usize> = (0..k).collect();
    // total_cmp: mean_rank is NaN for an ordering with no counted
    // series, which must sort (last), not panic.
    idx.sort_by(|&a, &b| r.mean_rank(a).total_cmp(&r.mean_rank(b)));
    for &o in &idx {
        let mut row = vec![r.orderings[o].clone()];
        row.extend(r.counts[o].iter().map(|c| c.to_string()));
        row.push(format!("{:.2}", r.mean_rank(o) + 1.0));
        t.row(row);
    }
    t.print();
    println!();
}

fn load_or_run(args: &HarnessArgs) -> Vec<CellResult> {
    // --extended aggregates the 14-ordering × 13-algorithm grid instead
    let path = if args.has_flag("--extended") {
        Path::new("results/fig5_extended.csv")
    } else {
        Path::new("results/fig5.csv")
    };
    // Accept every known CSV generation (see `gorder_bench::schema`):
    // five historical columns, eight with engine counters, nine with the
    // `threads` column. Generations are prefix-compatible, so positional
    // reads below work for all of them.
    if path.exists() {
        if let Ok((header, rows)) = read_csv(path) {
            if FIG5_KNOWN_HEADERS.iter().any(|k| header == *k) {
                eprintln!("[fig6] using cached {}", path.display());
                return rows
                    .into_iter()
                    .filter_map(|r| {
                        let stats = KernelStats {
                            iterations: r.get(5).and_then(|s| s.parse().ok()).unwrap_or(0),
                            edges_relaxed: r.get(6).and_then(|s| s.parse().ok()).unwrap_or(0),
                            frontier_peak: r.get(7).and_then(|s| s.parse().ok()).unwrap_or(0),
                            threads_used: r.get(8).and_then(|s| s.parse().ok()).unwrap_or(0),
                            ..KernelStats::default()
                        };
                        Some(CellResult {
                            dataset: r.first()?.clone(),
                            algo: r.get(1)?.clone(),
                            ordering: r.get(2)?.clone(),
                            seconds: r.get(3)?.parse().ok()?,
                            checksum: r.get(4)?.parse().ok()?,
                            stats,
                        })
                    })
                    .collect();
            }
        }
    }
    eprintln!("[fig6] no cached grid; running (use fig5 to cache)");
    run_grid(&GridConfig::new(
        args.scale, args.reps, args.seed, args.quick,
    ))
}
