//! Table 3 — cache statistics for PageRank per ordering (the paper's
//! Tables 3–4), on the flickr and sdarc datasets.
//!
//! Replays PR through the cache simulator under all ten orderings and
//! prints L1-ref, L1-mr, L3-ref, L3-r and Cache-mr, exactly the
//! replication's columns. Shape to reproduce: similar L1-ref everywhere
//! (same work); Gorder and RCM the lowest miss rates, ChDFS close;
//! Random and LDG the highest; MinLA/MinLogA/Original in between.

use gorder_bench::fmt::{write_csv, Table};
use gorder_bench::HarnessArgs;
use gorder_cachesim::trace::{pagerank, TraceCtx};
use gorder_cachesim::{CacheHierarchy, HierarchyConfig, Tracer};

fn main() {
    let args = HarnessArgs::parse();
    let hconfig = if args.has_flag("--xeon") {
        HierarchyConfig::xeon_e5()
    } else {
        HierarchyConfig::scaled_down()
    };
    let ctx = TraceCtx {
        pr_iterations: if args.quick { 3 } else { 10 },
        seed: args.seed,
        ..Default::default()
    };
    let mut csv_rows = Vec::new();
    for (label, d) in [
        ("3a (flickr)", gorder_graph::datasets::flickr_like()),
        ("3b (sdarc)", gorder_graph::datasets::sdarc_like()),
    ] {
        let g = d.build(args.scale);
        println!(
            "Table {label}: PageRank cache statistics (n = {}, m = {})\n",
            g.n(),
            g.m()
        );
        let mut t = Table::new([
            "Order",
            "L1-ref(1e6)",
            "L1-mr",
            "L3-ref(1e6)",
            "L3-r",
            "Cache-mr",
        ]);
        for o in gorder_orders::all(args.seed) {
            let perm = o.compute(&g);
            let rg = g.relabel(&perm);
            let mut tracer = Tracer::new(CacheHierarchy::new(&hconfig));
            pagerank(&rg, &mut tracer, &ctx);
            let s = tracer.stats();
            t.row([
                o.name().to_string(),
                format!("{:.1}", s.l1_refs as f64 / 1e6),
                format!("{:.1}%", s.l1_miss_rate * 100.0),
                format!("{:.2}", s.llc_refs as f64 / 1e6),
                format!("{:.1}%", s.llc_ratio * 100.0),
                format!("{:.1}%", s.cache_miss_rate * 100.0),
            ]);
            csv_rows.push(vec![
                d.name.to_string(),
                o.name().to_string(),
                s.l1_refs.to_string(),
                format!("{:.5}", s.l1_miss_rate),
                s.llc_refs.to_string(),
                format!("{:.5}", s.llc_ratio),
                format!("{:.5}", s.cache_miss_rate),
            ]);
            eprintln!(
                "[table3] {} on {}: L1-mr {:.1}%",
                o.name(),
                d.name,
                s.l1_miss_rate * 100.0
            );
        }
        t.print();
        println!();
    }
    match write_csv(
        "table3.csv",
        &[
            "dataset",
            "ordering",
            "l1_refs",
            "l1_mr",
            "llc_refs",
            "llc_ratio",
            "cache_mr",
        ],
        &csv_rows,
    ) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
