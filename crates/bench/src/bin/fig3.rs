//! Figure 3 — tuning simulated annealing (replication-only experiment).
//!
//! Sweeps the annealer's step count `S` (from `n` to `m·log n`, log-spaced)
//! and standard energy `k` (from `1/(mn)` to `mn`, log-spaced, plus the
//! `k = 0` local-search row) on the epinion dataset, reporting the final
//! MinLA energy per cell. The replication's findings to reproduce:
//! (a) more steps → lower energy; (b) huge `k` accepts everything →
//! random-arrangement energy; (c) every small `k` behaves like local
//! search, which nothing beats.

use gorder_bench::fmt::{write_csv, Table};
use gorder_bench::HarnessArgs;
use gorder_orders::{Annealing, EnergyModel};

fn main() {
    let args = HarnessArgs::parse();
    let g = gorder_graph::datasets::epinion_like().build(args.scale);
    let n = f64::from(g.n());
    let m = g.m() as f64;
    println!(
        "Figure 3: simulated-annealing sweep on epinion (n = {}, m = {})\n",
        g.n(),
        g.m()
    );

    let steps_grid: Vec<u64> = {
        let lo = n;
        let hi = m * n.ln();
        let points = if args.quick { 3 } else { 6 };
        (0..points)
            .map(|i| (lo * (hi / lo).powf(i as f64 / (points - 1) as f64)) as u64)
            .collect()
    };
    let k_grid: Vec<f64> = {
        let lo = 1.0 / (m * n);
        let hi = m * n;
        let points = if args.quick { 4 } else { 8 };
        let mut ks = vec![0.0]; // local search
        ks.extend((0..points).map(|i| lo * (hi / lo).powf(f64::from(i) / f64::from(points - 1))));
        ks
    };

    let mut header = vec!["k \\ S".to_string()];
    header.extend(steps_grid.iter().map(|s| s.to_string()));
    let mut t = Table::new(header);
    let mut csv_rows = Vec::new();
    for &k in &k_grid {
        let mut row = vec![if k == 0.0 {
            "0 (local)".into()
        } else {
            format!("{k:.2e}")
        }];
        for &s in &steps_grid {
            let annealer = Annealing::with_params(EnergyModel::Linear, s, k, args.seed);
            let (_, energy) = annealer.compute_with_energy(&g);
            row.push(format!("{energy:.3e}"));
            csv_rows.push(vec![format!("{k:e}"), s.to_string(), format!("{energy}")]);
        }
        t.row(row);
        eprintln!("[fig3] k = {k:.2e} done");
    }
    t.print();
    println!("\n(lower is better; expect: energy falls with S, explodes for huge k,");
    println!(" and every small-k row matches the local-search row)");
    match write_csv("fig3.csv", &["k", "steps", "energy"], &csv_rows) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
