//! Figure 5 — the headline result (the paper's Figure 9): runtime of every
//! ordering relative to Gorder, for all nine algorithms on all datasets.
//!
//! Default output groups by dataset (Figure 5); pass `--by-ordering` for
//! the S1 supplementary grouping. The grid is also written to
//! `results/fig5.csv`, which `fig6` consumes.
//!
//! Times are **modelled** by default (cache simulator + stall model),
//! because the paper's runtime differences are cache effects and only
//! appear on hardware whose LLC is small relative to the graph — which a
//! laptop-scale reproduction cannot guarantee (this project's dev host
//! has a 260 MiB L3). `--wall` switches to raw wall-clock timing.
//!
//! Shapes to reproduce: Gorder best or near-best everywhere; RCM best on
//! BFS/SP/Diam; ChDFS best on DFS; Random worst; LDG barely better than
//! Random; Original beats MinLA/MinLogA.

use gorder_bench::experiment::run_grid_sim;
use gorder_bench::fmt::{write_csv, Table};
use gorder_bench::schema::FIG5_HEADER;
use gorder_bench::timing::pretty_secs;
use gorder_bench::{
    check_ordering_filter, expected_config_hash, run_grid, run_grid_robust_full, CellResult,
    CellStatus, GridConfig, HarnessArgs, OrderHooks, ResumeState, RobustCell, SweepTrace,
};
use gorder_obs::OrderEvent;
use gorder_orders::OrderCache;
use std::cell::RefCell;

fn main() {
    let args = HarnessArgs::parse();
    // --faults arms the deterministic fault-injection layer (same
    // grammar as GORDER_FAULTS) — crash-safety tests only.
    if let Some(spec) = &args.faults {
        if let Err(e) = gorder_obs::faults::arm_from_spec(spec) {
            eprintln!("error: --faults {e}");
            std::process::exit(2);
        }
    }
    let mut cfg = GridConfig::new(args.scale, args.reps, args.seed, args.quick);
    // --extended adds HubSort/HubCluster/DBG/Bisect and WCC/Tri/LP/BC
    cfg.extended = args.has_flag("--extended");
    // --threads N parallelises the engine-backed kernels in wall-clock
    // mode; simulated cells always trace serially (and report threads 1).
    cfg.threads = args.threads;
    // --datasets/--orderings/--algos narrow the grid (and are part of
    // the manifest's config hash, so a resumed run must repeat them).
    if let Some(names) = &args.datasets {
        cfg.datasets = names
            .iter()
            .map(|n| {
                gorder_graph::datasets::by_name(n).unwrap_or_else(|| {
                    eprintln!("error: --datasets: unknown dataset {n:?}");
                    std::process::exit(2);
                })
            })
            .collect();
    }
    // Unknown ordering names fail before any graph is built, with a
    // typo suggestion when one is close.
    if let Err(e) = check_ordering_filter(&args.orderings) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    cfg.orderings = args.orderings.clone();
    cfg.algos = args.algos.clone();
    // Default: modelled time via the cache simulator (reproduces the
    // paper's cache-bound regime regardless of host hardware). Pass
    // --wall for raw wall-clock — meaningful only when the datasets
    // exceed the machine's real LLC. With `--cell-timeout <secs>`, every
    // ordering and cell runs fault-isolated: panicking or runaway cells
    // are skipped (reported at the end), the sweep always finishes.
    let wall = args.has_flag("--wall");
    let mode_note = if wall {
        "(mode: wall-clock)".to_string()
    } else {
        "(mode: simulated — stall-model cycles at 4 GHz; pass --wall for wall-clock)".to_string()
    };
    println!("{mode_note}");
    let csv_name = if cfg.extended {
        "fig5_extended.csv"
    } else {
        "fig5.csv"
    };
    // Parse the prior trace *before* SweepTrace::open truncates the
    // `--trace-out` target — `--resume X --trace-out X` is the natural
    // invocation after a crash.
    let resume = args.resume.as_ref().map(|path| {
        match ResumeState::load(path, expected_config_hash("fig5", &args)) {
            Ok(s) => {
                eprintln!(
                    "[fig5] resuming from {path}: {} completed cells, {} rows{}",
                    s.cell_count(),
                    s.row_count(),
                    if s.truncated_final_line {
                        " (trace ends in a torn line — crash artifact, tolerated)"
                    } else {
                        ""
                    }
                );
                s
            }
            Err(e) => {
                eprintln!("error: --resume {e}");
                std::process::exit(2);
            }
        }
    });
    // --trace-out streams one JSONL line per finished cell plus one
    // `row` line per finished CSV row (the run manifest up front), so a
    // sweep interrupted partway still leaves a reconstructable record
    // next to the CSV — the write-ahead log `--resume` replays.
    // RefCell: the robust path feeds the trace from two closures at once
    // (the cell observer and the order-event hook).
    let trace = RefCell::new(SweepTrace::open("fig5", &args));
    // --order-cache DIR reuses permutations across runs: content-addressed
    // by graph digest + ordering identity, so a warm second run computes
    // zero orderings and reproduces the CSV byte-identically.
    let cache = args.order_cache.as_ref().map(|dir| {
        OrderCache::new(std::path::Path::new(dir)).unwrap_or_else(|e| {
            eprintln!("error: --order-cache {dir}: {e}");
            std::process::exit(2)
        })
    });
    let mut csv_rows: Vec<Vec<String>> = Vec::new();
    let cells = if args.cell_timeout.is_some() || resume.is_some() || args.order_cache.is_some() {
        // A cell is recovered only when both its `cell` line and its
        // verbatim `row` line survived — a crash between the two lines
        // re-runs the cell rather than guessing at the missing half.
        let recovered = |dataset: &str, ordering: &str, algo: &str| -> Option<CellResult> {
            let s = resume.as_ref()?;
            let cell = s.completed_cell(dataset, ordering, algo)?;
            s.row(csv_name, &format!("{dataset}|{algo}|{ordering}"))?;
            Some(CellResult {
                dataset: dataset.to_string(),
                algo: algo.to_string(),
                ordering: ordering.to_string(),
                seconds: cell.seconds,
                checksum: cell.checksum,
                stats: Default::default(),
            })
        };
        let mut on_cell = |c: &RobustCell| {
            let mut trace = trace.borrow_mut();
            trace.cell(c);
            if c.status.is_usable() {
                let r = &c.result;
                let key = format!("{}|{}|{}", r.dataset, r.algo, r.ordering);
                // prefer the recovered verbatim row (stats of recovered
                // cells are zeroed; the prior run's bytes are the truth)
                let row = resume
                    .as_ref()
                    .and_then(|s| s.row(csv_name, &key))
                    .map(<[String]>::to_vec)
                    .unwrap_or_else(|| fig5_row(r));
                trace.row(csv_name, &key, &row);
                csv_rows.push(row);
            }
        };
        let mut on_order = |e: &OrderEvent| trace.borrow_mut().order(e);
        let mut hooks = OrderHooks {
            cache: cache.as_ref(),
            seed: args.seed,
            on_order: &mut on_order,
        };
        let report = run_grid_robust_full(
            &cfg,
            args.cell_timeout_duration(),
            !wall,
            Some(&recovered),
            Some(&mut hooks),
            &mut on_cell,
        );
        report.print_skip_report();
        report.usable()
    } else {
        let plain = if wall {
            run_grid(&cfg)
        } else {
            run_grid_sim(&cfg)
        };
        // unguarded grids either complete every cell or die; anything
        // we got back is a completed cell
        let mut trace = trace.borrow_mut();
        for c in &plain {
            trace.cell(&RobustCell {
                result: c.clone(),
                status: CellStatus::Completed,
            });
            let row = fig5_row(c);
            trace.row(
                csv_name,
                &format!("{}|{}|{}", c.dataset, c.algo, c.ordering),
                &row,
            );
            csv_rows.push(row);
        }
        plain
    };

    match write_csv(csv_name, FIG5_HEADER, &csv_rows) {
        Ok(p) => eprintln!("[fig5] wrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    // metrics snapshot last: the ordering spans and heap counters the
    // sweep accumulated become the trace's closing lines
    trace.into_inner().finish();

    let algos: Vec<String> = dedup(cells.iter().map(|c| c.algo.clone()));
    let datasets: Vec<String> = dedup(cells.iter().map(|c| c.dataset.clone()));
    let orderings: Vec<String> = dedup(cells.iter().map(|c| c.ordering.clone()));
    let find = |ds: &str, al: &str, or: &str| -> Option<&CellResult> {
        cells
            .iter()
            .find(|c| c.dataset == ds && c.algo == al && c.ordering == or)
    };

    if args.has_flag("--by-ordering") {
        // Figure S1: one block per algorithm, rows = orderings, cols = datasets
        println!("Figure S1: relative runtime vs Gorder, grouped by ordering\n");
        for al in &algos {
            println!("== {al} ==");
            let mut header = vec!["Ordering".to_string()];
            header.extend(datasets.iter().cloned());
            let mut t = Table::new(header);
            for or in &orderings {
                let mut row = vec![or.clone()];
                for ds in &datasets {
                    row.push(relative(find(ds, al, or), find(ds, al, "Gorder")));
                }
                t.row(row);
            }
            t.print();
            println!();
        }
    } else {
        // Figure 5: one block per algorithm, rows = datasets; first row
        // shows Gorder's absolute time, others are relative factors.
        println!("Figure 5: runtime relative to Gorder (1.00 = Gorder)\n");
        for al in &algos {
            println!("== {al} ==");
            let mut header = vec!["Dataset".to_string(), "Gorder abs".to_string()];
            header.extend(orderings.iter().filter(|o| *o != "Gorder").cloned());
            let mut t = Table::new(header);
            for ds in &datasets {
                let gorder = find(ds, al, "Gorder");
                let mut row = vec![
                    ds.clone(),
                    gorder
                        .map(|c| pretty_secs(c.seconds))
                        .unwrap_or_else(|| "-".into()),
                ];
                for or in orderings.iter().filter(|o| *o != "Gorder") {
                    row.push(relative(find(ds, al, or), gorder));
                }
                t.row(row);
            }
            t.print();
            println!();
        }
    }
}

/// One `results/fig5*.csv` row for a freshly computed cell — the exact
/// bytes also recorded as the cell's trace `row` line.
fn fig5_row(c: &CellResult) -> Vec<String> {
    vec![
        c.dataset.clone(),
        c.algo.clone(),
        c.ordering.clone(),
        format!("{:.6}", c.seconds),
        c.checksum.to_string(),
        c.stats.iterations.to_string(),
        c.stats.edges_relaxed.to_string(),
        c.stats.frontier_peak.to_string(),
        // threads actually used: 1 for simulated/serial cells and
        // the extension algorithms (which ignore the plan).
        c.stats.threads_used.max(1).to_string(),
    ]
}

fn relative(cell: Option<&CellResult>, gorder: Option<&CellResult>) -> String {
    match (cell, gorder) {
        (Some(c), Some(g)) if g.seconds > 0.0 => format!("{:.2}", c.seconds / g.seconds),
        _ => "-".into(),
    }
}

fn dedup<I: IntoIterator<Item = String>>(it: I) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for x in it {
        if !out.contains(&x) {
            out.push(x);
        }
    }
    out
}
