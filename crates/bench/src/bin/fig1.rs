//! Figure 1 — CPU execute vs cache stall, Original order vs Gorder.
//!
//! Replays every benchmark algorithm on the sdarc dataset through the
//! cache simulator twice — once in the original order, once Gorder-ed —
//! and prints the modelled CPU/stall split, normalised to the original
//! order's total (exactly how the paper's Figure 1 bars are drawn).
//!
//! Shape to reproduce: CPU bars nearly equal between the two orders,
//! stall bars visibly smaller under Gorder, total below 1.0.

use gorder_bench::fmt::{write_csv, Table};
use gorder_bench::HarnessArgs;
use gorder_cachesim::trace::{replay, TraceCtx, TRACED_ALGOS};
use gorder_cachesim::{CacheHierarchy, HierarchyConfig, StallModel, Tracer};
use gorder_core::Gorder;

fn main() {
    let args = HarnessArgs::parse();
    let g = gorder_graph::datasets::sdarc_like().build(args.scale);
    println!(
        "Figure 1: CPU execute vs cache stall on sdarc (n = {}, m = {})\n",
        g.n(),
        g.m()
    );
    // The synthetic datasets are ~100× smaller than the paper's, so the
    // scaled-down hierarchy keeps working-set-to-cache ratios comparable;
    // pass --xeon for the full Xeon E5 geometry.
    let hconfig = if args.has_flag("--xeon") {
        HierarchyConfig::xeon_e5()
    } else {
        HierarchyConfig::scaled_down()
    };
    let model = StallModel::skylake();
    let perm = Gorder::with_defaults().compute(&g);
    let reordered = g.relabel(&perm);
    let ctx = TraceCtx {
        pr_iterations: if args.quick { 5 } else { 20 },
        diameter_samples: if args.quick { 2 } else { 4 },
        seed: args.seed,
        ..Default::default()
    };

    let mut t = Table::new([
        "Algo",
        "orig CPU",
        "orig stall",
        "orig total",
        "gord CPU",
        "gord stall",
        "gord total",
    ]);
    let mut csv_rows = Vec::new();
    for name in TRACED_ALGOS {
        let run = |graph: &gorder_graph::Graph| {
            let mut tracer = Tracer::new(CacheHierarchy::new(&hconfig));
            replay(name, graph, &mut tracer, &ctx).expect("known algorithm");
            tracer.breakdown(&model)
        };
        let orig = run(&g);
        let gord = run(&reordered);
        let norm = orig.total().max(1.0);
        t.row([
            name.to_string(),
            format!("{:.2}", orig.cpu_cycles / norm),
            format!("{:.2}", orig.stall_cycles / norm),
            "1.00".to_string(),
            format!("{:.2}", gord.cpu_cycles / norm),
            format!("{:.2}", gord.stall_cycles / norm),
            format!("{:.2}", gord.total() / norm),
        ]);
        csv_rows.push(vec![
            name.to_string(),
            format!("{:.4}", orig.cpu_cycles / norm),
            format!("{:.4}", orig.stall_cycles / norm),
            format!("{:.4}", gord.cpu_cycles / norm),
            format!("{:.4}", gord.stall_cycles / norm),
        ]);
        eprintln!(
            "[fig1] {name}: stall share {:.0}% -> {:.0}%",
            orig.stall_fraction() * 100.0,
            gord.stall_fraction() * 100.0
        );
    }
    t.print();
    println!("\n(per algorithm, both bars normalised to the original order's total;");
    println!(" expect similar CPU, smaller stall and total < 1.00 under Gorder)");
    match write_csv(
        "fig1.csv",
        &[
            "algo",
            "orig_cpu",
            "orig_stall",
            "gorder_cpu",
            "gorder_stall",
        ],
        &csv_rows,
    ) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
