//! Compression experiment (extension, DESIGN.md §8): the paper's
//! discussion notes that "graph compression also benefits from orderings
//! that cluster nodes with high proximity" (Boldi & Vigna's WebGraph).
//! This binary measures it: gap + varint encoded adjacency size, in bits
//! per edge, for every ordering on every dataset.
//!
//! Expected shape: the arrangement-energy optimisers (MinLA/MinLogA) and
//! Gorder compress best (small gaps), Random worst — note this ranking
//! differs from the *runtime* ranking, where MinLA does poorly: gap size
//! is exactly MinLA's objective but only a proxy for cache locality.

use gorder_bench::fmt::{write_csv, Table};
use gorder_bench::HarnessArgs;
use gorder_graph::compress::CompressedGraph;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Compression: gap+varint bits per edge, per ordering (scale = {})\n",
        args.scale
    );
    let datasets = gorder_graph::datasets::all();
    let orderings = gorder_orders::all(args.seed);
    let mut header = vec!["Ordering".to_string()];
    header.extend(datasets.iter().map(|d| d.name.to_string()));
    let mut t = Table::new(header);
    let mut csv_rows = Vec::new();

    let graphs: Vec<_> = datasets.iter().map(|d| d.build(args.scale)).collect();
    for o in &orderings {
        let mut row = vec![o.name().to_string()];
        for (d, g) in datasets.iter().zip(&graphs) {
            let perm = o.compute(g);
            let bits = CompressedGraph::compress(&g.relabel(&perm)).bits_per_edge();
            row.push(format!("{bits:.2}"));
            csv_rows.push(vec![
                o.name().to_string(),
                d.name.to_string(),
                format!("{bits:.4}"),
            ]);
        }
        t.row(row);
        eprintln!("[compression] {} done", o.name());
    }
    // reference: raw u32 adjacency
    let mut raw = vec!["(raw u32)".to_string()];
    raw.extend(graphs.iter().map(|_| "32.00".to_string()));
    t.row(raw);

    t.print();
    println!("\n(lower is better; expect MinLA/MinLogA/Gorder smallest, Random largest)");
    match write_csv(
        "compression.csv",
        &["ordering", "dataset", "bits_per_edge"],
        &csv_rows,
    ) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
