//! Table 2 — graph-ordering computation time (the paper's Table 9).
//!
//! Times each ordering method's `compute` on every dataset. The paper's
//! shape to reproduce: ChDFS/InDegSort fastest (sub-second), RCM next,
//! SlashBurn/LDG moderate, MinLA < MinLogA expensive, Gorder the most
//! expensive and visibly super-linear in m.

use gorder_algos::{ExecPlan, GraphAlgorithm, RunCtx};
use gorder_bench::fmt::{write_csv, Table};
use gorder_bench::robust::{resolve_ordering, OrderHooks};
use gorder_bench::schema::TABLE2_HEADER;
use gorder_bench::timing::{pretty_secs, time_once};
use gorder_bench::{
    check_ordering_filter, expected_config_hash, HarnessArgs, ResumeState, SweepTrace,
};
use gorder_core::budget::ExecOutcome;
use gorder_obs::{CellEvent, OrderEvent, TraceEvent};
use gorder_orders::{OrderCache, OrderingAlgorithm};
use std::sync::Arc;

fn main() {
    let args = HarnessArgs::parse();
    if let Some(spec) = &args.faults {
        if let Err(e) = gorder_obs::faults::arm_from_spec(spec) {
            eprintln!("error: --faults {e}");
            std::process::exit(2);
        }
    }
    println!(
        "Table 2: ordering computation time in seconds (scale = {})\n",
        args.scale
    );
    let timeout = args.cell_timeout_duration();
    let datasets = match &args.datasets {
        None => gorder_graph::datasets::all(),
        Some(names) => names
            .iter()
            .map(|n| {
                gorder_graph::datasets::by_name(n).unwrap_or_else(|| {
                    eprintln!("error: --datasets: unknown dataset {n:?}");
                    std::process::exit(2);
                })
            })
            .collect(),
    };
    if let Err(e) = check_ordering_filter(&args.orderings) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let cache = args.order_cache.as_ref().map(|dir| {
        OrderCache::new(std::path::Path::new(dir)).unwrap_or_else(|e| {
            eprintln!("error: --order-cache {dir}: {e}");
            std::process::exit(2)
        })
    });
    let orderings: Vec<Arc<dyn OrderingAlgorithm>> = gorder_orders::all(args.seed)
        .into_iter()
        .filter(|o| match &args.orderings {
            None => true,
            Some(keep) => keep.iter().any(|k| k == o.name()),
        })
        .map(Arc::from)
        .collect();
    // Parse the prior trace before SweepTrace::open truncates the
    // `--trace-out` target (`--resume X --trace-out X` after a crash).
    let resume = args.resume.as_ref().map(|path| {
        match ResumeState::load(path, expected_config_hash("table2", &args)) {
            Ok(s) => {
                eprintln!(
                    "[table2] resuming from {path}: {} completed cells, {} rows",
                    s.cell_count(),
                    s.row_count()
                );
                s
            }
            Err(e) => {
                eprintln!("error: --resume {e}");
                std::process::exit(2);
            }
        }
    });
    // Original and Random cost nothing interesting; the paper's table
    // starts at MinLA. Keep them anyway — they are part of the zoo.
    let mut header = vec!["Ordering".to_string()];
    header.extend(datasets.iter().map(|d| d.name.to_string()));
    let mut t = Table::new(header);
    let mut csv_rows = Vec::new();

    let graphs: Vec<Arc<_>> = datasets
        .iter()
        .map(|d| {
            let g = d.build(args.scale);
            eprintln!("[table2] {}: n = {}, m = {}", d.name, g.n(), g.m());
            Arc::new(g)
        })
        .collect();

    // --trace-out streams one `cell` line per timed ordering (algo
    // "order"), flushed as it lands — an interrupted table run is
    // reconstructable from disk.
    let mut trace = SweepTrace::open("table2", &args);
    let mut skips: Vec<String> = Vec::new();
    for o in &orderings {
        let mut cells = vec![o.name().to_string()];
        for (d, g) in datasets.iter().zip(&graphs) {
            // Recovery first: a cell whose `cell` line (status
            // completed) *and* verbatim `row` line both survived the
            // prior trace is re-emitted without recomputing. The graphs
            // themselves are still built — the "Edges m" footer needs
            // every m — but the expensive ordering computation and BFS
            // probe are skipped.
            let key = format!("{}|{}", o.name(), d.name);
            let recovered = resume.as_ref().and_then(|s| {
                let c = s.completed_cell(d.name, o.name(), "order")?;
                Some((c, s.row("table2.csv", &key)?.to_vec()))
            });
            if let Some((rec, row)) = recovered {
                let shown = pretty_secs(rec.seconds);
                trace.event(&TraceEvent::Cell(CellEvent {
                    dataset: d.name.to_string(),
                    ordering: o.name().to_string(),
                    algo: "order".to_string(),
                    status: "completed".to_string(),
                    seconds: rec.seconds,
                    checksum: 0,
                }));
                trace.row("table2.csv", &key, &row);
                cells.push(shown.clone());
                csv_rows.push(row);
                eprintln!("[table2]   {} on {}: {shown} (recovered)", o.name(), d.name);
                continue;
            }
            // Guarded: a panicking or runaway ordering marks its cell
            // and the table continues, instead of the whole run dying.
            // With --order-cache a previously completed permutation is
            // loaded instead of recomputed; the `order` trace line's
            // `cache_hit` says which happened.
            let mut order_ev: Option<OrderEvent> = None;
            let (secs, outcome) = {
                let mut on_order = |e: &OrderEvent| order_ev = Some(e.clone());
                let mut hooks = OrderHooks {
                    cache: cache.as_ref(),
                    seed: args.seed,
                    on_order: &mut on_order,
                };
                time_once(|| {
                    resolve_ordering(
                        o,
                        g,
                        Some(d.name),
                        gorder_orders::ExecPlan::Serial,
                        timeout,
                        Some(&mut hooks),
                    )
                })
            };
            if let Some(e) = &order_ev {
                trace.order(e);
            }
            let (shown, note, perm, status) = match outcome {
                ExecOutcome::Completed(perm) => {
                    assert_eq!(perm.len(), g.n(), "invalid permutation from {}", o.name());
                    (pretty_secs(secs), None, Some(perm), "completed")
                }
                ExecOutcome::Degraded(perm, reason) => {
                    assert_eq!(perm.len(), g.n(), "invalid permutation from {}", o.name());
                    (
                        format!("{}*", pretty_secs(secs)),
                        Some(format!("degraded: {reason}")),
                        Some(perm),
                        "degraded",
                    )
                }
                ExecOutcome::TimedOut => (
                    "timeout".to_string(),
                    Some("timed out".to_string()),
                    None,
                    "timed-out",
                ),
                ExecOutcome::Failed(msg) => ("failed".to_string(), Some(msg), None, "failed"),
            };
            if let Some(note) = note {
                skips.push(format!("{} on {}: {note}", o.name(), d.name));
            }
            trace.event(&TraceEvent::Cell(CellEvent {
                dataset: d.name.to_string(),
                ordering: o.name().to_string(),
                algo: "order".to_string(),
                status: status.to_string(),
                seconds: if perm.is_some() { secs } else { f64::NAN },
                checksum: 0,
            }));
            // Layout sanity probe: one engine BFS on the relabeled graph.
            // Equal work counters across orderings confirm every layout
            // solves the same instance; empty cells mark unusable layouts.
            // `--threads` parallelises the probe — counters stay identical
            // to serial by the engine's determinism contract.
            let plan = ExecPlan::with_threads(args.threads);
            let (bfs_iters, bfs_edges, bfs_threads) = match &perm {
                Some(perm) => {
                    let rg = g.relabel(perm);
                    let (_, stats) =
                        gorder_algos::bfs::Bfs.run_stats_plan(&rg, &RunCtx::default(), plan);
                    (
                        stats.iterations.to_string(),
                        stats.edges_relaxed.to_string(),
                        stats.threads_used.max(1).to_string(),
                    )
                }
                None => (String::new(), String::new(), String::new()),
            };
            cells.push(shown.clone());
            let row = vec![
                o.name().to_string(),
                d.name.to_string(),
                format!("{secs:.6}"),
                bfs_iters,
                bfs_edges,
                bfs_threads,
            ];
            // the verbatim row line is what a later --resume replays
            trace.row("table2.csv", &key, &row);
            csv_rows.push(row);
            eprintln!("[table2]   {} on {}: {shown}", o.name(), d.name);
        }
        t.row(cells);
    }
    // edge counts footer, as in the replication
    let mut m_row = vec!["Edges m".to_string()];
    m_row.extend(graphs.iter().map(|g| g.m().to_string()));
    t.row(m_row);

    t.print();
    if !skips.is_empty() {
        eprintln!("\n[table2] cells that did not complete cleanly:");
        for s in &skips {
            eprintln!("[table2]   {s}");
        }
    }
    match write_csv("table2.csv", TABLE2_HEADER, &csv_rows) {
        Ok(p) => println!("\nwrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    trace.finish();
}
