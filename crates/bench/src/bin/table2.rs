//! Table 2 — graph-ordering computation time (the paper's Table 9).
//!
//! Times each ordering method's `compute` on every dataset. The paper's
//! shape to reproduce: ChDFS/InDegSort fastest (sub-second), RCM next,
//! SlashBurn/LDG moderate, MinLA < MinLogA expensive, Gorder the most
//! expensive and visibly super-linear in m.

use gorder_bench::fmt::{write_csv, Table};
use gorder_bench::timing::{pretty_secs, time_once};
use gorder_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Table 2: ordering computation time in seconds (scale = {})\n",
        args.scale
    );
    let datasets = gorder_graph::datasets::all();
    let orderings = gorder_orders::all(args.seed);
    // Original and Random cost nothing interesting; the paper's table
    // starts at MinLA. Keep them anyway — they are part of the zoo.
    let mut header = vec!["Ordering".to_string()];
    header.extend(datasets.iter().map(|d| d.name.to_string()));
    let mut t = Table::new(header);
    let mut csv_rows = Vec::new();

    let graphs: Vec<_> = datasets
        .iter()
        .map(|d| {
            let g = d.build(args.scale);
            eprintln!("[table2] {}: n = {}, m = {}", d.name, g.n(), g.m());
            g
        })
        .collect();

    for o in &orderings {
        let mut cells = vec![o.name().to_string()];
        for (d, g) in datasets.iter().zip(&graphs) {
            let (secs, perm) = time_once(|| o.compute(g));
            assert_eq!(perm.len(), g.n(), "invalid permutation from {}", o.name());
            cells.push(pretty_secs(secs));
            csv_rows.push(vec![
                o.name().to_string(),
                d.name.to_string(),
                format!("{secs:.6}"),
            ]);
            eprintln!(
                "[table2]   {} on {}: {}",
                o.name(),
                d.name,
                pretty_secs(secs)
            );
        }
        t.row(cells);
    }
    // edge counts footer, as in the replication
    let mut m_row = vec!["Edges m".to_string()];
    m_row.extend(graphs.iter().map(|g| g.m().to_string()));
    t.row(m_row);

    t.print();
    match write_csv("table2.csv", &["ordering", "dataset", "seconds"], &csv_rows) {
        Ok(p) => println!("\nwrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
