//! Figure 4 — tuning Gorder's window size (the paper's Figure 8).
//!
//! Builds Gorder orderings of the flickr dataset for window sizes from 1
//! up to ~n, runs PageRank on each reordered graph, and reports the PR
//! runtime and the ordering time per window. Shapes to reproduce: PR time
//! dips from w = 1, is good near the paper's w = 5, slightly better on the
//! replication's 64–2048 plateau, and degrades for very large windows —
//! while ordering time grows with w.

use gorder_algos::{GraphAlgorithm, RunCtx};
use gorder_bench::fmt::{write_csv, Table};
use gorder_bench::timing::{median_secs, pretty_secs, time_once};
use gorder_bench::HarnessArgs;
use gorder_cachesim::trace::{pagerank as traced_pr, TraceCtx};
use gorder_cachesim::{CacheHierarchy, HierarchyConfig, StallModel, Tracer};
use gorder_core::GorderBuilder;

fn main() {
    let args = HarnessArgs::parse();
    let g = gorder_graph::datasets::flickr_like().build(args.scale);
    println!(
        "Figure 4: PR runtime vs Gorder window size on flickr (n = {}, m = {})\n",
        g.n(),
        g.m()
    );
    let max_pow = if args.quick { 8 } else { 20 };
    let windows: Vec<u32> = (0..=max_pow)
        .map(|p| 1u32 << p)
        .filter(|&w| w <= g.n())
        .collect();
    let wall = args.has_flag("--wall");
    let ctx = RunCtx {
        pr_iterations: if args.quick { 10 } else { 100 },
        ..Default::default()
    };
    let tctx = TraceCtx {
        pr_iterations: if args.quick { 2 } else { 5 },
        ..Default::default()
    };
    let model = StallModel::skylake();
    let pr = gorder_algos::pagerank::Pr;
    println!(
        "(PR time: {} — pass --wall for wall-clock)\n",
        if wall {
            "wall-clock"
        } else {
            "modelled, simulator + stall model at 4 GHz"
        }
    );

    let mut t = Table::new(["w", "PR time", "L1-mr", "ordering time"]);
    let mut csv_rows = Vec::new();
    for &w in &windows {
        let (order_secs, perm) = time_once(|| GorderBuilder::new().window(w).build().compute(&g));
        let rg = g.relabel(&perm);
        let (pr_secs, l1_mr) = if wall {
            let (secs, _) = median_secs(|| pr.run(&rg, &ctx), args.reps);
            (secs, f64::NAN)
        } else {
            let mut tracer = Tracer::new(CacheHierarchy::new(&HierarchyConfig::scaled_down()));
            traced_pr(&rg, &mut tracer, &tctx);
            (
                tracer.breakdown(&model).total() / 4e9,
                tracer.stats().l1_miss_rate,
            )
        };
        t.row([
            w.to_string(),
            pretty_secs(pr_secs),
            if l1_mr.is_nan() {
                "-".to_string()
            } else {
                format!("{:.1}%", l1_mr * 100.0)
            },
            pretty_secs(order_secs),
        ]);
        csv_rows.push(vec![
            w.to_string(),
            format!("{pr_secs:.6}"),
            format!("{order_secs:.6}"),
        ]);
        eprintln!(
            "[fig4] w = {w}: PR {} (order {})",
            pretty_secs(pr_secs),
            pretty_secs(order_secs)
        );
    }
    t.print();
    println!("\n(expect a mild minimum around w = 5…2048 and growth at both extremes)");
    match write_csv(
        "fig4.csv",
        &["window", "pr_seconds", "order_seconds"],
        &csv_rows,
    ) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
