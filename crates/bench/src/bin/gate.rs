//! `gorder-bench gate` — the benchmark regression gate (DESIGN.md §12).
//!
//! ```text
//! gate [--mode sim|wall] [--baseline PATH] [--update] [--out PATH]
//!      [--tolerance PCT] [--threshold PCT] [--pairs N] [--warmup N]
//!      [--gorder-window N] [--scale F] [--seed N]
//!      [--datasets a,b] [--orderings a,b] [--algos a,b]
//! ```
//!
//! Runs the pinned grid in the chosen mode, writes the report to
//! `results/BENCH_gate.json`, and compares it against the committed
//! baseline (`BENCH_gate.json` at the repo root). Exit codes: 0 = no
//! regression, 1 = regression (delta table on stdout), 2 = unusable
//! invocation or baseline (missing/corrupt file, config-hash mismatch).
//!
//! `--update` rewrites the baseline from the current run instead of
//! comparing. `--gorder-window N` overrides Gorder's window size — the
//! CI self-test uses `--gorder-window 1` to prove an injected regression
//! actually trips the gate.

use gorder_bench::gate::{compare, parse_report, render_report, run_gate, GateConfig, GateMode};
use gorder_bench::schema::{GATE_BASELINE, GATE_OUT};
use gorder_bench::HarnessArgs;
use std::path::Path;
use std::process::ExitCode;

fn die(msg: &str) -> ! {
    eprintln!("gate: {msg}");
    std::process::exit(2)
}

/// The gate's own flags, scanned out of [`HarnessArgs::extra`]. Unknown
/// flags are fatal — a typo must not silently weaken the gate.
struct GateFlags {
    mode: GateMode,
    baseline: String,
    out: String,
    update: bool,
    tolerance: f64,
    threshold: f64,
    pairs: Option<u32>,
    warmup: Option<u32>,
    gorder_window: Option<u32>,
}

fn parse_flags(extra: &[String]) -> GateFlags {
    let mut f = GateFlags {
        mode: GateMode::Sim,
        baseline: GATE_BASELINE.to_string(),
        out: GATE_OUT.to_string(),
        update: false,
        tolerance: 0.0,
        threshold: 5.0,
        pairs: None,
        warmup: None,
        gorder_window: None,
    };
    let mut it = extra.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--mode" => {
                let v = value("--mode");
                f.mode = GateMode::parse(&v)
                    .unwrap_or_else(|| die(&format!("--mode must be sim or wall, got {v:?}")));
            }
            "--baseline" => f.baseline = value("--baseline"),
            "--out" => f.out = value("--out"),
            "--update" => f.update = true,
            "--tolerance" => {
                f.tolerance = value("--tolerance")
                    .parse()
                    .unwrap_or_else(|_| die("--tolerance needs a percentage"));
            }
            "--threshold" => {
                f.threshold = value("--threshold")
                    .parse()
                    .unwrap_or_else(|_| die("--threshold needs a percentage"));
            }
            "--pairs" => {
                f.pairs = Some(
                    value("--pairs")
                        .parse()
                        .unwrap_or_else(|_| die("--pairs needs a positive integer")),
                );
            }
            "--warmup" => {
                f.warmup = Some(
                    value("--warmup")
                        .parse()
                        .unwrap_or_else(|_| die("--warmup needs an integer")),
                );
            }
            "--gorder-window" => {
                let w: u32 = value("--gorder-window")
                    .parse()
                    .unwrap_or_else(|_| die("--gorder-window needs a positive integer"));
                if w == 0 {
                    die("--gorder-window must be at least 1");
                }
                f.gorder_window = Some(w);
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    f
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = HarnessArgs::from_args(raw.iter().cloned());
    let flags = parse_flags(&args.extra);

    let mut cfg = GateConfig::pinned(flags.mode);
    // The gate pins its own scale; the harness default (0.25) only
    // applies when the user actually typed --scale.
    if raw.iter().any(|a| a == "--scale") {
        cfg.scale = args.scale;
    }
    cfg.seed = args.seed;
    if let Some(d) = &args.datasets {
        cfg.datasets = d.clone();
    }
    if let Some(o) = &args.orderings {
        cfg.orderings = o.clone();
    }
    if let Some(a) = &args.algos {
        cfg.algos = a.clone();
    }
    if let Some(p) = flags.pairs {
        cfg.pairs = p;
    }
    if let Some(w) = flags.warmup {
        cfg.warmup = w;
    }
    cfg.gorder_window = flags.gorder_window;

    eprintln!(
        "[gate] mode={} grid={}d×{}o×{}a scale={}",
        cfg.mode.label(),
        cfg.datasets.len(),
        cfg.orderings.len(),
        cfg.algos.len(),
        cfg.scale,
    );
    let report = run_gate(&cfg).unwrap_or_else(|e| die(&e));
    let text = render_report(&report);

    if let Some(dir) = Path::new(&flags.out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| die(&format!("creating {}: {e}", dir.display())));
        }
    }
    std::fs::write(&flags.out, &text)
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", flags.out)));
    eprintln!("[gate] wrote {} ({} cells)", flags.out, report.cells.len());

    if flags.update {
        std::fs::write(&flags.baseline, &text)
            .unwrap_or_else(|e| die(&format!("writing {}: {e}", flags.baseline)));
        println!("gate: baseline {} updated", flags.baseline);
        return ExitCode::SUCCESS;
    }

    let base_text = std::fs::read_to_string(&flags.baseline).unwrap_or_else(|e| {
        die(&format!(
            "baseline {}: {e} — run `gate --mode {} --update` to create it",
            flags.baseline,
            cfg.mode.label()
        ))
    });
    let base = parse_report(&base_text)
        .unwrap_or_else(|e| die(&format!("baseline {}: {e}", flags.baseline)));
    if base.manifest.config_hash != report.manifest.config_hash {
        die(&format!(
            "config_hash mismatch: baseline {} has {:#018x}, this run has {:#018x} — \
             same grid flags required (or --update to rebase)",
            flags.baseline, base.manifest.config_hash, report.manifest.config_hash
        ));
    }

    let cmp = compare(&base, &report, flags.tolerance, flags.threshold);
    if cmp.passed() {
        println!(
            "gate: OK — {} cells and {} order records match {} (mode {}, tolerance {}%)",
            report.cells.len(),
            report.orders.len(),
            flags.baseline,
            cfg.mode.label(),
            flags.tolerance,
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "gate: REGRESSION — {} discrepancy(ies) vs {}:",
            cmp.deltas.len(),
            flags.baseline
        );
        print!("{}", cmp.render_table());
        ExitCode::FAILURE
    }
}
