//! Ablation study (DESIGN.md §8): does the paper's quality function
//! predict runtime, and how close do cheap skew-aware orderings
//! (HubSort / HubCluster / DBG, from the follow-on literature the paper's
//! discussion cites) get to Gorder?
//!
//! For every ordering — the paper's ten plus the three extensions — on
//! one social and one web dataset, reports: ordering computation time,
//! PageRank runtime, simulated L1 miss rate, the Gorder objective `F(π)`,
//! mean edge span, and bandwidth.

use gorder_algos::{GraphAlgorithm, RunCtx};
use gorder_bench::fmt::{write_csv, Table};
use gorder_bench::robust::{resolve_ordering, OrderHooks};
use gorder_bench::timing::{median_secs, pretty_secs, time_once};
use gorder_bench::{
    check_ordering_filter, expected_config_hash, HarnessArgs, ResumeState, SweepTrace,
};
use gorder_cachesim::trace::{pagerank as traced_pr, TraceCtx};
use gorder_cachesim::{CacheHierarchy, HierarchyConfig, Tracer};
use gorder_core::budget::ExecOutcome;
use gorder_core::score::{bandwidth_of, f_score_of};
use gorder_graph::locality::mean_edge_span;
use gorder_obs::{CellEvent, OrderEvent, PhaseEvent, TraceEvent};
use gorder_orders::{OrderCache, OrderingAlgorithm};
use std::sync::Arc;

fn main() {
    let args = HarnessArgs::parse();
    if let Some(spec) = &args.faults {
        if let Err(e) = gorder_obs::faults::arm_from_spec(spec) {
            eprintln!("error: --faults {e}");
            std::process::exit(2);
        }
    }
    let ctx = RunCtx {
        pr_iterations: if args.quick { 5 } else { 50 },
        ..Default::default()
    };
    let tctx = TraceCtx {
        pr_iterations: if args.quick { 2 } else { 5 },
        ..Default::default()
    };
    let pr = gorder_algos::pagerank::Pr;
    let mut csv_rows = Vec::new();
    let timeout = args.cell_timeout_duration();
    if let Err(e) = check_ordering_filter(&args.orderings) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let cache = args.order_cache.as_ref().map(|dir| {
        OrderCache::new(std::path::Path::new(dir)).unwrap_or_else(|e| {
            eprintln!("error: --order-cache {dir}: {e}");
            std::process::exit(2)
        })
    });
    // Parse the prior trace before SweepTrace::open truncates the
    // `--trace-out` target (`--resume X --trace-out X` after a crash).
    let resume = args.resume.as_ref().map(|path| {
        match ResumeState::load(path, expected_config_hash("ablation", &args)) {
            Ok(s) => {
                eprintln!(
                    "[ablation] resuming from {path}: {} completed cells, {} rows",
                    s.cell_count(),
                    s.row_count()
                );
                s
            }
            Err(e) => {
                eprintln!("error: --resume {e}");
                std::process::exit(2);
            }
        }
    });
    // --trace-out streams one `phase` line per ordering construction,
    // one `cell` line per PageRank row, and one verbatim `row` line per
    // CSV row, flushed as each lands.
    let mut trace = SweepTrace::open("ablation", &args);
    let datasets = [
        gorder_graph::datasets::flickr_like(),
        gorder_graph::datasets::pldarc_like(),
    ]
    .into_iter()
    .filter(|d| match &args.datasets {
        None => true,
        Some(keep) => keep.iter().any(|k| k == d.name),
    });
    for d in datasets {
        let g = Arc::new(d.build(args.scale));
        println!(
            "Ablation on {} ({}, n = {}, m = {})\n",
            d.name,
            d.category,
            g.n(),
            g.m()
        );
        let mut t = Table::new([
            "Ordering",
            "order time",
            "PR time",
            "L1-mr",
            "F(pi)/m",
            "mean span",
            "bandwidth",
        ]);
        for o in gorder_orders::extensions::extended(args.seed) {
            let o: Arc<dyn OrderingAlgorithm> = Arc::from(o);
            if let Some(keep) = &args.orderings {
                if !keep.iter().any(|k| k == o.name()) {
                    continue;
                }
            }
            // Recovery first: a row whose PR `cell` line completed and
            // whose verbatim `row` line survived is replayed without
            // recomputing the ordering or any metric. The ordering's
            // `phase` line is deliberately not re-emitted — no ordering
            // was computed in this process.
            let key = format!("{}|{}", d.name, o.name());
            let recovered = resume.as_ref().and_then(|s| {
                let c = s.completed_cell(d.name, o.name(), "PR")?;
                Some((c, s.row("ablation.csv", &key)?.to_vec()))
            });
            if let Some((rec, row)) = recovered {
                trace.event(&TraceEvent::Cell(CellEvent {
                    dataset: d.name.to_string(),
                    ordering: o.name().to_string(),
                    algo: "PR".to_string(),
                    status: "completed".to_string(),
                    seconds: rec.seconds,
                    checksum: rec.checksum,
                }));
                trace.row("ablation.csv", &key, &row);
                let num = |i: usize| row[i].parse::<f64>().unwrap_or(f64::NAN);
                t.row([
                    o.name().to_string(),
                    pretty_secs(num(2)),
                    pretty_secs(num(3)),
                    format!("{:.1}%", num(4) * 100.0),
                    format!("{:.2}", num(5)),
                    format!("{:.0}", num(6)),
                    row[7].clone(),
                ]);
                csv_rows.push(row);
                eprintln!("[ablation] {} on {} recovered", o.name(), d.name);
                continue;
            }
            // Guarded: a misbehaving ordering loses its row, not the run.
            // With --order-cache a previously completed permutation is
            // loaded rather than recomputed (the `order` line records
            // `cache_hit`).
            let mut order_ev: Option<OrderEvent> = None;
            let (order_secs, outcome) = {
                let mut on_order = |e: &OrderEvent| order_ev = Some(e.clone());
                let mut hooks = OrderHooks {
                    cache: cache.as_ref(),
                    seed: args.seed,
                    on_order: &mut on_order,
                };
                time_once(|| {
                    resolve_ordering(
                        &o,
                        &g,
                        Some(d.name),
                        gorder_orders::ExecPlan::Serial,
                        timeout,
                        Some(&mut hooks),
                    )
                })
            };
            if let Some(e) = &order_ev {
                trace.order(e);
            }
            let skipped_cell = |status: &str| {
                TraceEvent::Cell(CellEvent {
                    dataset: d.name.to_string(),
                    ordering: o.name().to_string(),
                    algo: "PR".to_string(),
                    status: status.to_string(),
                    seconds: f64::NAN,
                    checksum: 0,
                })
            };
            let (perm, status) = match outcome {
                ExecOutcome::Completed(p) => (p, "completed"),
                ExecOutcome::Degraded(p, reason) => {
                    eprintln!("[ablation] {} on {} degraded: {reason}", o.name(), d.name);
                    (p, "degraded")
                }
                ExecOutcome::TimedOut => {
                    eprintln!(
                        "[ablation] {} on {} timed out — row skipped",
                        o.name(),
                        d.name
                    );
                    trace.event(&skipped_cell("timed-out"));
                    continue;
                }
                ExecOutcome::Failed(msg) => {
                    eprintln!(
                        "[ablation] {} on {} failed: {msg} — row skipped",
                        o.name(),
                        d.name
                    );
                    trace.event(&skipped_cell("failed"));
                    continue;
                }
            };
            trace.event(&TraceEvent::Phase(PhaseEvent {
                name: format!("order.{}.{}", d.name, o.name()),
                seconds: order_secs,
            }));
            let rg = g.relabel(&perm);
            let (pr_secs, pr_checksum) = median_secs(|| pr.run(&rg, &ctx), args.reps);
            trace.event(&TraceEvent::Cell(CellEvent {
                dataset: d.name.to_string(),
                ordering: o.name().to_string(),
                algo: "PR".to_string(),
                status: status.to_string(),
                seconds: pr_secs,
                checksum: pr_checksum,
            }));
            let mut tracer = Tracer::new(CacheHierarchy::new(&HierarchyConfig::scaled_down()));
            traced_pr(&rg, &mut tracer, &tctx);
            let l1_mr = tracer.stats().l1_miss_rate;
            // F is O(n·w·deg): affordable at harness scale, skip if huge
            let f = if g.n() <= 200_000 {
                f_score_of(&g, &perm, 5) as f64 / g.m() as f64
            } else {
                f64::NAN
            };
            let span = mean_edge_span(&rg);
            let bw = bandwidth_of(&g, &perm);
            t.row([
                o.name().to_string(),
                pretty_secs(order_secs),
                pretty_secs(pr_secs),
                format!("{:.1}%", l1_mr * 100.0),
                format!("{f:.2}"),
                format!("{span:.0}"),
                bw.to_string(),
            ]);
            let row = vec![
                d.name.to_string(),
                o.name().to_string(),
                format!("{order_secs:.6}"),
                format!("{pr_secs:.6}"),
                format!("{l1_mr:.5}"),
                format!("{f:.4}"),
                format!("{span:.1}"),
                bw.to_string(),
            ];
            // the verbatim row line is what a later --resume replays
            trace.row("ablation.csv", &key, &row);
            csv_rows.push(row);
            eprintln!("[ablation] {} on {} done", o.name(), d.name);
        }
        t.print();
        println!();
    }
    println!("(expect: higher F(pi)/m and lower span track lower L1-mr and faster PR;");
    println!(" HubSort/HubCluster/DBG land between InDegSort and Gorder at ~InDegSort cost)");
    match write_csv(
        "ablation.csv",
        &[
            "dataset",
            "ordering",
            "order_seconds",
            "pr_seconds",
            "l1_mr",
            "f_per_edge",
            "mean_span",
            "bandwidth",
        ],
        &csv_rows,
    ) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    trace.finish();
}
