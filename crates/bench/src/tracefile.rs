//! Streaming JSONL sweep traces for the experiment binaries.
//!
//! [`SweepTrace`] wraps the obs trace sink behind the harness's
//! `--trace-out` flag: when the flag is absent every call is a no-op, and
//! when the file cannot be opened or written the recorder warns once and
//! degrades to a no-op — losing the trace must never kill a sweep. Each
//! finished cell is flushed as its own line the moment
//! [`SweepTrace::cell`] sees it, so a sweep killed partway leaves a
//! manifest plus one `cell` line per completed cell on disk.

use crate::robust::RobustCell;
use crate::HarnessArgs;
use gorder_obs::{CellEvent, OrderEvent, RowEvent, RunManifest, TraceEvent, TraceSink};
use std::fs::File;
use std::io::BufWriter;
use std::path::Path;

/// A sweep-scoped trace recorder: manifest at open, one `cell` line per
/// finished cell, registry metrics at [`SweepTrace::finish`].
pub struct SweepTrace {
    sink: Option<TraceSink<BufWriter<File>>>,
    path: String,
    tool: String,
}

impl SweepTrace {
    /// Opens the trace named by `--trace-out` and writes the manifest
    /// line, or returns a no-op recorder when the flag is absent. An
    /// unopenable path degrades to a warning + no-op.
    pub fn open(tool: &str, args: &HarnessArgs) -> SweepTrace {
        let Some(path) = &args.trace_out else {
            return SweepTrace {
                sink: None,
                path: String::new(),
                tool: tool.to_string(),
            };
        };
        let manifest = manifest_for(tool, args);
        let opened = TraceSink::create(Path::new(path)).and_then(|mut s| {
            s.manifest(&manifest)?;
            Ok(s)
        });
        match opened {
            Ok(sink) => SweepTrace {
                sink: Some(sink),
                path: path.clone(),
                tool: tool.to_string(),
            },
            Err(e) => {
                eprintln!("[{tool}] trace {path}: {e} — tracing disabled");
                SweepTrace {
                    sink: None,
                    path: String::new(),
                    tool: tool.to_string(),
                }
            }
        }
    }

    /// Whether lines are actually being written.
    pub fn is_active(&self) -> bool {
        self.sink.is_some()
    }

    /// Records one finished sweep cell (flushed immediately).
    pub fn cell(&mut self, c: &RobustCell) {
        self.event(&TraceEvent::Cell(cell_event(c)));
    }

    /// Records one finished CSV row verbatim (flushed immediately). Row
    /// lines are what `--resume` replays: a cell whose `row` line made it
    /// to disk is recovered byte-identically; one that didn't is re-run.
    pub fn row(&mut self, table: &str, key: &str, cells: &[String]) {
        self.event(&TraceEvent::Row(RowEvent {
            table: table.to_string(),
            key: key.to_string(),
            cells: cells.to_vec(),
        }));
    }

    /// Records one ordering resolution — computed or cache-hit — as an
    /// `order` line (flushed immediately). A warm-cache run is audited
    /// from these: every line carries `cache_hit`.
    pub fn order(&mut self, e: &OrderEvent) {
        self.event(&TraceEvent::Order(e.clone()));
    }

    /// Records an arbitrary trace event (flushed immediately).
    pub fn event(&mut self, e: &TraceEvent) {
        if let Some(sink) = &mut self.sink {
            if let Err(err) = sink.event(e) {
                eprintln!(
                    "[{}] trace {}: {err} — tracing disabled",
                    self.tool, self.path
                );
                self.sink = None;
            }
        }
    }

    /// Appends the global metrics registry snapshot and reports the line
    /// count. Dropping without calling this loses only the metric lines —
    /// the manifest and cell lines are already on disk.
    pub fn finish(mut self) {
        if let Some(sink) = &mut self.sink {
            let snap = gorder_obs::global().snapshot();
            if let Err(err) = sink.metrics(&snap) {
                eprintln!("[{}] trace {}: {err}", self.tool, self.path);
                return;
            }
            eprintln!(
                "[{}] wrote {} trace lines to {}",
                self.tool,
                sink.lines_written(),
                self.path
            );
        }
    }
}

/// A [`RobustCell`] as its trace line: `seconds` goes `null` (NaN) for
/// cells that produced no usable number, and the status label says why.
pub fn cell_event(c: &RobustCell) -> CellEvent {
    CellEvent {
        dataset: c.result.dataset.clone(),
        ordering: c.result.ordering.clone(),
        algo: c.result.algo.clone(),
        status: c.status.label().to_string(),
        seconds: if c.status.is_usable() {
            c.result.seconds
        } else {
            f64::NAN
        },
        checksum: c.result.checksum,
    }
}

/// The manifest for one harness invocation: every flag that shapes the
/// grid, in a fixed order, folded into the config hash. `--resume`,
/// `--faults`, and `--order-cache` are deliberately excluded — a
/// resumed, fault-hammered, or cache-warmed run is still the *same*
/// experiment, and its trace must hash-match the original so `--resume`
/// accepts it.
fn manifest_for(tool: &str, args: &HarnessArgs) -> RunManifest {
    fn list(v: &Option<Vec<String>>) -> String {
        v.as_ref().map_or("-".to_string(), |v| v.join("+"))
    }
    let config = format!(
        "tool={tool},scale={},reps={},seed={},quick={},cell_timeout={},threads={},\
         datasets={},orderings={},algos={},extra={}",
        args.scale,
        args.reps,
        args.seed,
        args.quick,
        args.cell_timeout.map_or("-".to_string(), |t| t.to_string()),
        args.threads,
        list(&args.datasets),
        list(&args.orderings),
        list(&args.algos),
        args.extra.join("+"),
    );
    let mut m = RunManifest::new(tool, &config);
    m.threads = u64::from(args.threads);
    m
}

/// The config hash a trace written by `tool` under `args` carries in its
/// manifest line. `--resume` compares this against the prior trace's
/// manifest before trusting any recovered cell.
pub fn expected_config_hash(tool: &str, args: &HarnessArgs) -> u64 {
    manifest_for(tool, args).config_hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::CellResult;
    use crate::robust::CellStatus;
    use gorder_obs::validate_jsonl;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gorder-bench-{}-{name}", std::process::id()))
    }

    fn cell(status: CellStatus) -> RobustCell {
        RobustCell {
            result: CellResult {
                dataset: "d".into(),
                algo: "BFS".into(),
                ordering: "Gorder".into(),
                seconds: 0.5,
                checksum: 7,
                stats: Default::default(),
            },
            status,
        }
    }

    #[test]
    fn no_flag_means_no_op() {
        let mut t = SweepTrace::open("test", &HarnessArgs::default());
        assert!(!t.is_active());
        t.cell(&cell(CellStatus::Completed));
        t.finish(); // nothing to write, nothing to crash on
    }

    #[test]
    fn streams_validating_jsonl() {
        let path = tmp("stream.trace.jsonl");
        let args = HarnessArgs {
            trace_out: Some(path.display().to_string()),
            ..Default::default()
        };
        let mut t = SweepTrace::open("test", &args);
        assert!(t.is_active());
        t.cell(&cell(CellStatus::Completed));
        t.cell(&cell(CellStatus::TimedOut));
        // every line is already on disk before finish(): that is the
        // interrupted-sweep guarantee
        let partial = std::fs::read_to_string(&path).unwrap();
        assert_eq!(partial.lines().count(), 3, "manifest + 2 cells");
        t.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = validate_jsonl(&text).expect("strict parser accepts every line");
        assert_eq!(summary.by_kind["cell"], 2);
        assert_eq!(summary.by_kind["manifest"], 1);
        // the timed-out cell's seconds went null, not NaN
        assert!(text.lines().nth(2).unwrap().contains("\"seconds\":null"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn row_events_stream_and_validate() {
        let path = tmp("rows.trace.jsonl");
        let args = HarnessArgs {
            trace_out: Some(path.display().to_string()),
            ..Default::default()
        };
        let mut t = SweepTrace::open("test", &args);
        t.row("fig5.csv", "d|BFS|Gorder", &["d".into(), "0.5".into()]);
        t.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = validate_jsonl(&text).unwrap();
        assert_eq!(summary.by_kind["row"], 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn config_hash_tracks_grid_filters_but_not_resume() {
        let base = HarnessArgs::default();
        let h0 = expected_config_hash("fig5", &base);
        let filtered = HarnessArgs {
            datasets: Some(vec!["epinion".into()]),
            ..base.clone()
        };
        assert_ne!(
            h0,
            expected_config_hash("fig5", &filtered),
            "dataset filter changes the grid, so it changes the hash"
        );
        let resumed = HarnessArgs {
            resume: Some("old.jsonl".into()),
            faults: Some("bench.cell=1".into()),
            order_cache: Some("perm-cache".into()),
            ..base.clone()
        };
        assert_eq!(
            h0,
            expected_config_hash("fig5", &resumed),
            "--resume/--faults/--order-cache never change the hash"
        );
        assert_ne!(h0, expected_config_hash("table2", &base), "tool is hashed");
    }

    #[test]
    fn unopenable_path_degrades_to_no_op() {
        let args = HarnessArgs {
            trace_out: Some("/dev/null/not-a-dir/x.jsonl".into()),
            ..Default::default()
        };
        let mut t = SweepTrace::open("test", &args);
        assert!(!t.is_active());
        t.cell(&cell(CellStatus::Completed));
        t.finish();
    }
}
