//! Rank aggregation for Figure 6.
//!
//! For each experiment series (one algorithm on one dataset), orderings
//! are ranked by runtime, best first. Following the replication's reading
//! of the original paper's Figure 9 — which hides exact values above 1.5×
//! Gorder — runtimes can optionally be capped at `tie_factor ×` the
//! Gorder time before ranking, making everything beyond the cap tie.

use crate::experiment::CellResult;
use std::collections::BTreeMap;

/// Rank histogram over a set of series.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranking {
    /// Ordering names, in first-appearance order.
    pub orderings: Vec<String>,
    /// `counts[o][r]` = number of series where ordering `o` took rank `r`
    /// (0 = best). Ties share the best rank of the tied group.
    pub counts: Vec<Vec<u32>>,
    /// Number of series aggregated.
    pub series: u32,
}

impl Ranking {
    /// Mean rank of ordering index `o` (lower is better).
    pub fn mean_rank(&self, o: usize) -> f64 {
        let total: u32 = self.counts[o].iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let weighted: f64 = self.counts[o]
            .iter()
            .enumerate()
            .map(|(r, &c)| r as f64 * f64::from(c))
            .sum();
        weighted / f64::from(total)
    }

    /// Number of first places for ordering index `o`.
    pub fn firsts(&self, o: usize) -> u32 {
        self.counts[o].first().copied().unwrap_or(0)
    }

    /// Index of an ordering by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.orderings.iter().position(|n| n == name)
    }
}

/// Aggregates rank counts from grid cells.
///
/// `tie_factor`: if `Some(f)`, every runtime in a series is capped at
/// `f ×` that series' Gorder runtime before ranking (the replication uses
/// 1.5 when reading the original paper's figure).
pub fn rank_counts(cells: &[CellResult], tie_factor: Option<f64>) -> Ranking {
    // group cells by (dataset, algo)
    let mut series: BTreeMap<(String, String), Vec<&CellResult>> = BTreeMap::new();
    let mut orderings: Vec<String> = Vec::new();
    for c in cells {
        if !orderings.contains(&c.ordering) {
            orderings.push(c.ordering.clone());
        }
        series
            .entry((c.dataset.clone(), c.algo.clone()))
            .or_default()
            .push(c);
    }
    let k = orderings.len();
    let mut counts = vec![vec![0u32; k]; k];
    let mut nseries = 0;
    for cells in series.values() {
        if cells.len() != k {
            continue; // incomplete series (filtered grids): skip
        }
        nseries += 1;
        let cap = tie_factor.and_then(|f| {
            cells
                .iter()
                .find(|c| c.ordering == "Gorder")
                .map(|g| g.seconds * f)
        });
        let mut timed: Vec<(f64, usize)> = cells
            .iter()
            .map(|c| {
                let t = match cap {
                    Some(cap) => c.seconds.min(cap),
                    None => c.seconds,
                };
                let idx = orderings
                    .iter()
                    .position(|o| *o == c.ordering)
                    .expect("known ordering");
                (t, idx)
            })
            .collect();
        timed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        // ties share the best rank of their group
        let mut rank = 0;
        let mut i = 0;
        while i < timed.len() {
            let mut j = i;
            while j < timed.len() && timed[j].0 == timed[i].0 {
                j += 1;
            }
            for &(_, o) in &timed[i..j] {
                counts[o][rank] += 1;
            }
            rank += j - i;
            i = j;
        }
    }
    Ranking {
        orderings,
        counts,
        series: nseries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(ds: &str, algo: &str, ord: &str, secs: f64) -> CellResult {
        CellResult {
            dataset: ds.into(),
            algo: algo.into(),
            ordering: ord.into(),
            seconds: secs,
            checksum: 0,
            stats: gorder_algos::KernelStats::default(),
        }
    }

    #[test]
    fn simple_ranking() {
        let cells = vec![
            cell("d", "A", "Gorder", 1.0),
            cell("d", "A", "Random", 3.0),
            cell("d", "A", "RCM", 1.5),
        ];
        let r = rank_counts(&cells, None);
        assert_eq!(r.series, 1);
        let g = r.index_of("Gorder").unwrap();
        let rc = r.index_of("RCM").unwrap();
        let rd = r.index_of("Random").unwrap();
        assert_eq!(r.counts[g], vec![1, 0, 0]);
        assert_eq!(r.counts[rc], vec![0, 1, 0]);
        assert_eq!(r.counts[rd], vec![0, 0, 1]);
        assert_eq!(r.firsts(g), 1);
    }

    #[test]
    fn tie_factor_merges_slow_tail() {
        let cells = vec![
            cell("d", "A", "Gorder", 1.0),
            cell("d", "A", "LDG", 2.0),
            cell("d", "A", "Random", 4.0),
        ];
        let r = rank_counts(&cells, Some(1.5));
        // LDG and Random both cap at 1.5 → tie at rank 1
        let l = r.index_of("LDG").unwrap();
        let rd = r.index_of("Random").unwrap();
        assert_eq!(r.counts[l][1], 1);
        assert_eq!(r.counts[rd][1], 1);
    }

    #[test]
    fn mean_rank_ordering() {
        let cells = vec![
            cell("d1", "A", "X", 1.0),
            cell("d1", "A", "Y", 2.0),
            cell("d2", "A", "X", 2.0),
            cell("d2", "A", "Y", 1.0),
        ];
        let r = rank_counts(&cells, None);
        assert_eq!(r.series, 2);
        let x = r.index_of("X").unwrap();
        assert!((r.mean_rank(x) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn incomplete_series_skipped() {
        let cells = vec![
            cell("d", "A", "X", 1.0),
            cell("d", "A", "Y", 2.0),
            cell("d", "B", "X", 1.0), // Y missing for (d, B)
        ];
        let r = rank_counts(&cells, None);
        assert_eq!(r.series, 1);
    }

    #[test]
    fn multiple_algorithms_count_separately() {
        let cells = vec![
            cell("d", "A", "X", 1.0),
            cell("d", "A", "Y", 2.0),
            cell("d", "B", "X", 3.0),
            cell("d", "B", "Y", 1.0),
        ];
        let r = rank_counts(&cells, None);
        assert_eq!(r.series, 2);
        let x = r.index_of("X").unwrap();
        assert_eq!(r.counts[x], vec![1, 1]);
    }
}
