//! Rank aggregation for Figure 6.
//!
//! For each experiment series (one algorithm on one dataset), orderings
//! are ranked by runtime, best first. Following the replication's reading
//! of the original paper's Figure 9 — which hides exact values above 1.5×
//! Gorder — runtimes can optionally be capped at `tie_factor ×` the
//! Gorder time before ranking, making everything beyond the cap tie.

use crate::experiment::CellResult;
use std::collections::BTreeMap;

/// Rank histogram over a set of series.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranking {
    /// Ordering names, in first-appearance order.
    pub orderings: Vec<String>,
    /// `counts[o][r]` = number of series where ordering `o` took rank `r`
    /// (0 = best). Ties share the best rank of the tied group.
    pub counts: Vec<Vec<u32>>,
    /// Number of series aggregated.
    pub series: u32,
    /// Series skipped because a `tie_factor` cap was requested but the
    /// series has no `"Gorder"` cell to anchor it. Ranking such a series
    /// uncapped would silently mix two different metrics into one
    /// histogram, so they are dropped and counted here instead.
    pub skipped_no_gorder: u32,
}

impl Ranking {
    /// Mean rank of ordering index `o` (lower is better).
    pub fn mean_rank(&self, o: usize) -> f64 {
        let total: u32 = self.counts[o].iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let weighted: f64 = self.counts[o]
            .iter()
            .enumerate()
            .map(|(r, &c)| r as f64 * f64::from(c))
            .sum();
        weighted / f64::from(total)
    }

    /// Number of first places for ordering index `o`.
    pub fn firsts(&self, o: usize) -> u32 {
        self.counts[o].first().copied().unwrap_or(0)
    }

    /// Index of an ordering by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.orderings.iter().position(|n| n == name)
    }
}

/// Sort/tie key that tolerates the non-finite times a timed-out robust
/// cell produces: finite times order normally; NaN and ±inf all collapse
/// into one group that sorts after every finite time. (Plain `total_cmp`
/// is not enough — it puts `-inf` *first* and breaks NaN tie-grouping,
/// since `NaN != NaN`.)
fn rank_key(t: f64) -> (u8, f64) {
    if t.is_finite() {
        (0, t)
    } else {
        (1, 0.0)
    }
}

/// Aggregates rank counts from grid cells.
///
/// `tie_factor`: if `Some(f)`, every runtime in a series is capped at
/// `f ×` that series' Gorder runtime before ranking (the replication uses
/// 1.5 when reading the original paper's figure). Series without a
/// `"Gorder"` cell cannot be capped and are skipped (see
/// [`Ranking::skipped_no_gorder`]); with `tie_factor: None` they rank
/// normally. Non-finite times (timed-out cells) never panic: they rank
/// last, tied with each other, and are exempt from the cap.
pub fn rank_counts(cells: &[CellResult], tie_factor: Option<f64>) -> Ranking {
    // group cells by (dataset, algo)
    let mut series: BTreeMap<(String, String), Vec<&CellResult>> = BTreeMap::new();
    let mut orderings: Vec<String> = Vec::new();
    for c in cells {
        if !orderings.contains(&c.ordering) {
            orderings.push(c.ordering.clone());
        }
        series
            .entry((c.dataset.clone(), c.algo.clone()))
            .or_default()
            .push(c);
    }
    let k = orderings.len();
    let mut counts = vec![vec![0u32; k]; k];
    let mut nseries = 0;
    let mut skipped_no_gorder = 0;
    for cells in series.values() {
        if cells.len() != k {
            continue; // incomplete series (filtered grids): skip
        }
        let gorder_secs = cells
            .iter()
            .find(|c| c.ordering == "Gorder")
            .map(|g| g.seconds);
        let cap = match (tie_factor, gorder_secs) {
            (Some(f), Some(g)) => Some(g * f),
            (Some(_), None) => {
                // A cap was requested but there is nothing to anchor it
                // to; ranking this series uncapped would corrupt the
                // histogram, so drop it and let the caller report it.
                skipped_no_gorder += 1;
                continue;
            }
            (None, _) => None,
        };
        nseries += 1;
        let mut timed: Vec<(f64, usize)> = cells
            .iter()
            .map(|c| {
                // Non-finite times (timed-out cells) stay non-finite so
                // they rank last; `f64::min` would silently swallow a
                // NaN into the cap.
                let t = match cap {
                    Some(cap) if c.seconds.is_finite() => c.seconds.min(cap),
                    _ => c.seconds,
                };
                let idx = orderings
                    .iter()
                    .position(|o| *o == c.ordering)
                    .expect("known ordering");
                (t, idx)
            })
            .collect();
        timed.sort_by(|a, b| {
            let (ka, kb) = (rank_key(a.0), rank_key(b.0));
            ka.0.cmp(&kb.0).then(ka.1.total_cmp(&kb.1))
        });
        // ties share the best rank of their group
        let mut rank = 0;
        let mut i = 0;
        while i < timed.len() {
            let mut j = i;
            while j < timed.len() && rank_key(timed[j].0) == rank_key(timed[i].0) {
                j += 1;
            }
            for &(_, o) in &timed[i..j] {
                counts[o][rank] += 1;
            }
            rank += j - i;
            i = j;
        }
    }
    Ranking {
        orderings,
        counts,
        series: nseries,
        skipped_no_gorder,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(ds: &str, algo: &str, ord: &str, secs: f64) -> CellResult {
        CellResult {
            dataset: ds.into(),
            algo: algo.into(),
            ordering: ord.into(),
            seconds: secs,
            checksum: 0,
            stats: gorder_algos::KernelStats::default(),
        }
    }

    #[test]
    fn simple_ranking() {
        let cells = vec![
            cell("d", "A", "Gorder", 1.0),
            cell("d", "A", "Random", 3.0),
            cell("d", "A", "RCM", 1.5),
        ];
        let r = rank_counts(&cells, None);
        assert_eq!(r.series, 1);
        let g = r.index_of("Gorder").unwrap();
        let rc = r.index_of("RCM").unwrap();
        let rd = r.index_of("Random").unwrap();
        assert_eq!(r.counts[g], vec![1, 0, 0]);
        assert_eq!(r.counts[rc], vec![0, 1, 0]);
        assert_eq!(r.counts[rd], vec![0, 0, 1]);
        assert_eq!(r.firsts(g), 1);
    }

    #[test]
    fn tie_factor_merges_slow_tail() {
        let cells = vec![
            cell("d", "A", "Gorder", 1.0),
            cell("d", "A", "LDG", 2.0),
            cell("d", "A", "Random", 4.0),
        ];
        let r = rank_counts(&cells, Some(1.5));
        // LDG and Random both cap at 1.5 → tie at rank 1
        let l = r.index_of("LDG").unwrap();
        let rd = r.index_of("Random").unwrap();
        assert_eq!(r.counts[l][1], 1);
        assert_eq!(r.counts[rd][1], 1);
    }

    #[test]
    fn mean_rank_ordering() {
        let cells = vec![
            cell("d1", "A", "X", 1.0),
            cell("d1", "A", "Y", 2.0),
            cell("d2", "A", "X", 2.0),
            cell("d2", "A", "Y", 1.0),
        ];
        let r = rank_counts(&cells, None);
        assert_eq!(r.series, 2);
        let x = r.index_of("X").unwrap();
        assert!((r.mean_rank(x) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn incomplete_series_skipped() {
        let cells = vec![
            cell("d", "A", "X", 1.0),
            cell("d", "A", "Y", 2.0),
            cell("d", "B", "X", 1.0), // Y missing for (d, B)
        ];
        let r = rank_counts(&cells, None);
        assert_eq!(r.series, 1);
    }

    #[test]
    fn nan_time_ranks_last_without_panicking() {
        // A timed-out robust cell reports a non-finite time; ranking the
        // grid used to panic inside `partial_cmp().expect("finite
        // times")`, losing the whole sweep.
        let cells = vec![
            cell("d", "A", "Gorder", 1.0),
            cell("d", "A", "RCM", 2.0),
            cell("d", "A", "Random", f64::NAN),
        ];
        let r = rank_counts(&cells, None);
        assert_eq!(r.series, 1);
        let g = r.index_of("Gorder").unwrap();
        let rc = r.index_of("RCM").unwrap();
        let rd = r.index_of("Random").unwrap();
        assert_eq!(r.counts[g], vec![1, 0, 0]);
        assert_eq!(r.counts[rc], vec![0, 1, 0]);
        assert_eq!(r.counts[rd], vec![0, 0, 1], "NaN must rank last");
    }

    #[test]
    fn all_non_finite_times_tie_last() {
        // NaN and ±inf all collapse into one tied last group — and the
        // cap must not swallow them (`NaN.min(cap)` returns `cap`).
        let cells = vec![
            cell("d", "A", "Gorder", 1.0),
            cell("d", "A", "X", f64::INFINITY),
            cell("d", "A", "Y", f64::NAN),
            cell("d", "A", "Z", f64::NEG_INFINITY),
        ];
        let r = rank_counts(&cells, Some(1.5));
        assert_eq!(r.series, 1);
        for name in ["X", "Y", "Z"] {
            let o = r.index_of(name).unwrap();
            assert_eq!(r.counts[o], vec![0, 1, 0, 0], "{name} must tie at rank 1");
        }
        assert_eq!(r.firsts(r.index_of("Gorder").unwrap()), 1);
    }

    #[test]
    fn missing_gorder_skipped_when_capped() {
        // A filtered grid (e.g. `--orderings Random,RCM`) has no Gorder
        // anchor anywhere; with a cap requested, every series used to be
        // silently ranked *uncapped* — now each is skipped and counted.
        let cells = vec![
            cell("d1", "A", "Random", 1.0),
            cell("d1", "A", "RCM", 2.0),
            cell("d2", "A", "Random", 4.0),
            cell("d2", "A", "RCM", 3.0),
        ];
        let r = rank_counts(&cells, Some(1.5));
        assert_eq!(r.series, 0);
        assert_eq!(r.skipped_no_gorder, 2);
        let total: u32 = r.counts.iter().flatten().sum();
        assert_eq!(total, 0, "skipped series must contribute no counts");
    }

    #[test]
    fn missing_gorder_ranks_normally_uncapped() {
        // With no tie factor there is nothing to anchor, so series
        // without Gorder rank as usual (the documented fallback).
        let cells = vec![cell("d", "A", "Random", 2.0), cell("d", "A", "RCM", 1.0)];
        let r = rank_counts(&cells, None);
        assert_eq!(r.series, 1);
        assert_eq!(r.skipped_no_gorder, 0);
        assert_eq!(r.firsts(r.index_of("RCM").unwrap()), 1);
    }

    #[test]
    fn multiple_algorithms_count_separately() {
        let cells = vec![
            cell("d", "A", "X", 1.0),
            cell("d", "A", "Y", 2.0),
            cell("d", "B", "X", 3.0),
            cell("d", "B", "Y", 1.0),
        ];
        let r = rank_counts(&cells, None);
        assert_eq!(r.series, 2);
        let x = r.index_of("X").unwrap();
        assert_eq!(r.counts[x], vec![1, 1]);
    }
}
