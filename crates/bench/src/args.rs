//! Minimal hand-rolled argument parsing shared by the experiment binaries
//! (no CLI dependency — the flags are few and fixed).

/// Common harness flags.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Dataset size multiplier (1.0 = DESIGN.md base sizes).
    pub scale: f64,
    /// Timing repetitions per cell (median is reported).
    pub reps: u32,
    /// Seed for every randomised component.
    pub seed: u64,
    /// Quick smoke-run mode: tiny datasets, light algorithm parameters.
    pub quick: bool,
    /// Per-cell watchdog deadline in seconds (`--cell-timeout`); `None`
    /// runs unguarded, preserving the historical fail-fast behaviour.
    pub cell_timeout: Option<f64>,
    /// Worker threads for the engine-backed kernels (`--threads`); 1 =
    /// serial. Parallel runs produce byte-identical results.
    pub threads: u32,
    /// JSONL trace destination (`--trace-out`); `None` writes no trace.
    /// The experiment binaries stream one event per finished cell here,
    /// so an interrupted sweep is reconstructable from disk.
    pub trace_out: Option<String>,
    /// Prior trace to resume from (`--resume`). Deliberately **not**
    /// part of the config hash: a resumed run is the same experiment.
    pub resume: Option<String>,
    /// Fault-injection spec (`--faults`, same grammar as
    /// `GORDER_FAULTS`). Not part of the config hash either — injected
    /// faults degrade how a run executes, never what it computes.
    pub faults: Option<String>,
    /// On-disk permutation cache directory (`--order-cache`). Not part
    /// of the config hash: cached and recomputed permutations are
    /// identical by construction, so a warm run is the same experiment.
    pub order_cache: Option<String>,
    /// Dataset-name filter (`--datasets a,b,…`); `None` = the binary's
    /// default set. Part of the config hash — it changes the grid.
    pub datasets: Option<Vec<String>>,
    /// Ordering-name filter (`--orderings a,b,…`); hashed like
    /// `datasets`.
    pub orderings: Option<Vec<String>>,
    /// Algorithm-name filter (`--algos a,b,…`); hashed like `datasets`.
    pub algos: Option<Vec<String>>,
    /// Extra free-standing flags the binary may interpret (e.g.
    /// `--by-ordering` for the S1 grouping).
    pub extra: Vec<String>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 0.25,
            reps: 3,
            seed: 42,
            quick: false,
            cell_timeout: None,
            threads: 1,
            trace_out: None,
            resume: None,
            faults: None,
            order_cache: None,
            datasets: None,
            orderings: None,
            algos: None,
            extra: Vec::new(),
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args()`. Unknown `--key value` pairs and bare
    /// flags land in `extra`.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = HarnessArgs::default();
        let mut it = args.into_iter().peekable();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    out.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--scale needs a positive number"));
                }
                "--reps" => {
                    out.reps = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--reps needs an integer"));
                }
                "--seed" => {
                    out.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--seed needs an integer"));
                }
                "--cell-timeout" => {
                    let secs: f64 = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        die("--cell-timeout needs a positive number of seconds")
                    });
                    if !secs.is_finite() || secs <= 0.0 {
                        die::<f64>("--cell-timeout must be positive");
                    }
                    out.cell_timeout = Some(secs);
                }
                "--threads" => {
                    let threads: u32 = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--threads needs a positive integer"));
                    if threads == 0 {
                        die::<u32>("--threads must be at least 1");
                    }
                    out.threads = threads;
                }
                "--trace-out" => {
                    out.trace_out =
                        Some(it.next().unwrap_or_else(|| die("--trace-out needs a path")));
                }
                "--resume" => {
                    out.resume = Some(it.next().unwrap_or_else(|| die("--resume needs a path")));
                }
                "--faults" => {
                    out.faults = Some(it.next().unwrap_or_else(|| die("--faults needs a spec")));
                }
                "--order-cache" => {
                    out.order_cache = Some(
                        it.next()
                            .unwrap_or_else(|| die("--order-cache needs a directory")),
                    );
                }
                "--datasets" => {
                    out.datasets = Some(parse_list(
                        it.next().unwrap_or_else(|| die("--datasets needs a list")),
                        "--datasets",
                    ));
                }
                "--orderings" => {
                    out.orderings = Some(parse_list(
                        it.next().unwrap_or_else(|| die("--orderings needs a list")),
                        "--orderings",
                    ));
                }
                "--algos" => {
                    out.algos = Some(parse_list(
                        it.next().unwrap_or_else(|| die("--algos needs a list")),
                        "--algos",
                    ));
                }
                "--quick" => {
                    out.quick = true;
                    out.scale = out.scale.min(0.05);
                    out.reps = 1;
                }
                "--full" => {
                    out.scale = 1.0;
                    out.reps = 5;
                }
                other => out.extra.push(other.to_string()),
            }
        }
        if out.scale <= 0.0 {
            die::<f64>("--scale must be positive");
        }
        out
    }

    /// True if an extra flag like `--by-ordering` was passed.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.extra.iter().any(|e| e == flag)
    }

    /// `--cell-timeout` as a [`std::time::Duration`], if given.
    pub fn cell_timeout_duration(&self) -> Option<std::time::Duration> {
        self.cell_timeout.map(std::time::Duration::from_secs_f64)
    }
}

fn die<T>(msg: &str) -> T {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

/// Splits a `--datasets`-style comma list, rejecting empty entries so a
/// typo like `a,,b` fails loudly instead of silently filtering nothing.
fn parse_list(raw: String, flag: &str) -> Vec<String> {
    let items: Vec<String> = raw.split(',').map(|s| s.trim().to_string()).collect();
    if items.iter().any(|s| s.is_empty()) {
        die::<()>(&format!("{flag} needs a non-empty comma-separated list"));
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> HarnessArgs {
        HarnessArgs::from_args(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, 0.25);
        assert_eq!(a.reps, 3);
        assert!(!a.quick);
    }

    #[test]
    fn scale_and_reps() {
        let a = parse(&["--scale", "0.5", "--reps", "7", "--seed", "9"]);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.reps, 7);
        assert_eq!(a.seed, 9);
    }

    #[test]
    fn quick_shrinks() {
        let a = parse(&["--quick"]);
        assert!(a.quick);
        assert!(a.scale <= 0.05);
        assert_eq!(a.reps, 1);
    }

    #[test]
    fn full_expands() {
        let a = parse(&["--full"]);
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.reps, 5);
    }

    #[test]
    fn cell_timeout_parses() {
        let a = parse(&["--cell-timeout", "2.5"]);
        assert_eq!(a.cell_timeout, Some(2.5));
        assert_eq!(
            a.cell_timeout_duration(),
            Some(std::time::Duration::from_millis(2500))
        );
        assert_eq!(parse(&[]).cell_timeout, None);
    }

    #[test]
    fn threads_parse() {
        assert_eq!(parse(&[]).threads, 1);
        assert_eq!(parse(&["--threads", "4"]).threads, 4);
    }

    #[test]
    fn trace_out_parses() {
        assert_eq!(parse(&[]).trace_out, None);
        let a = parse(&["--trace-out", "results/x.trace.jsonl", "--quick"]);
        assert_eq!(a.trace_out.as_deref(), Some("results/x.trace.jsonl"));
        assert!(a.quick, "flags after --trace-out still parse");
    }

    #[test]
    fn resume_and_faults_parse() {
        let a = parse(&["--resume", "results/t.jsonl", "--faults", "bench.cell=1+"]);
        assert_eq!(a.resume.as_deref(), Some("results/t.jsonl"));
        assert_eq!(a.faults.as_deref(), Some("bench.cell=1+"));
        assert_eq!(parse(&[]).resume, None);
        assert_eq!(parse(&[]).faults, None);
    }

    #[test]
    fn order_cache_parses() {
        let a = parse(&["--order-cache", "results/perm-cache"]);
        assert_eq!(a.order_cache.as_deref(), Some("results/perm-cache"));
        assert_eq!(parse(&[]).order_cache, None);
    }

    #[test]
    fn grid_filters_parse_as_comma_lists() {
        let a = parse(&[
            "--datasets",
            "epinion,flickr",
            "--orderings",
            "Original,Gorder",
            "--algos",
            "PR",
        ]);
        assert_eq!(
            a.datasets.as_deref(),
            Some(&["epinion".to_string(), "flickr".to_string()][..])
        );
        assert_eq!(
            a.orderings.as_deref(),
            Some(&["Original".to_string(), "Gorder".to_string()][..])
        );
        assert_eq!(a.algos.as_deref(), Some(&["PR".to_string()][..]));
        assert_eq!(parse(&[]).datasets, None);
    }

    #[test]
    fn extras_collected() {
        let a = parse(&["--by-ordering", "--scale", "0.1"]);
        assert!(a.has_flag("--by-ordering"));
        assert!(!a.has_flag("--nope"));
        assert_eq!(a.scale, 0.1);
    }
}
