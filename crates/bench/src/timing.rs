//! Wall-clock measurement helpers.
//!
//! The paper reports wall time of whole algorithm runs (seconds to
//! minutes), so plain `Instant` around the run is the right tool; medians
//! over a few repetitions absorb scheduler noise. Checksums returned by
//! the measured closures flow into a black-box sink so the optimiser
//! cannot delete the work.

use std::time::Instant;

/// Median of `reps` timed runs of `f`, in seconds, plus the checksum of
/// the last run.
pub fn median_secs<F: FnMut() -> u64>(mut f: F, reps: u32) -> (f64, u64) {
    assert!(reps >= 1, "need at least one repetition");
    let mut times = Vec::with_capacity(reps as usize);
    let mut checksum = 0;
    for _ in 0..reps {
        let start = Instant::now();
        checksum = std::hint::black_box(f());
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("elapsed times are finite"));
    (times[times.len() / 2], checksum)
}

/// Times a single run of `f` returning `(seconds, value)`.
pub fn time_once<T, F: FnOnce() -> T>(f: F) -> (f64, T) {
    let start = Instant::now();
    let v = f();
    (start.elapsed().as_secs_f64(), v)
}

/// Human-friendly duration: `421ms`, `3.2s`, `4m07s`.
pub fn pretty_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.0}ms", s * 1e3)
    } else if s < 60.0 {
        format!("{s:.1}s")
    } else {
        let m = (s / 60.0).floor();
        format!("{}m{:02.0}s", m as u64, s - m * 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_orders_runs() {
        let mut calls = 0;
        let (t, c) = median_secs(
            || {
                calls += 1;
                calls
            },
            5,
        );
        assert_eq!(calls, 5);
        assert_eq!(c, 5);
        assert!(t >= 0.0);
    }

    #[test]
    fn time_once_returns_value() {
        let (t, v) = time_once(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(t >= 0.0);
    }

    #[test]
    fn pretty_formats() {
        assert_eq!(pretty_secs(0.004), "4ms");
        assert_eq!(pretty_secs(3.25), "3.2s");
        assert_eq!(pretty_secs(247.0), "4m07s");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_reps_rejected() {
        median_secs(|| 0, 0);
    }
}
