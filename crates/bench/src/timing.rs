//! Wall-clock measurement helpers.
//!
//! The paper reports wall time of whole algorithm runs (seconds to
//! minutes), so plain `Instant` around the run is the right tool; medians
//! over a few repetitions absorb scheduler noise. Checksums returned by
//! the measured closures flow into a black-box sink so the optimiser
//! cannot delete the work.

use std::time::Instant;

/// Median of `reps` timed runs of `f`, in seconds, plus the checksum of
/// the last run.
pub fn median_secs<F: FnMut() -> u64>(mut f: F, reps: u32) -> (f64, u64) {
    assert!(reps >= 1, "need at least one repetition");
    let mut times = Vec::with_capacity(reps as usize);
    let mut checksum = 0;
    for _ in 0..reps {
        let start = Instant::now();
        checksum = std::hint::black_box(f());
        times.push(start.elapsed().as_secs_f64());
    }
    // `total_cmp`, not `partial_cmp().expect(...)`: a non-finite time
    // (possible once budgeted/robust paths flow through here) must not
    // panic mid-sweep and lose every other measurement.
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], checksum)
}

/// Times a single run of `f` returning `(seconds, value)`.
pub fn time_once<T, F: FnOnce() -> T>(f: F) -> (f64, T) {
    let start = Instant::now();
    let v = f();
    (start.elapsed().as_secs_f64(), v)
}

/// Human-friendly duration: `421ms`, `3.2s`, `4m07s`.
///
/// Values are bucketed *after* rounding to the bucket's display
/// precision, so a value that rounds up to the next unit carries into it
/// (`59.96` → `1m00s`, not `60.0s`; `119.995` → `2m00s`, not `1m60s`).
/// The carry checks compare the rendered text rather than pre-rounding
/// the float, so in-bucket values keep `format!`'s round-half-to-even
/// behaviour (`3.25` stays `3.2s`).
pub fn pretty_secs(s: f64) -> String {
    if !s.is_finite() {
        return format!("{s}s");
    }
    if s < 1.0 {
        let ms = format!("{:.0}", s * 1e3);
        if ms != "1000" {
            return format!("{ms}ms");
        }
        return "1.0s".to_string(); // 0.9996s renders as 1000ms: carry
    }
    if s < 60.0 {
        let secs = format!("{s:.1}");
        if secs != "60.0" {
            return format!("{secs}s");
        }
        return "1m00s".to_string(); // 59.96s renders as 60.0s: carry
    }
    let mut m = (s / 60.0).floor() as u64;
    let mut rem = format!("{:02.0}", s - (m as f64) * 60.0);
    if rem == "60" {
        m += 1; // 119.995s: the remainder rounds up to a whole minute
        rem = "00".to_string();
    }
    format!("{m}m{rem}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_orders_runs() {
        let mut calls = 0;
        let (t, c) = median_secs(
            || {
                calls += 1;
                calls
            },
            5,
        );
        assert_eq!(calls, 5);
        assert_eq!(c, 5);
        assert!(t >= 0.0);
    }

    #[test]
    fn time_once_returns_value() {
        let (t, v) = time_once(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(t >= 0.0);
    }

    #[test]
    fn pretty_formats() {
        assert_eq!(pretty_secs(0.004), "4ms");
        assert_eq!(pretty_secs(3.25), "3.2s");
        assert_eq!(pretty_secs(247.0), "4m07s");
    }

    #[test]
    fn pretty_carries_across_unit_boundaries() {
        // Each bucket's rounding used to be applied after bucketing,
        // producing "60.0s" and "1m60s" at the boundaries.
        assert_eq!(pretty_secs(0.9996), "1.0s");
        assert_eq!(pretty_secs(59.96), "1m00s");
        assert_eq!(pretty_secs(119.995), "2m00s");
        // Just inside each bucket nothing carries.
        assert_eq!(pretty_secs(0.9994), "999ms");
        assert_eq!(pretty_secs(59.94), "59.9s");
        assert_eq!(pretty_secs(119.4), "1m59s");
        assert_eq!(pretty_secs(60.0), "1m00s");
        assert_eq!(pretty_secs(1.0), "1.0s");
    }

    #[test]
    fn pretty_tolerates_non_finite() {
        assert_eq!(pretty_secs(f64::NAN), "NaNs");
        assert_eq!(pretty_secs(f64::INFINITY), "infs");
    }

    #[test]
    fn median_survives_non_finite_times() {
        // The sort must be total: push a NaN through the same comparator
        // the measurement path uses.
        let mut ts = [2.0, f64::NAN, 1.0];
        ts.sort_by(f64::total_cmp);
        assert_eq!(ts[0], 1.0);
        assert_eq!(ts[1], 2.0);
        assert!(ts[2].is_nan());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_reps_rejected() {
        median_secs(|| 0, 0);
    }
}
