//! Criterion micro-bench: CSR vs boxed adjacency lists (the replication's
//! Figure 2 rationale). Runs the NQ access pattern over both layouts —
//! CSR's shared arrays keep consecutive nodes' neighbour lists adjacent,
//! the `Vec<Vec<_>>` layout pays a pointer chase and heap scatter per
//! node.

use criterion::{criterion_group, criterion_main, Criterion};
use gorder_graph::{Graph, NodeId};
use std::hint::black_box;

fn nq_csr(g: &Graph, degree: &[u32]) -> u64 {
    let mut total = 0u64;
    for u in g.nodes() {
        for &v in g.out_neighbors(u) {
            total = total.wrapping_add(u64::from(degree[v as usize]));
        }
    }
    total
}

fn nq_adjlist(adj: &[Vec<NodeId>], degree: &[u32]) -> u64 {
    let mut total = 0u64;
    for list in adj {
        for &v in list {
            total = total.wrapping_add(u64::from(degree[v as usize]));
        }
    }
    total
}

fn bench_layouts(c: &mut Criterion) {
    let g = gorder_graph::datasets::flickr_like().build(0.2);
    let degree: Vec<u32> = g.nodes().map(|u| g.out_degree(u)).collect();
    let adj: Vec<Vec<NodeId>> = g.nodes().map(|u| g.out_neighbors(u).to_vec()).collect();
    assert_eq!(nq_csr(&g, &degree), nq_adjlist(&adj, &degree));

    let mut group = c.benchmark_group("graph_layout");
    group.sample_size(20);
    group.bench_function("csr", |b| {
        b.iter(|| black_box(nq_csr(black_box(&g), &degree)))
    });
    group.bench_function("adjacency_list", |b| {
        b.iter(|| black_box(nq_adjlist(black_box(&adj), &degree)))
    });
    group.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
