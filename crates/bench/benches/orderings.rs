//! Criterion micro-bench: ordering computation cost (Table 2 in
//! micro-benchmark form) on a small pokec-like graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_orderings(c: &mut Criterion) {
    let g = gorder_graph::datasets::pokec_like().build(0.05);
    let mut group = c.benchmark_group("ordering_time");
    group.sample_size(10);
    for o in gorder_orders::all(42) {
        group.bench_with_input(BenchmarkId::from_parameter(o.name()), &g, |b, g| {
            b.iter(|| black_box(o.compute(black_box(g))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orderings);
criterion_main!(benches);
