//! Criterion micro-bench: Gorder *computation* cost vs window size — the
//! other half of the Figure 4 trade-off (larger windows order better but
//! cost more to compute; the replication's §2.3 remark).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gorder_core::GorderBuilder;
use std::hint::black_box;

fn bench_window(c: &mut Criterion) {
    let g = gorder_graph::datasets::epinion_like().build(0.5);
    let mut group = c.benchmark_group("gorder_window");
    group.sample_size(10);
    for w in [1u32, 5, 64, 512] {
        let gorder = GorderBuilder::new().window(w).build();
        group.bench_with_input(BenchmarkId::from_parameter(w), &g, |b, g| {
            b.iter(|| black_box(gorder.compute(black_box(g))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_window);
criterion_main!(benches);
