//! Criterion micro-bench: sequential vs partition-parallel Gorder — the
//! time side of the parallelisation trade-off (quality is covered by the
//! `gorder-core::parallel` tests and the ablation binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gorder_core::Gorder;
use gorder_orders::ParallelGorder;
use std::hint::black_box;

fn bench_parallel(c: &mut Criterion) {
    let g = gorder_graph::datasets::pokec_like().build(0.15);
    let mut group = c.benchmark_group("gorder_parallel");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        let gorder = Gorder::with_defaults();
        b.iter(|| black_box(gorder.compute(black_box(&g))))
    });
    for p in [2u32, 4, 8] {
        group.bench_with_input(BenchmarkId::new("partitions", p), &g, |b, g| {
            let gorder = ParallelGorder::with_defaults(p);
            b.iter(|| black_box(gorder.compute(black_box(g))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
