//! Criterion micro-bench: every benchmark algorithm under the Original
//! order vs Gorder (Figure 5 in micro-benchmark form) on a small
//! flickr-like graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gorder_algos::RunCtx;
use gorder_core::Gorder;
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let g = gorder_graph::datasets::flickr_like().build(0.05);
    let perm = Gorder::with_defaults().compute(&g);
    let reordered = g.relabel(&perm);
    let source = g.max_degree_node().unwrap_or(0);
    let ctx_orig = RunCtx {
        source: Some(source),
        pr_iterations: 10,
        diameter_samples: 2,
        ..Default::default()
    };
    let ctx_gord = RunCtx {
        source: Some(perm.apply(source)),
        ..ctx_orig.clone()
    };

    let mut group = c.benchmark_group("algorithm_runtime");
    group.sample_size(10);
    for a in gorder_algos::all() {
        group.bench_with_input(
            BenchmarkId::new(a.name(), "Original"),
            &(&g, &ctx_orig),
            |b, (g, ctx)| b.iter(|| black_box(a.run(black_box(g), ctx))),
        );
        group.bench_with_input(
            BenchmarkId::new(a.name(), "Gorder"),
            &(&reordered, &ctx_gord),
            |b, (g, ctx)| b.iter(|| black_box(a.run(black_box(g), ctx))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
