//! Criterion micro-bench: cache-simulator throughput, with and without
//! the next-line prefetcher, replaying PageRank. (The *effect* of the
//! prefetcher on miss rates is asserted in `gorder-cachesim`'s tests;
//! this measures the simulator itself, which the grid harness leans on.)

use criterion::{criterion_group, criterion_main, Criterion};
use gorder_cachesim::trace::{pagerank, TraceCtx};
use gorder_cachesim::{CacheHierarchy, HierarchyConfig, Tracer};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let g = gorder_graph::datasets::epinion_like().build(0.5);
    let ctx = TraceCtx {
        pr_iterations: 2,
        ..Default::default()
    };
    let mut group = c.benchmark_group("cachesim_pr");
    group.sample_size(10);
    for (name, prefetch) in [("no_prefetch", false), ("next_line", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = HierarchyConfig::scaled_down();
                cfg.prefetch_next_line = prefetch;
                let mut t = Tracer::new(CacheHierarchy::new(&cfg));
                pagerank(black_box(&g), &mut t, &ctx);
                black_box(t.stats().l1_refs)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
