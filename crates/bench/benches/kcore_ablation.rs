//! Criterion micro-bench: bucket-queue vs binary-heap k-core peeling —
//! the ablation invited by the replication's "binary heap … quasi-linear"
//! implementation note (DESIGN.md §8).

use criterion::{criterion_group, criterion_main, Criterion};
use gorder_algos::kcore::{kcore, kcore_binary_heap};
use std::hint::black_box;

fn bench_kcore(c: &mut Criterion) {
    let g = gorder_graph::datasets::pokec_like().build(0.1);
    let mut group = c.benchmark_group("kcore");
    group.sample_size(10);
    group.bench_function("bucket_queue", |b| {
        b.iter(|| black_box(kcore(black_box(&g))))
    });
    group.bench_function("binary_heap", |b| {
        b.iter(|| black_box(kcore_binary_heap(black_box(&g))))
    });
    group.finish();
}

criterion_group!(benches, bench_kcore);
criterion_main!(benches);
