//! Criterion micro-bench: the unit heap vs `std::collections::BinaryHeap`
//! on Gorder's actual update mix (many ±1 updates per pop) — the ablation
//! justifying the paper's custom priority structure.

use criterion::{criterion_group, criterion_main, Criterion};
use gorder_core::UnitHeap;
use std::collections::BinaryHeap;
use std::hint::black_box;

const N: u32 = 10_000;
const UPDATES_PER_POP: usize = 32;

/// Deterministic pseudo-random index stream.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn unit_heap_workload() -> u64 {
    let mut h = UnitHeap::new(N);
    let mut state = 0xABCDu64;
    let mut acc = 0u64;
    while let Some(u) = h.pop_max() {
        acc = acc.wrapping_add(u64::from(u));
        for _ in 0..UPDATES_PER_POP {
            let v = (xorshift(&mut state) % u64::from(N)) as u32;
            h.increment(v);
        }
    }
    acc
}

/// Same workload with a lazy binary heap (stale entries skipped on pop).
fn binary_heap_workload() -> u64 {
    let mut keys = vec![0u32; N as usize];
    let mut alive = vec![true; N as usize];
    let mut heap: BinaryHeap<(u32, u32)> = (0..N).map(|u| (0, u)).collect();
    let mut state = 0xABCDu64;
    let mut acc = 0u64;
    let mut remaining = N;
    while remaining > 0 {
        let (k, u) = heap.pop().expect("entries remain while nodes alive");
        if !alive[u as usize] || k != keys[u as usize] {
            continue;
        }
        alive[u as usize] = false;
        remaining -= 1;
        acc = acc.wrapping_add(u64::from(u));
        for _ in 0..UPDATES_PER_POP {
            let v = (xorshift(&mut state) % u64::from(N)) as usize;
            if alive[v] {
                keys[v] += 1;
                heap.push((keys[v], v as u32));
            }
        }
    }
    acc
}

fn bench_unitheap(c: &mut Criterion) {
    let mut group = c.benchmark_group("priority_queue");
    group.sample_size(10);
    group.bench_function("unit_heap", |b| b.iter(|| black_box(unit_heap_workload())));
    group.bench_function("lazy_binary_heap", |b| {
        b.iter(|| black_box(binary_heap_workload()))
    });
    group.finish();
}

criterion_group!(benches, bench_unitheap);
criterion_main!(benches);
