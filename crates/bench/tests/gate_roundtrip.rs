//! End-to-end tests for the `gate` binary: the baseline workflow
//! (`--update`, compare, exit codes), byte-identical re-runs, the
//! injected-regression self-test, and rejection of unusable baselines
//! with the validate-trace error conventions (line + byte offset,
//! `config_hash mismatch` → exit 2, like `--resume`).

use std::path::{Path, PathBuf};
use std::process::Command;

/// A deliberately tiny sim grid; `--scale` is passed explicitly so the
/// binary takes it over its pinned default.
const GRID: &[&str] = &[
    "--scale",
    "0.02",
    "--seed",
    "7",
    "--datasets",
    "epinion",
    "--orderings",
    "Original,Gorder",
    "--algos",
    "NQ",
];

fn gate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gate"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gorder-gate-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_in(dir: &Path, extra: &[&str]) -> std::process::Output {
    gate()
        .args(GRID)
        .args(extra)
        .current_dir(dir)
        .output()
        .expect("spawn gate")
}

#[test]
fn baseline_workflow_roundtrips_byte_for_byte() {
    let dir = scratch("workflow");

    // no baseline yet: unusable invocation, not a regression
    let out = run_in(&dir, &[]);
    assert_eq!(out.status.code(), Some(2), "missing baseline must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--update"), "hint the fix: {stderr}");

    // create it
    let out = run_in(&dir, &["--update"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let baseline = std::fs::read(dir.join("BENCH_gate.json")).expect("baseline written");

    // a fresh run must reproduce the baseline byte-for-byte and pass
    let out = run_in(&dir, &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));
    let rerun = std::fs::read(dir.join("results/BENCH_gate.json")).expect("report written");
    assert_eq!(
        baseline, rerun,
        "sim reports must be byte-identical across runs"
    );

    // lossless round trip through the parser
    let text = String::from_utf8(baseline).unwrap();
    let report = gorder_bench::gate::parse_report(&text).expect("own output parses");
    assert_eq!(gorder_bench::gate::render_report(&report), text);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_regression_trips_the_gate_with_a_delta_table() {
    let dir = scratch("inject");
    assert_eq!(run_in(&dir, &["--update"]).status.code(), Some(0));

    // shrinking Gorder's window to 1 degrades its locality: counters
    // shift, the gate must exit 1 and name the offending cells
    let out = run_in(&dir, &["--gorder-window", "1"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "an injected regression must fail the gate: {out:?}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    for col in [
        "dataset", "ordering", "algo", "metric", "epinion", "Gorder", "NQ",
    ] {
        assert!(
            stdout.contains(col),
            "delta table missing {col:?}:\n{stdout}"
        );
    }
    assert!(
        !stdout.contains("Original"),
        "Original cells are untouched by the hook and must not be flagged:\n{stdout}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mismatched_config_hash_exits_2() {
    let dir = scratch("hash");
    assert_eq!(run_in(&dir, &["--update"]).status.code(), Some(0));

    // a different seed is a different experiment: refuse to compare
    let out = gate()
        .args(["--scale", "0.02", "--seed", "8"])
        .args(&GRID[4..]) // datasets/orderings/algos unchanged
        .current_dir(&dir)
        .output()
        .expect("spawn gate");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("config_hash mismatch"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_or_truncated_baselines_are_rejected_with_offsets() {
    let dir = scratch("corrupt");
    assert_eq!(run_in(&dir, &["--update"]).status.code(), Some(0));
    let path = dir.join("BENCH_gate.json");
    let good = std::fs::read_to_string(&path).unwrap();

    // corruption mid-file: garbage replacing line 2
    let manifest_len = good.find('\n').unwrap() + 1;
    std::fs::write(&path, format!("{}garbage\n", &good[..manifest_len])).unwrap();
    let out = run_in(&dir, &[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains(&format!("line 2 (byte offset {manifest_len})")),
        "error must name line and byte offset: {stderr}"
    );

    // truncation: a final line missing its newline (torn write)
    std::fs::write(&path, good.trim_end()).unwrap();
    let out = run_in(&dir, &[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("truncated"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_flags_and_names_exit_2() {
    let dir = scratch("flags");
    let out = run_in(&dir, &["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));

    let out = gate()
        .args(["--datasets", "atlantis", "--update"])
        .current_dir(&dir)
        .output()
        .expect("spawn gate");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));

    let _ = std::fs::remove_dir_all(&dir);
}
