//! Property tests for the regression gate's paired statistics
//! (`gorder_bench::stats`). Three contracts matter for a gate that CI
//! trusts: the verdict must not depend on the order samples happened to
//! arrive in, it must be *exactly* antisymmetric under swapping baseline
//! and candidate (no "A beats B and B beats A" flukes from floating
//! point), and identical samples must never be called a regression.

use gorder_bench::stats::{paired_stats, Verdict};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Millisecond-ish integers → strictly positive seconds; keeps the
/// generated samples inside the range `paired_stats` accepts.
fn split(raw: &[(u64, u64)]) -> (Vec<f64>, Vec<f64>) {
    let a = raw.iter().map(|p| p.0 as f64 / 1e3).collect();
    let b = raw.iter().map(|p| p.1 as f64 / 1e3).collect();
    (a, b)
}

proptest! {
    // Reordering the pairs changes nothing — statistics and verdict are
    // functions of the pair multiset only.
    #[test]
    fn verdict_is_invariant_under_pair_permutation(
        raw in vec((1u64..1_000_000, 1u64..1_000_000), 1..40),
        shuffle_seed in 0u64..u64::MAX,
        threshold_milli in 0u64..30_000,
    ) {
        let (a, b) = split(&raw);
        let s0 = paired_stats(&a, &b);
        let mut shuffled = raw.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
        let (pa, pb) = split(&shuffled);
        let s1 = paired_stats(&pa, &pb);
        prop_assert_eq!(s0.clone(), s1.clone());
        let t = threshold_milli as f64 / 1e3;
        prop_assert_eq!(s0.verdict(t), s1.verdict(t));
    }

    // Swapping A and B negates the effect exactly and mirrors the
    // verdict: a regression seen one way is the same-sized improvement
    // seen the other way, bit for bit.
    #[test]
    fn swap_is_exactly_antisymmetric(
        raw in vec((1u64..1_000_000, 1u64..1_000_000), 1..40),
        threshold_milli in 0u64..30_000,
    ) {
        let (a, b) = split(&raw);
        let ab = paired_stats(&a, &b);
        let ba = paired_stats(&b, &a);
        prop_assert_eq!(ab.median_log_ratio, -ba.median_log_ratio);
        prop_assert_eq!(ab.sign_p, ba.sign_p);
        prop_assert_eq!(ab.ci_lo, -ba.ci_hi);
        prop_assert_eq!(ab.ci_hi, -ba.ci_lo);
        prop_assert_eq!(ab.pairs, ba.pairs);
        prop_assert_eq!(ab.wins_b_slower, ba.wins_b_faster);
        prop_assert_eq!(ab.wins_b_faster, ba.wins_b_slower);
        let t = threshold_milli as f64 / 1e3;
        let mirrored = match ba.verdict(t) {
            Verdict::Regression => Verdict::Improvement,
            Verdict::Improvement => Verdict::Regression,
            Verdict::NoChange => Verdict::NoChange,
        };
        prop_assert_eq!(ab.verdict(t), mirrored);
    }

    // A byte-identical A/B comparison is never a regression — not even
    // at a zero threshold.
    #[test]
    fn identical_samples_are_never_a_regression(
        raw in vec(1u64..1_000_000, 1..40),
        threshold_milli in 0u64..30_000,
    ) {
        let a: Vec<f64> = raw.iter().map(|&v| v as f64 / 1e3).collect();
        let s = paired_stats(&a, &a);
        prop_assert_eq!(s.median_log_ratio, 0.0);
        prop_assert_eq!(s.sign_p, 1.0);
        prop_assert_eq!((s.ci_lo, s.ci_hi), (0.0, 0.0));
        prop_assert_eq!(s.verdict(0.0), Verdict::NoChange);
        prop_assert_eq!(s.verdict(threshold_milli as f64 / 1e3), Verdict::NoChange);
    }

    // Re-evaluating the same samples reproduces the same statistics
    // (seeded bootstrap), p is a probability, and the interval is an
    // interval.
    #[test]
    fn statistics_are_deterministic_and_well_formed(
        raw in vec((1u64..1_000_000, 1u64..1_000_000), 1..40),
    ) {
        let (a, b) = split(&raw);
        let s1 = paired_stats(&a, &b);
        let s2 = paired_stats(&a, &b);
        prop_assert_eq!(s1.clone(), s2);
        prop_assert!(s1.sign_p > 0.0 && s1.sign_p <= 1.0);
        prop_assert!(s1.ci_lo <= s1.ci_hi);
        prop_assert_eq!(s1.pairs as usize, raw.len());
        prop_assert_eq!(s1.skipped, 0);
    }
}
