//! Regression test for the watchdog thread leak (own binary: the
//! abandoned-worker registry is process-global, and other tests abandon
//! never-terminating workers that would make its counts meaningless).
//!
//! `run_guarded` used to `drop()` the handle of a worker that outlived
//! its grace periods, detaching the thread forever — a sweep full of
//! timeouts accumulated runaway threads and their captured graphs until
//! process exit. Abandoned handles now land in a registry and are
//! joined by `reap_abandoned()` once the worker honours its cancelled
//! budget and returns.

use gorder_bench::{abandoned_count, reap_abandoned, run_guarded};
use gorder_core::budget::ExecOutcome;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn timed_out_worker_is_joined_once_it_honours_cancel() {
    let finished = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&finished);
    let out: ExecOutcome<u32> = run_guarded(Some(Duration::from_millis(10)), move |budget| {
        // too slow for the watchdog's two 250 ms grace periods, but not
        // a runaway: it checks the cancel flag when it finally wakes
        while !budget.is_cancelled() {
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(700));
        flag.store(true, Ordering::SeqCst);
        ExecOutcome::Completed(0)
    });
    assert_eq!(out, ExecOutcome::TimedOut);
    assert_eq!(
        abandoned_count(),
        1,
        "the abandoned handle is parked, not dropped"
    );

    // once the worker returns, a reap must join it and drain the registry
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut reaped = 0usize;
    while reaped == 0 {
        assert!(Instant::now() < deadline, "abandoned worker never reaped");
        std::thread::sleep(Duration::from_millis(25));
        reaped = reap_abandoned();
    }
    assert!(
        finished.load(Ordering::SeqCst),
        "worker actually terminated"
    );
    assert_eq!(abandoned_count(), 0, "registry drained");

    // and the next guarded call starts from a clean registry
    let out = run_guarded(Some(Duration::from_secs(5)), |_b| {
        ExecOutcome::Completed(1u32)
    });
    assert_eq!(out, ExecOutcome::Completed(1));
    assert_eq!(abandoned_count(), 0);
}
