//! Warm permutation-cache behaviour of the guarded grid: a second sweep
//! over the same configuration recomputes **zero** orderings — every
//! resolution is a cache hit — and its usable cells match the cold run's
//! exactly (simulated mode is deterministic, so equality is bitwise).

use gorder_bench::robust::{run_grid_robust_full, OrderHooks};
use gorder_bench::{GridConfig, SweepReport};
use gorder_graph::datasets::epinion_like;
use gorder_obs::OrderEvent;
use gorder_orders::OrderCache;
use std::fs;
use std::path::PathBuf;
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gorder-warm-cache-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg() -> GridConfig {
    GridConfig {
        scale: 0.02,
        reps: 1,
        seed: 11,
        quick: true,
        datasets: vec![epinion_like()],
        orderings: Some(vec!["Original".into(), "ChDFS".into(), "Gorder".into()]),
        algos: Some(vec!["NQ".into(), "BFS".into()]),
        extended: false,
        threads: 1,
    }
}

fn sweep(cache: &OrderCache) -> (SweepReport, Vec<OrderEvent>) {
    let mut events = Vec::new();
    let mut on_order = |e: &OrderEvent| events.push(e.clone());
    let mut hooks = OrderHooks {
        cache: Some(cache),
        seed: cfg().seed,
        on_order: &mut on_order,
    };
    let report = run_grid_robust_full(
        &cfg(),
        Some(Duration::from_secs(120)),
        true, // simulated mode: deterministic seconds
        None,
        Some(&mut hooks),
        &mut |_| {},
    );
    (report, events)
}

#[test]
fn second_sweep_hits_cache_for_every_ordering_and_matches() {
    let dir = tmpdir("grid");
    let cache = OrderCache::new(&dir).unwrap();

    let (cold, cold_events) = sweep(&cache);
    assert_eq!(cold_events.len(), 3, "one order event per ordering");
    assert!(
        cold_events.iter().all(|e| !e.cache_hit),
        "cold run computes everything"
    );
    assert!(
        cold_events.iter().all(|e| e.status == "completed"),
        "tiny grid completes"
    );

    let (warm, warm_events) = sweep(&cache);
    assert_eq!(warm_events.len(), 3);
    assert!(
        warm_events.iter().all(|e| e.cache_hit),
        "warm run recomputes zero orderings: {warm_events:?}"
    );

    // Same identities resolved in the same order, and identical results.
    for (c, w) in cold_events.iter().zip(&warm_events) {
        assert_eq!(c.identity, w.identity);
        assert_eq!(c.graph_digest, w.graph_digest);
        assert_eq!(w.nodes_placed, c.nodes_placed);
    }
    let (cu, wu) = (cold.usable(), warm.usable());
    assert_eq!(cu.len(), wu.len());
    for (c, w) in cu.iter().zip(&wu) {
        assert_eq!(c.dataset, w.dataset);
        assert_eq!(c.ordering, w.ordering);
        assert_eq!(c.algo, w.algo);
        assert_eq!(c.checksum, w.checksum, "{}/{}", c.ordering, c.algo);
        assert_eq!(
            c.seconds, w.seconds,
            "simulated seconds are deterministic for {}/{}",
            c.ordering, c.algo
        );
    }
    let _ = fs::remove_dir_all(&dir);
}
