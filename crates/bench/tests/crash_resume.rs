//! The tentpole acceptance test: SIGKILL a sweep mid-grid, resume it,
//! and require the final CSV to be **byte-identical** to an
//! uninterrupted run's.
//!
//! Runs the real `fig5` binary three times in scratch directories:
//!
//! 1. a clean run (the reference CSV);
//! 2. a run with the deterministic `bench.cell` slow-down fault armed on
//!    **exactly the fourth cell** (a ~10-minute sleep, far beyond any
//!    plausible test duration) that is SIGKILLed once the first three
//!    `row` lines reach the trace — at that point the child is
//!    necessarily alive inside cell four's sleep, so there is no window
//!    in which "observed enough rows" and "child still running" can
//!    disagree, however stalled the host;
//! 3. a `--resume` run over the killed run's trace.
//!
//! fig5 defaults to simulated (modelled) time, so cell seconds are
//! deterministic and byte-identical CSVs are actually achievable; the
//! injected sleeps never touch the modelled numbers.

use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Grid flags shared by all three runs. `--resume`/`--faults` are not
/// part of the config hash, so the resumed run hash-matches the trace.
const GRID: &[&str] = &[
    "--quick",
    "--scale",
    "0.02",
    "--seed",
    "7",
    "--cell-timeout",
    "60",
    "--datasets",
    "epinion",
    "--orderings",
    "Original,ChDFS,Gorder",
    "--algos",
    "NQ,BFS",
];
const TOTAL_CELLS: usize = 6; // 1 dataset × 3 orderings × 2 algos

fn fig5() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fig5"))
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gorder-crash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn row_lines(path: &Path) -> usize {
    std::fs::read_to_string(path)
        .map(|t| t.lines().filter(|l| l.contains("\"kind\":\"row\"")).count())
        .unwrap_or(0)
}

#[test]
fn sigkill_mid_sweep_then_resume_reproduces_the_csv_byte_for_byte() {
    // 1. clean reference run
    let clean = scratch("clean");
    let status = fig5()
        .args(GRID)
        .args(["--trace-out", "trace.jsonl"])
        .current_dir(&clean)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn clean fig5");
    assert!(status.success(), "clean run failed: {status}");
    let reference = std::fs::read(clean.join("results/fig5.csv")).expect("clean CSV");

    // 2. run with cell four blocked, SIGKILLed once three rows are on
    // disk. Only cell four sleeps (`site=4`, not `1+`): cells 1–3 finish
    // at full speed, then the sweep parks in a sleep orders of magnitude
    // longer than the poll deadline. When the third row appears the
    // child cannot have produced a fourth — no timing assumption needed.
    let crashed = scratch("crashed");
    let mut child = fig5()
        .args(GRID)
        .args(["--trace-out", "trace.jsonl"])
        .args(["--faults", "bench.cell=4,slow_ms=600000"])
        .current_dir(&crashed)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn slowed fig5");
    let trace = crashed.join("trace.jsonl");
    let deadline = Instant::now() + Duration::from_secs(60);
    while row_lines(&trace) < 3 {
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "sweep exited before its blocked cell — slow-cell fault not armed?"
        );
        assert!(Instant::now() < deadline, "no rows appeared in 60 s");
        std::thread::sleep(Duration::from_millis(25));
    }
    child.kill().expect("SIGKILL");
    let _ = child.wait();
    let rows_at_kill = row_lines(&trace);
    assert_eq!(
        rows_at_kill, 3,
        "cell four sleeps for minutes: exactly the first three rows can exist"
    );
    assert!(rows_at_kill < TOTAL_CELLS, "died mid-grid by construction");
    assert!(
        !crashed.join("results/fig5.csv").exists(),
        "a killed sweep must not leave a partial CSV (atomic rename)"
    );

    // 3. resume over the killed run's trace
    let status = fig5()
        .args(GRID)
        .args(["--resume", "trace.jsonl", "--trace-out", "trace2.jsonl"])
        .current_dir(&crashed)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn resumed fig5");
    assert!(status.success(), "resumed run failed: {status}");
    let resumed = std::fs::read(crashed.join("results/fig5.csv")).expect("resumed CSV");
    assert_eq!(
        String::from_utf8_lossy(&reference),
        String::from_utf8_lossy(&resumed),
        "resumed CSV differs from the uninterrupted run's"
    );
    assert_eq!(reference, resumed, "byte-identical, not just textually");

    // the resumed trace re-emits every recovered row, so a second
    // resume (crash during resume) would recover from it just the same
    assert_eq!(row_lines(&crashed.join("trace2.jsonl")), TOTAL_CELLS);

    let _ = std::fs::remove_dir_all(&clean);
    let _ = std::fs::remove_dir_all(&crashed);
}

#[test]
fn resume_refuses_a_differently_configured_trace() {
    let dir = scratch("mismatch");
    // write a trace under one grid...
    let status = fig5()
        .args(GRID)
        .args(["--trace-out", "trace.jsonl"])
        .current_dir(&dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn fig5");
    assert!(status.success());
    // ...then try to resume it under a different seed: must exit 2
    let mut other: Vec<&str> = GRID.to_vec();
    let seed_at = other.iter().position(|a| *a == "7").unwrap();
    other[seed_at] = "8";
    let out = fig5()
        .args(&other)
        .args(["--resume", "trace.jsonl"])
        .current_dir(&dir)
        .stdout(Stdio::null())
        .output()
        .expect("spawn mismatched fig5");
    assert_eq!(out.status.code(), Some(2), "config mismatch must be fatal");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("config_hash mismatch"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
