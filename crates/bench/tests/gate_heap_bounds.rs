//! The anti-regression bound for the coalesced-delta optimisation: every
//! Gorder `order` record in the committed sim-gate baseline must carry at
//! least 25% less unit-heap traffic (increments + decrements) than the
//! pre-optimisation values pinned in `tests/golden/gate_heap_bounds.txt`.
//!
//! The required `gate-sim` CI job runs this test *and* proves the
//! regenerated report is byte-identical to the committed baseline, so a
//! change that quietly reverts to per-unit heap updates cannot land: it
//! would either fail the byte-compare (stale baseline) or fail here
//! (regenerated baseline above the bound).

use gorder_bench::gate::parse_report;
use std::collections::BTreeMap;
use std::path::Path;

/// Fraction of the pre-optimisation traffic the baseline may still use.
const MAX_FRACTION: f64 = 0.75;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/bench sits two levels under the repo root")
}

fn read(rel: &str) -> String {
    let path = repo_root().join(rel);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing committed file {}: {e}", path.display()))
}

/// `(dataset, ordering) → pre-optimisation increments + decrements`.
fn bounds() -> BTreeMap<(String, String), u64> {
    read("tests/golden/gate_heap_bounds.txt")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut f = l.split_whitespace();
            let dataset = f.next().expect("dataset field").to_string();
            let ordering = f.next().expect("ordering field").to_string();
            let traffic: u64 = f
                .next()
                .expect("traffic field")
                .parse()
                .expect("traffic is an unsigned integer");
            assert!(f.next().is_none(), "unexpected extra field in {l:?}");
            ((dataset, ordering), traffic)
        })
        .collect()
}

#[test]
fn committed_gorder_heap_traffic_stays_under_the_pre_coalescing_bound() {
    let report = parse_report(&read("BENCH_gate.json")).expect("committed baseline parses");
    let bounds = bounds();
    let mut matched = 0usize;
    for o in report.orders.iter().filter(|o| o.name == "Gorder") {
        let dataset = o.dataset.clone().unwrap_or_default();
        let pre = bounds
            .get(&(dataset.clone(), o.name.clone()))
            .unwrap_or_else(|| {
                panic!(
                    "Gorder cell {dataset:?} missing from gate_heap_bounds.txt — \
                     add its pre-optimisation traffic so the bound covers it"
                )
            });
        let cur = o.heap_increments + o.heap_decrements;
        let cap = (*pre as f64 * MAX_FRACTION) as u64;
        assert!(
            cur <= cap,
            "{dataset}/Gorder heap traffic regressed: {cur} inc+dec exceeds \
             {cap} (= {MAX_FRACTION} × pre-coalescing {pre}); the build loop \
             must keep issuing one net update per touched candidate"
        );
        assert!(cur > 0, "{dataset}/Gorder reports zero heap traffic");
        matched += 1;
    }
    assert_eq!(
        matched,
        bounds.len(),
        "baseline does not cover every bounded cell — grid and fixture drifted"
    );
}
