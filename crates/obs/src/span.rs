//! RAII span timers. A [`Span`] starts a wall-clock timer when created
//! and records the elapsed seconds into its [`Registry`]
//! when dropped, aggregated per name — so timing a phase is one line:
//!
//! ```
//! let reg = gorder_obs::Registry::new();
//! {
//!     let _t = reg.span("phase.demo");
//!     // ... timed work ...
//! }
//! let snap = reg.snapshot();
//! assert!(snap.spans.iter().any(|(n, s)| n == "phase.demo" && s.count == 1));
//! ```

use std::time::Instant;

use crate::registry::Registry;

/// A live span timer; dropping it records the duration. Obtain one via
/// [`Registry::span`] or the free function [`crate::span()`].
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span<'r, 'n> {
    reg: &'r Registry,
    name: &'n str,
    start: Instant,
    done: bool,
}

impl<'r, 'n> Span<'r, 'n> {
    pub(crate) fn start(reg: &'r Registry, name: &'n str) -> Self {
        Span {
            reg,
            name,
            start: Instant::now(),
            done: false,
        }
    }

    /// Seconds elapsed so far without ending the span.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Ends the span now and returns its duration in seconds. Useful
    /// when the caller also wants the number (e.g. to put in a trace
    /// event) without timing the same region twice.
    pub fn finish(mut self) -> f64 {
        let secs = self.elapsed_secs();
        self.reg.span_record(self.name, secs);
        self.done = true;
        secs
    }

    /// Drops the span without recording anything — for abandoned work
    /// that should not pollute the aggregate (e.g. a timed-out phase
    /// measured separately by the budget machinery).
    pub fn cancel(mut self) {
        self.done = true;
    }
}

impl Drop for Span<'_, '_> {
    fn drop(&mut self) {
        if !self.done {
            self.reg
                .span_record(self.name, self.start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    #[test]
    fn drop_records_once() {
        let reg = Registry::new();
        {
            let _t = reg.span("s");
        }
        let snap = reg.snapshot();
        let (_, s) = snap.spans.iter().find(|(n, _)| n == "s").unwrap();
        assert_eq!(s.count, 1);
        assert!(s.total_secs >= 0.0);
    }

    #[test]
    fn finish_returns_duration_and_records() {
        let reg = Registry::new();
        let t = reg.span("f");
        let secs = t.finish();
        assert!(secs >= 0.0);
        let snap = reg.snapshot();
        let (_, s) = snap.spans.iter().find(|(n, _)| n == "f").unwrap();
        assert_eq!(s.count, 1, "finish must not double-record via Drop");
    }

    #[test]
    fn cancel_records_nothing() {
        let reg = Registry::new();
        reg.span("c").cancel();
        assert!(reg.snapshot().spans.iter().all(|(n, _)| n != "c"));
    }

    #[test]
    fn nested_spans_aggregate_by_name() {
        let reg = Registry::new();
        {
            let _outer = reg.span("outer");
            for _ in 0..3 {
                let _inner = reg.span("inner");
            }
        }
        let snap = reg.snapshot();
        let get = |name: &str| {
            snap.spans
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| *s)
                .unwrap()
        };
        assert_eq!(get("outer").count, 1);
        assert_eq!(get("inner").count, 3);
    }
}
