//! The metrics registry: monotonic counters, gauges, fixed-bucket
//! histograms, and span aggregates, keyed by name.
//!
//! Design rules:
//!
//! * **Bucket boundaries are part of a histogram's identity.** They are
//!   fixed at first registration and never derived from observed data,
//!   so histograms from different runs, thread counts, or machines are
//!   always mergeable and comparable bin-for-bin.
//! * **Counters only go up.** Rates and deltas are a reader's job.
//! * The registry is a single mutex around ordered maps — metric updates
//!   happen at per-run granularity (not per-edge), so contention is not
//!   a concern and deterministic iteration order is worth more.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// A fixed-bucket histogram. `bounds` holds the inclusive upper edge of
/// each bucket; one implicit overflow bucket catches everything above
/// the last bound (and non-finite observations, which compare with
/// nothing).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// A histogram over the given upper bounds, which must be finite and
    /// strictly increasing. `counts` gets one extra overflow bucket.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bucket bounds must be finite"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0.0,
        }
    }

    /// Exponential bounds `first, first×factor, …` (`count` of them) —
    /// the usual shape for span/distance distributions. `first > 0`,
    /// `factor > 1`.
    pub fn exponential(first: f64, factor: f64, count: usize) -> Self {
        assert!(first > 0.0 && factor > 1.0, "need first > 0 and factor > 1");
        let mut bounds = Vec::with_capacity(count);
        let mut b = first;
        for _ in 0..count {
            bounds.push(b);
            b *= factor;
        }
        Histogram::new(&bounds)
    }

    /// Records one observation. Values above the last bound — and NaN,
    /// which no bound can place — land in the overflow bucket.
    pub fn observe(&mut self, v: f64) {
        let i = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[i] += 1;
        self.total += 1;
        if v.is_finite() {
            self.sum += v;
        }
    }

    /// The bucket upper bounds (without the implicit overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Adds another histogram's counts into this one. Panics if the
    /// bucket bounds differ — merging differently-shaped histograms is
    /// exactly the silent corruption fixed bounds exist to prevent.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "cannot merge: bounds differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

/// Aggregate of every completed span with a given name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStats {
    /// Completed spans.
    pub count: u64,
    /// Summed duration in seconds.
    pub total_secs: f64,
    /// Longest single span in seconds.
    pub max_secs: f64,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStats>,
}

/// A point-in-time copy of everything a [`Registry`] holds, in
/// deterministic (name) order — the form the trace sink exports.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter name → cumulative value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → last set value.
    pub gauges: Vec<(String, f64)>,
    /// Histogram name → frozen histogram.
    pub histograms: Vec<(String, Histogram)>,
    /// Span name → aggregate.
    pub spans: Vec<(String, SpanStats)>,
}

impl Snapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }
}

/// The metrics registry. See the module docs for the design rules.
#[derive(Debug)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry (usable in `static` position).
    pub const fn new() -> Self {
        Registry {
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
                spans: BTreeMap::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding this mutex can only occur on allocation
        // failure; poisoned data is still structurally sound, so keep
        // serving rather than cascading the panic into every recorder.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Adds `delta` to the monotonic counter `name` (created at 0).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        let c = inner.counters.entry(name.to_string()).or_insert(0);
        *c = c.saturating_add(delta);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `v` (last write wins).
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.lock().gauges.insert(name.to_string(), v);
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock().gauges.get(name).copied()
    }

    /// Records `v` into histogram `name`, creating it with `bounds` on
    /// first use. Later calls must pass the same bounds — the boundaries
    /// are the metric's identity (checked, panics on mismatch).
    pub fn observe(&self, name: &str, bounds: &[f64], v: f64) {
        let mut inner = self.lock();
        let h = inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds));
        assert_eq!(
            h.bounds(),
            bounds,
            "histogram {name:?} re-registered with different bounds"
        );
        h.observe(v);
    }

    /// Merges a pre-built histogram under `name` (created empty with the
    /// same bounds on first use).
    pub fn merge_histogram(&self, name: &str, hist: &Histogram) {
        let mut inner = self.lock();
        let h = inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(hist.bounds()));
        h.merge(hist);
    }

    /// Records one completed span of `secs` under `name`.
    pub fn span_record(&self, name: &str, secs: f64) {
        let mut inner = self.lock();
        let s = inner.spans.entry(name.to_string()).or_default();
        s.count += 1;
        s.total_secs += secs;
        s.max_secs = s.max_secs.max(secs);
    }

    /// Starts a RAII span timer recording into this registry on drop.
    pub fn span<'r, 'n>(&'r self, name: &'n str) -> crate::span::Span<'r, 'n> {
        crate::span::Span::start(self, name)
    }

    /// Copies out everything recorded so far, in name order.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            spans: inner.spans.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        }
    }

    /// Clears every metric (tests and per-run isolation in binaries).
    pub fn reset(&self) {
        let mut inner = self.lock();
        *inner = Inner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic_and_named() {
        let r = Registry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.counter_add("b", 1);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("b"), 1);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = Registry::new();
        r.gauge_set("g", 1.0);
        r.gauge_set("g", -2.5);
        assert_eq!(r.gauge("g"), Some(-2.5));
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_values() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 99.0, 1000.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.total(), 5);
        assert!((h.sum() - 1105.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_nan_goes_to_overflow_without_poisoning_sum() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.counts(), &[0, 2]);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn exponential_bounds_shape() {
        let h = Histogram::exponential(1.0, 2.0, 4);
        assert_eq!(h.bounds(), &[1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn merge_requires_identical_bounds() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        let mut b = Histogram::new(&[1.0, 2.0]);
        a.observe(0.5);
        b.observe(1.5);
        b.observe(9.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "bounds differ")]
    fn merge_mismatched_bounds_panics() {
        let mut a = Histogram::new(&[1.0]);
        a.merge(&Histogram::new(&[2.0]));
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn registry_rejects_bound_drift() {
        let r = Registry::new();
        r.observe("h", &[1.0, 2.0], 0.5);
        r.observe("h", &[1.0, 3.0], 0.5);
    }

    #[test]
    fn span_aggregation() {
        let r = Registry::new();
        r.span_record("s", 1.0);
        r.span_record("s", 3.0);
        let snap = r.snapshot();
        let (_, s) = snap.spans.iter().find(|(n, _)| n == "s").unwrap();
        assert_eq!(s.count, 2);
        assert!((s.total_secs - 4.0).abs() < 1e-12);
        assert_eq!(s.max_secs, 3.0);
    }

    #[test]
    fn snapshot_is_name_ordered_and_reset_clears() {
        let r = Registry::new();
        r.counter_add("z", 1);
        r.counter_add("a", 1);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "z"]);
        assert!(!snap.is_empty());
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn histogram_bounds_stable_across_thread_counts() {
        // The satellite lockdown: bucket boundaries are fixed by the
        // metric spec, never by the data or the schedule, so recording
        // the same observations from 1 or N threads yields bit-identical
        // bucket shapes.
        let spec = Histogram::exponential(1.0, 4.0, 8);
        let run = |threads: usize| -> Histogram {
            let r = Registry::new();
            let values: Vec<f64> = (0..4096).map(|i| (i % 97) as f64 * 3.7).collect();
            let (reg, bounds) = (&r, spec.bounds());
            std::thread::scope(|s| {
                for chunk in values.chunks(values.len().div_ceil(threads)) {
                    s.spawn(move || {
                        for &v in chunk {
                            reg.observe("spread", bounds, v);
                        }
                    });
                }
            });
            let snap = r.snapshot();
            snap.histograms
                .iter()
                .find(|(n, _)| n == "spread")
                .map(|(_, h)| h.clone())
                .unwrap()
        };
        let serial = run(1);
        for threads in [2, 4, 7] {
            let parallel = run(threads);
            assert_eq!(serial.bounds(), parallel.bounds(), "{threads} threads");
            assert_eq!(serial.counts(), parallel.counts(), "{threads} threads");
            assert_eq!(serial.total(), parallel.total());
        }
    }
}
