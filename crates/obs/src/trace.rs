//! Schema-versioned JSONL run tracing.
//!
//! A trace file is a sequence of one-object-per-line JSON records:
//! the first line is always a [`RunManifest`] (run provenance: tool,
//! dataset, ordering, algorithm, threads, window, config hash,
//! wall-clock start), followed by one [`TraceEvent`] line per phase,
//! grid cell, or kernel run, and optionally one line per metric from a
//! registry [`Snapshot`]. Every line is flushed as it is written, so an
//! interrupted sweep leaves a readable prefix from which the completed
//! cells can be reconstructed.
//!
//! Key order within each record kind is fixed and pinned by the golden
//! test (`tests/golden/trace_keys.txt`); any reordering or addition is a
//! schema change and must bump [`SCHEMA_VERSION`].

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::{parse_object, JsonObject};
use crate::registry::Snapshot;

/// Version of the trace line schema. Bump when any record kind changes
/// its key set or key order; readers refuse mismatched manifests.
///
/// v2: added the `row` record kind (verbatim CSV rows, the unit of
/// crash-safe resume) and `degraded_serial` to `kernel` records.
///
/// v3: added the `order` record kind — one line per ordering
/// construction, carrying the ordering's identity (name, params, seed,
/// graph digest, config-hashable identity string), its `OrderStats`
/// counters, and whether the permutation came from the on-disk cache.
///
/// v4: added the `gate` record kind — one line per regression-gate cell
/// (`gorder-bench gate`), carrying either the deterministic sim-proxy
/// counters (cache misses per level, ops, reuse summary) or the paired
/// wall-clock statistics (speedup median, sign-test p, bootstrap CI).
///
/// v5: added the `serve` record kind — one line per request the
/// `gorder-serve` daemon answered, carrying the operation, its target
/// (dataset/ordering/algo), the admission outcome (`ok`/`busy`/`error`),
/// which degradation tier actually served it (`cache`/`full`/`degraded`/
/// `original`), whether a worker panic forced a serial retry, and the
/// queueing/service timings.
pub const SCHEMA_VERSION: u64 = 5;

/// FNV-1a over the bytes of a canonical config string — cheap, stable
/// across platforms, and good enough to answer "were these two runs
/// configured identically?".
pub fn config_hash(config: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in config.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The header line of every trace: enough provenance to re-run (or at
/// least re-interpret) the file without the shell history that produced
/// it. Fields that do not apply to a given tool (a whole-grid sweep has
/// no single ordering) are `None` and serialise as `null`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Emitting binary/subcommand, e.g. `"gorder-cli run"` or `"fig5"`.
    pub tool: String,
    /// Dataset name, when the run targets exactly one.
    pub dataset: Option<String>,
    /// Ordering name, when the run targets exactly one.
    pub ordering: Option<String>,
    /// Algorithm/kernel name, when the run targets exactly one.
    pub algo: Option<String>,
    /// Worker thread count the run was configured with.
    pub threads: u64,
    /// Gorder window parameter `w`.
    pub window: Option<u64>,
    /// FNV-1a hash of the canonical config string (see [`config_hash`]).
    pub config_hash: u64,
    /// Wall-clock start, seconds since the Unix epoch.
    pub started_unix_secs: u64,
}

impl RunManifest {
    /// A manifest for `tool`, hashing `config` (a canonical rendering of
    /// every knob that shaped the run) and stamping the current
    /// wall-clock time.
    pub fn new(tool: &str, config: &str) -> Self {
        let started = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        RunManifest {
            tool: tool.to_string(),
            dataset: None,
            ordering: None,
            algo: None,
            threads: 1,
            window: None,
            config_hash: config_hash(config),
            started_unix_secs: started,
        }
    }

    /// Renders the manifest line. Key order is part of the schema.
    pub fn to_json_line(&self) -> String {
        JsonObject::new()
            .u64("schema_version", SCHEMA_VERSION)
            .str("kind", "manifest")
            .str("tool", &self.tool)
            .opt_str("dataset", self.dataset.as_deref())
            .opt_str("ordering", self.ordering.as_deref())
            .opt_str("algo", self.algo.as_deref())
            .u64("threads", self.threads)
            .opt_u64("window", self.window)
            .u64("config_hash", self.config_hash)
            .u64("started_unix_secs", self.started_unix_secs)
            .finish()
    }
}

/// One grid cell (dataset × ordering × algorithm) outcome, as the bench
/// sweeps record them. `seconds` is `null` for cells that never produced
/// a time (timeout/failure) — the status string says why.
#[derive(Debug, Clone, PartialEq)]
pub struct CellEvent {
    /// Dataset the cell ran on.
    pub dataset: String,
    /// Ordering under test.
    pub ordering: String,
    /// Algorithm/kernel name.
    pub algo: String,
    /// Cell status label (`"ok"`, `"timeout"`, `"ordering-failed"`, …).
    pub status: String,
    /// Measured seconds; non-finite values serialise as `null`.
    pub seconds: f64,
    /// Result checksum for cross-ordering equivalence checking.
    pub checksum: u64,
}

/// One kernel execution with its full `KernelStats`-shaped breakdown —
/// the trace twin of the CLI's `--stats` line, keyed identically.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelEvent {
    /// Algorithm/kernel name.
    pub algo: String,
    /// Ordering the graph was laid out with.
    pub ordering: String,
    /// Result checksum.
    pub checksum: u64,
    /// End-to-end seconds.
    pub seconds: f64,
    /// Execution engine label (`"serial"`, `"parallel"`, …).
    pub engine: String,
    /// Iterations until convergence.
    pub iterations: u64,
    /// Edges relaxed across all iterations.
    pub edges_relaxed: u64,
    /// Frontier pushes (traversal kernels).
    pub frontier_pushes: u64,
    /// Peak frontier size.
    pub frontier_peak: u64,
    /// Seconds in init.
    pub init_secs: f64,
    /// Seconds in the iterate loop.
    pub compute_secs: f64,
    /// Seconds in finish.
    pub finish_secs: f64,
    /// Threads actually used.
    pub threads_used: u64,
    /// Summed per-thread busy seconds.
    pub thread_busy_secs: f64,
    /// Whether a worker panic forced a serial retry of this run.
    pub degraded_serial: bool,
}

/// One finished artifact row, verbatim: the exact CSV cells a sweep
/// binary will write for one logical row of `table`, recorded the moment
/// the row is computed. This is the unit of crash-safe resume — a
/// resumed sweep re-emits recovered rows byte-for-byte, so the final CSV
/// is identical to an uninterrupted run's.
#[derive(Debug, Clone, PartialEq)]
pub struct RowEvent {
    /// Artifact the row belongs to (e.g. `"fig5.csv"`).
    pub table: String,
    /// Grid coordinates of the row, e.g. `"epinion|BFS|Gorder"` —
    /// whatever uniquely identifies the row within `table`.
    pub key: String,
    /// The row's CSV cells, exactly as they will be written.
    pub cells: Vec<String>,
}

/// One ordering construction: which ordering ran (or was loaded from the
/// permutation cache), on what graph, with what outcome and counters.
/// `identity` is the canonical cache-key string
/// (`graph=<digest>,order=<name>,params=<params>,seed=<seed>`) so two
/// traces can be joined on "same ordering of the same graph" with a
/// single string compare (or its [`config_hash`]).
#[derive(Debug, Clone, PartialEq)]
pub struct OrderEvent {
    /// Dataset name, when the sweep knows one (`null` from the CLI).
    pub dataset: Option<String>,
    /// Ordering name, e.g. `"Gorder"`.
    pub name: String,
    /// Canonical parameter string, e.g. `"w=5"`; empty for
    /// parameter-free orderings.
    pub params: String,
    /// Seed the ordering registry was constructed with.
    pub seed: u64,
    /// FNV-1a digest of the graph's CSR content.
    pub graph_digest: u64,
    /// The canonical cache-key string (see the struct docs).
    pub identity: String,
    /// Outcome label (`"ok"`, `"degraded"`, `"timeout"`, `"failed"`).
    pub status: String,
    /// Wall seconds to produce the permutation (near zero on cache hit).
    pub seconds: f64,
    /// Nodes placed by the ordering (= n on success).
    pub nodes_placed: u64,
    /// Unit-heap key increments (Gorder-family; 0 elsewhere).
    pub heap_increments: u64,
    /// Unit-heap key decrements (Gorder-family; 0 elsewhere).
    pub heap_decrements: u64,
    /// Unit-heap max-pops (Gorder-family; 0 elsewhere).
    pub heap_pops: u64,
    /// Threads the ordering ran on.
    pub threads_used: u64,
    /// Whether the permutation was loaded from the on-disk cache.
    pub cache_hit: bool,
}

/// One regression-gate cell (dataset × ordering × algorithm), as
/// `gorder-bench gate` records them into `BENCH_gate.json`.
///
/// The record carries both measurement modes' fields; the `mode` string
/// says which half is live. Sim-proxy cells fill the counter block
/// (`refs` through `reuse_counts`) with exact, platform-independent
/// integers and zero the wall block; wall-clock cells do the reverse.
/// Unused numeric fields are `0`/`0.0`, never `null`, so byte-identity
/// of two sim runs is a pure function of the counters.
#[derive(Debug, Clone, PartialEq)]
pub struct GateEvent {
    /// Measurement mode: `"sim"` or `"wall"`.
    pub mode: String,
    /// Dataset the cell ran on.
    pub dataset: String,
    /// Ordering under test.
    pub ordering: String,
    /// Algorithm/kernel name.
    pub algo: String,
    /// Result checksum (work-elision guard; identical across orderings
    /// for relabeling-invariant kernels).
    pub checksum: u64,
    /// Engine iterations executed.
    pub iterations: u64,
    /// Edges scanned/relaxed across the run.
    pub edges_relaxed: u64,
    /// Simulated data references (= L1 references); 0 in wall mode.
    pub refs: u64,
    /// Simulated misses at each cache level, L1 first; empty in wall mode.
    pub level_misses: Vec<u64>,
    /// Simulated accesses that fell through every level; 0 in wall mode.
    pub mem_accesses: u64,
    /// Simulated non-memory operations; 0 in wall mode.
    pub ops: u64,
    /// Warm-line reuse observations; 0 in wall mode.
    pub reuse_total: u64,
    /// Sum of observed reuse distances (integral f64); 0.0 in wall mode.
    pub reuse_sum: f64,
    /// Reuse-distance histogram counts (fixed power-of-two buckets plus
    /// overflow); empty in wall mode.
    pub reuse_counts: Vec<u64>,
    /// Wall mode: interleaved A/B sample pairs kept after warmup; 0 in
    /// sim mode.
    pub pairs: u64,
    /// Wall mode: median speedup of this ordering over Original
    /// (t_Original / t_ordering); 0.0 in sim mode.
    pub speedup: f64,
    /// Wall mode: two-sided sign-test p-value over the pairs; 0.0 in sim
    /// mode.
    pub sign_p: f64,
    /// Wall mode: bootstrap CI lower bound on the speedup; 0.0 in sim.
    pub ci_lo: f64,
    /// Wall mode: bootstrap CI upper bound on the speedup; 0.0 in sim.
    pub ci_hi: f64,
}

/// One request served (or shed, or rejected) by the `gorder-serve`
/// daemon. Exactly one record is emitted per structured response the
/// server sends, so the trace is a complete ledger of the daemon's
/// admission decisions: counting `serve` records equals counting
/// responses, and a drained server's trace accounts for every accepted
/// request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeEvent {
    /// Requested operation (`"order"`, `"run"`, `"simulate"`,
    /// `"health"`, `"stats"`, `"shutdown"`).
    pub op: String,
    /// Dataset the request targeted, when it named one.
    pub dataset: Option<String>,
    /// Ordering the request asked for, when it named one.
    pub ordering: Option<String>,
    /// Algorithm/kernel the request asked for, when it named one.
    pub algo: Option<String>,
    /// Admission outcome: `"ok"`, `"busy"` (shed), or `"error"`.
    pub status: String,
    /// Degradation tier that served the request: `"cache"` (OrderCache /
    /// single-flight hit), `"full"` (ordering computed completely),
    /// `"degraded"` (budget expired mid-build, anytime completion),
    /// `"original"` (ladder floor: identity ordering). `None` for
    /// responses with no ordering work (`health`, `busy`, errors).
    pub tier: Option<String>,
    /// Whether a worker panic forced this request onto the serial-retry
    /// rung of the panic ladder.
    pub degraded_serial: bool,
    /// Seconds the request waited in the admission queue.
    pub queue_secs: f64,
    /// Seconds of service time (compute, excluding queueing).
    pub seconds: f64,
    /// Result checksum (kernel checksum for `run`/`simulate`,
    /// permutation digest for `order`; 0 when not applicable).
    pub checksum: u64,
}

/// A named, timed phase (e.g. `"gorder.build"`).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseEvent {
    /// Phase name.
    pub name: String,
    /// Duration in seconds.
    pub seconds: f64,
}

/// Any non-manifest trace line.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A grid-cell outcome.
    Cell(CellEvent),
    /// A kernel run with stats breakdown.
    Kernel(KernelEvent),
    /// A regression-gate cell (sim-proxy counters or wall statistics).
    Gate(GateEvent),
    /// An ordering construction (computed or cache-loaded).
    Order(OrderEvent),
    /// A timed phase.
    Phase(PhaseEvent),
    /// A verbatim artifact row (the unit of crash-safe resume).
    Row(RowEvent),
    /// One request answered by the `gorder-serve` daemon.
    Serve(ServeEvent),
}

impl TraceEvent {
    /// Renders the event line. Key order per kind is part of the schema.
    pub fn to_json_line(&self) -> String {
        match self {
            TraceEvent::Cell(c) => JsonObject::new()
                .str("kind", "cell")
                .str("dataset", &c.dataset)
                .str("ordering", &c.ordering)
                .str("algo", &c.algo)
                .str("status", &c.status)
                .f64("seconds", c.seconds)
                .u64("checksum", c.checksum)
                .finish(),
            TraceEvent::Kernel(k) => JsonObject::new()
                .str("kind", "kernel")
                .str("algo", &k.algo)
                .str("ordering", &k.ordering)
                .u64("checksum", k.checksum)
                .f64("seconds", k.seconds)
                .str("engine", &k.engine)
                .u64("iterations", k.iterations)
                .u64("edges_relaxed", k.edges_relaxed)
                .u64("frontier_pushes", k.frontier_pushes)
                .u64("frontier_peak", k.frontier_peak)
                .f64("init_secs", k.init_secs)
                .f64("compute_secs", k.compute_secs)
                .f64("finish_secs", k.finish_secs)
                .u64("threads_used", k.threads_used)
                .f64("thread_busy_secs", k.thread_busy_secs)
                .bool("degraded_serial", k.degraded_serial)
                .finish(),
            TraceEvent::Gate(g) => JsonObject::new()
                .str("kind", "gate")
                .str("mode", &g.mode)
                .str("dataset", &g.dataset)
                .str("ordering", &g.ordering)
                .str("algo", &g.algo)
                .u64("checksum", g.checksum)
                .u64("iterations", g.iterations)
                .u64("edges_relaxed", g.edges_relaxed)
                .u64("refs", g.refs)
                .u64_array("level_misses", &g.level_misses)
                .u64("mem_accesses", g.mem_accesses)
                .u64("ops", g.ops)
                .u64("reuse_total", g.reuse_total)
                .f64("reuse_sum", g.reuse_sum)
                .u64_array("reuse_counts", &g.reuse_counts)
                .u64("pairs", g.pairs)
                .f64("speedup", g.speedup)
                .f64("sign_p", g.sign_p)
                .f64("ci_lo", g.ci_lo)
                .f64("ci_hi", g.ci_hi)
                .finish(),
            TraceEvent::Order(o) => JsonObject::new()
                .str("kind", "order")
                .opt_str("dataset", o.dataset.as_deref())
                .str("name", &o.name)
                .str("params", &o.params)
                .u64("seed", o.seed)
                .u64("graph_digest", o.graph_digest)
                .str("identity", &o.identity)
                .str("status", &o.status)
                .f64("seconds", o.seconds)
                .u64("nodes_placed", o.nodes_placed)
                .u64("heap_increments", o.heap_increments)
                .u64("heap_decrements", o.heap_decrements)
                .u64("heap_pops", o.heap_pops)
                .u64("threads_used", o.threads_used)
                .bool("cache_hit", o.cache_hit)
                .finish(),
            TraceEvent::Phase(p) => JsonObject::new()
                .str("kind", "phase")
                .str("name", &p.name)
                .f64("seconds", p.seconds)
                .finish(),
            TraceEvent::Row(r) => JsonObject::new()
                .str("kind", "row")
                .str("table", &r.table)
                .str("key", &r.key)
                .str_array("cells", &r.cells)
                .finish(),
            TraceEvent::Serve(s) => JsonObject::new()
                .str("kind", "serve")
                .str("op", &s.op)
                .opt_str("dataset", s.dataset.as_deref())
                .opt_str("ordering", s.ordering.as_deref())
                .opt_str("algo", s.algo.as_deref())
                .str("status", &s.status)
                .opt_str("tier", s.tier.as_deref())
                .bool("degraded_serial", s.degraded_serial)
                .f64("queue_secs", s.queue_secs)
                .f64("seconds", s.seconds)
                .u64("checksum", s.checksum)
                .finish(),
        }
    }
}

/// Renders one registry metric as a trace line (kind `counter`, `gauge`,
/// `span`, or `histogram`).
fn metric_lines(snap: &Snapshot) -> Vec<String> {
    let mut lines = Vec::new();
    for (name, v) in &snap.counters {
        lines.push(
            JsonObject::new()
                .str("kind", "counter")
                .str("name", name)
                .u64("value", *v)
                .finish(),
        );
    }
    for (name, v) in &snap.gauges {
        lines.push(
            JsonObject::new()
                .str("kind", "gauge")
                .str("name", name)
                .f64("value", *v)
                .finish(),
        );
    }
    for (name, s) in &snap.spans {
        lines.push(
            JsonObject::new()
                .str("kind", "span")
                .str("name", name)
                .u64("count", s.count)
                .f64("total_secs", s.total_secs)
                .f64("max_secs", s.max_secs)
                .finish(),
        );
    }
    for (name, h) in &snap.histograms {
        lines.push(
            JsonObject::new()
                .str("kind", "histogram")
                .str("name", name)
                .f64_array("bounds", h.bounds())
                .u64_array("counts", h.counts())
                .u64("total", h.total())
                .f64("sum", h.sum())
                .finish(),
        );
    }
    lines
}

/// A line-flushed JSONL trace writer. Construct over any [`Write`] (for
/// tests) or via [`TraceSink::create`] for a file; write the manifest
/// first, then events as they happen. Each line is flushed immediately
/// so a killed process loses at most the line being written.
#[derive(Debug)]
pub struct TraceSink<W: Write> {
    w: W,
    lines: u64,
}

impl TraceSink<BufWriter<File>> {
    /// Opens (truncating) a trace file at `path`, creating parent
    /// directories as needed.
    pub fn create(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(TraceSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> TraceSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(w: W) -> Self {
        TraceSink { w, lines: 0 }
    }

    fn line(&mut self, s: &str) -> io::Result<()> {
        self.w.write_all(s.as_bytes())?;
        self.w.write_all(b"\n")?;
        self.w.flush()?;
        self.lines += 1;
        Ok(())
    }

    /// Writes the manifest header line. Call exactly once, first.
    pub fn manifest(&mut self, m: &RunManifest) -> io::Result<()> {
        self.line(&m.to_json_line())
    }

    /// Writes one event line.
    pub fn event(&mut self, e: &TraceEvent) -> io::Result<()> {
        self.line(&e.to_json_line())
    }

    /// Writes one line per metric in the snapshot (counters, gauges,
    /// spans, histograms) — the usual end-of-run registry export.
    pub fn metrics(&mut self, snap: &Snapshot) -> io::Result<()> {
        for l in metric_lines(snap) {
            self.line(&l)?;
        }
        Ok(())
    }

    /// Lines written so far.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// Unwraps the inner writer (tests inspect the buffer).
    pub fn into_inner(self) -> W {
        self.w
    }
}

/// What [`validate_jsonl`] found in a well-formed trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total lines (including the manifest).
    pub lines: usize,
    /// Line count per record kind (`"manifest"`, `"cell"`, …).
    pub by_kind: BTreeMap<String, usize>,
    /// Lenient mode only: the trace ended in one invalid, unterminated
    /// final line — the signature of a crash mid-write. The torn line is
    /// not counted in `lines` or `by_kind`.
    pub truncated_final_line: bool,
}

/// Validates a whole trace: every line must pass the strict JSON parser,
/// the first line must be a `manifest` with a matching
/// [`SCHEMA_VERSION`], and every line must carry a `kind`. This is the
/// single validation path shared by the golden tests, the CI smoke step,
/// and `gorder-cli validate-trace`. Errors name both the line number and
/// the byte offset of the first invalid line.
pub fn validate_jsonl(text: &str) -> Result<TraceSummary, String> {
    validate(text, false)
}

/// [`validate_jsonl`], but tolerating exactly one invalid **final** line
/// with no trailing newline — what a crash mid-write produces (every
/// earlier line was flushed whole). A torn manifest still fails: with no
/// complete first line the trace identifies nothing. The summary's
/// `truncated_final_line` reports whether the tolerance was used.
pub fn validate_jsonl_lenient(text: &str) -> Result<TraceSummary, String> {
    validate(text, true)
}

fn validate(text: &str, lenient: bool) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    let mut offset = 0usize;
    for (idx, raw) in text.split_inclusive('\n').enumerate() {
        let n = idx + 1;
        let line = raw.strip_suffix('\n').unwrap_or(raw);
        // A torn final line is forgivable only past the manifest, only
        // at the very end of the text, and only without its newline
        // (lines are flushed newline-last, so a complete line always
        // has one).
        let torn_tolerable = lenient && n >= 2 && offset + raw.len() == text.len() && raw == line;
        let checked = validate_line(line, n, offset, idx == 0);
        match checked {
            Ok(kind) => {
                *summary.by_kind.entry(kind).or_insert(0) += 1;
                summary.lines = n;
            }
            Err(_) if torn_tolerable => {
                summary.truncated_final_line = true;
                break;
            }
            Err(e) => return Err(e),
        }
        offset += raw.len();
    }
    if summary.lines == 0 {
        return Err("empty trace: expected at least a manifest line".to_string());
    }
    Ok(summary)
}

/// Checks one line; returns its `kind` or an error naming line `n` and
/// its starting byte `offset`.
fn validate_line(line: &str, n: usize, offset: usize, first: bool) -> Result<String, String> {
    let at = |e: String| format!("line {n} (byte offset {offset}): {e}");
    let obj = parse_object(line).map_err(&at)?;
    let kind = obj
        .get("kind")
        .ok_or_else(|| at("missing \"kind\"".to_string()))?;
    let kind = kind.trim_matches('"').to_string();
    if first {
        if kind != "manifest" {
            return Err(at(format!("first line must be a manifest, got {kind:?}")));
        }
        let ver = obj
            .get("schema_version")
            .ok_or_else(|| at("manifest missing schema_version".to_string()))?;
        if ver != &SCHEMA_VERSION.to_string() {
            return Err(at(format!(
                "schema_version {ver} != supported {SCHEMA_VERSION}"
            )));
        }
    }
    Ok(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn demo_manifest() -> RunManifest {
        let mut m = RunManifest::new("test-tool", "scale=4,seed=7");
        m.dataset = Some("flickr".to_string());
        m.ordering = Some("Gorder".to_string());
        m.algo = Some("pagerank".to_string());
        m.threads = 4;
        m.window = Some(5);
        m
    }

    #[test]
    fn config_hash_is_stable_fnv1a() {
        // FNV-1a reference values: empty string hashes to the offset
        // basis; any change to the algorithm breaks cross-run joins.
        assert_eq!(config_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(config_hash("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(config_hash("scale=4"), config_hash("scale=5"));
    }

    #[test]
    fn manifest_line_parses_and_orders_keys() {
        let line = demo_manifest().to_json_line();
        let obj = parse_object(&line).unwrap();
        assert_eq!(obj["schema_version"], SCHEMA_VERSION.to_string());
        assert_eq!(obj["kind"], "\"manifest\"");
        assert_eq!(
            crate::json::top_level_keys(&line),
            vec![
                "schema_version",
                "kind",
                "tool",
                "dataset",
                "ordering",
                "algo",
                "threads",
                "window",
                "config_hash",
                "started_unix_secs",
            ]
        );
    }

    #[test]
    fn nan_seconds_serialise_as_null_and_still_parse() {
        let line = TraceEvent::Cell(CellEvent {
            dataset: "flickr".into(),
            ordering: "Gorder".into(),
            algo: "bfs".into(),
            status: "timeout".into(),
            seconds: f64::NAN,
            checksum: 0,
        })
        .to_json_line();
        let obj = parse_object(&line).unwrap();
        assert_eq!(obj["seconds"], "null");
    }

    #[test]
    fn sink_writes_manifest_events_and_metrics() {
        let reg = Registry::new();
        reg.counter_add("gorder.increments", 10);
        reg.span_record("gorder.build", 0.5);
        reg.observe("edge_span", &[1.0, 8.0], 3.0);
        reg.gauge_set("locality.score", 0.9);

        let mut sink = TraceSink::new(Vec::new());
        sink.manifest(&demo_manifest()).unwrap();
        sink.event(&TraceEvent::Phase(PhaseEvent {
            name: "order".into(),
            seconds: 0.25,
        }))
        .unwrap();
        sink.metrics(&reg.snapshot()).unwrap();
        assert_eq!(sink.lines_written(), 6);

        let text = String::from_utf8(sink.into_inner()).unwrap();
        let summary = validate_jsonl(&text).unwrap();
        assert_eq!(summary.lines, 6);
        assert_eq!(summary.by_kind["manifest"], 1);
        assert_eq!(summary.by_kind["phase"], 1);
        assert_eq!(summary.by_kind["counter"], 1);
        assert_eq!(summary.by_kind["gauge"], 1);
        assert_eq!(summary.by_kind["span"], 1);
        assert_eq!(summary.by_kind["histogram"], 1);
    }

    #[test]
    fn validate_rejects_bad_traces() {
        assert!(validate_jsonl("").is_err());
        let ev = TraceEvent::Phase(PhaseEvent {
            name: "x".into(),
            seconds: 1.0,
        });
        // First line not a manifest.
        assert!(validate_jsonl(&ev.to_json_line()).is_err());
        // Wrong schema version.
        let bad = demo_manifest().to_json_line().replacen(
            &format!("\"schema_version\":{SCHEMA_VERSION}"),
            "\"schema_version\":999",
            1,
        );
        assert!(validate_jsonl(&bad).is_err());
        // Malformed JSON mid-file (the interrupted-write case).
        let good = demo_manifest().to_json_line();
        assert!(validate_jsonl(&format!("{good}\n{{\"kind\":\"cell\"")).is_err());
        // Missing kind.
        assert!(validate_jsonl(&format!("{good}\n{{\"a\":1}}")).is_err());
    }

    #[test]
    fn kernel_event_mirrors_stats_key_order() {
        let line = TraceEvent::Kernel(KernelEvent {
            algo: "pagerank".into(),
            ordering: "Gorder".into(),
            checksum: 7,
            seconds: 1.0,
            engine: "serial".into(),
            iterations: 3,
            edges_relaxed: 100,
            frontier_pushes: 0,
            frontier_peak: 0,
            init_secs: 0.1,
            compute_secs: 0.8,
            finish_secs: 0.1,
            threads_used: 1,
            thread_busy_secs: 0.9,
            degraded_serial: false,
        })
        .to_json_line();
        let keys = crate::json::top_level_keys(&line);
        assert_eq!(keys[0], "kind");
        // The remaining keys are exactly the --stats line's key set, in
        // the same order, so tooling can join the two surfaces.
        assert_eq!(
            &keys[1..],
            &[
                "algo",
                "ordering",
                "checksum",
                "seconds",
                "engine",
                "iterations",
                "edges_relaxed",
                "frontier_pushes",
                "frontier_peak",
                "init_secs",
                "compute_secs",
                "finish_secs",
                "threads_used",
                "thread_busy_secs",
                "degraded_serial",
            ]
        );
    }

    #[test]
    fn order_event_pins_key_order() {
        let line = TraceEvent::Order(OrderEvent {
            dataset: Some("epinion".into()),
            name: "Gorder".into(),
            params: "w=5".into(),
            seed: 42,
            graph_digest: 0xdead_beef,
            identity: "graph=deadbeef,order=Gorder,params=w=5,seed=42".into(),
            status: "ok".into(),
            seconds: 0.5,
            nodes_placed: 100,
            heap_increments: 10,
            heap_decrements: 8,
            heap_pops: 99,
            threads_used: 1,
            cache_hit: false,
        })
        .to_json_line();
        assert_eq!(
            crate::json::top_level_keys(&line),
            vec![
                "kind",
                "dataset",
                "name",
                "params",
                "seed",
                "graph_digest",
                "identity",
                "status",
                "seconds",
                "nodes_placed",
                "heap_increments",
                "heap_decrements",
                "heap_pops",
                "threads_used",
                "cache_hit",
            ]
        );
        let obj = parse_object(&line).unwrap();
        assert_eq!(obj["kind"], "\"order\"");
        assert_eq!(obj["cache_hit"], "false");
    }

    #[test]
    fn gate_event_pins_key_order() {
        let line = TraceEvent::Gate(GateEvent {
            mode: "sim".into(),
            dataset: "epinion".into(),
            ordering: "Gorder".into(),
            algo: "BFS".into(),
            checksum: 7,
            iterations: 3,
            edges_relaxed: 100,
            refs: 2048,
            level_misses: vec![128, 64, 32],
            mem_accesses: 32,
            ops: 4096,
            reuse_total: 1500,
            reuse_sum: 42_000.0,
            reuse_counts: vec![10, 20, 30],
            pairs: 0,
            speedup: 0.0,
            sign_p: 0.0,
            ci_lo: 0.0,
            ci_hi: 0.0,
        })
        .to_json_line();
        assert_eq!(
            crate::json::top_level_keys(&line),
            vec![
                "kind",
                "mode",
                "dataset",
                "ordering",
                "algo",
                "checksum",
                "iterations",
                "edges_relaxed",
                "refs",
                "level_misses",
                "mem_accesses",
                "ops",
                "reuse_total",
                "reuse_sum",
                "reuse_counts",
                "pairs",
                "speedup",
                "sign_p",
                "ci_lo",
                "ci_hi",
            ]
        );
        let obj = parse_object(&line).unwrap();
        assert_eq!(obj["kind"], "\"gate\"");
        assert_eq!(obj["level_misses"], "[128,64,32]");
        // The unused wall half serialises as zeros, never null — sim
        // byte-identity must be a pure function of the counters.
        assert_eq!(obj["speedup"], "0");
        assert_eq!(obj["pairs"], "0");
    }

    #[test]
    fn serve_event_pins_key_order() {
        let line = TraceEvent::Serve(ServeEvent {
            op: "run".into(),
            dataset: Some("epinion".into()),
            ordering: Some("Gorder".into()),
            algo: Some("BFS".into()),
            status: "ok".into(),
            tier: Some("cache".into()),
            degraded_serial: false,
            queue_secs: 0.001,
            seconds: 0.25,
            checksum: 7,
        })
        .to_json_line();
        assert_eq!(
            crate::json::top_level_keys(&line),
            vec![
                "kind",
                "op",
                "dataset",
                "ordering",
                "algo",
                "status",
                "tier",
                "degraded_serial",
                "queue_secs",
                "seconds",
                "checksum",
            ]
        );
        let obj = parse_object(&line).unwrap();
        assert_eq!(obj["kind"], "\"serve\"");
        assert_eq!(obj["tier"], "\"cache\"");
        // A shed response carries no tier: it must serialise as null,
        // still parseable by the strict grammar.
        let busy = TraceEvent::Serve(ServeEvent {
            op: "run".into(),
            dataset: Some("epinion".into()),
            ordering: None,
            algo: None,
            status: "busy".into(),
            tier: None,
            degraded_serial: false,
            queue_secs: 0.0,
            seconds: 0.0,
            checksum: 0,
        })
        .to_json_line();
        let obj = parse_object(&busy).unwrap();
        assert_eq!(obj["tier"], "null");
        assert_eq!(obj["status"], "\"busy\"");
    }

    #[test]
    fn row_event_roundtrips_cells_verbatim() {
        let cells = vec!["epinion".to_string(), "BFS".to_string(), "0.000124".into()];
        let line = TraceEvent::Row(RowEvent {
            table: "fig5.csv".into(),
            key: "epinion|BFS|Gorder".into(),
            cells: cells.clone(),
        })
        .to_json_line();
        let obj = parse_object(&line).unwrap();
        assert_eq!(obj["kind"], "\"row\"");
        assert_eq!(
            crate::json::parse_string_array(&obj["cells"]).unwrap(),
            cells
        );
        assert_eq!(
            crate::json::top_level_keys(&line),
            vec!["kind", "table", "key", "cells"]
        );
    }

    #[test]
    fn errors_name_line_and_byte_offset() {
        let good = demo_manifest().to_json_line();
        let text = format!("{good}\n{{\"kind\":\"cell\"\n");
        let err = validate_jsonl(&text).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(
            err.contains(&format!("byte offset {}", good.len() + 1)),
            "{err}"
        );
    }

    #[test]
    fn lenient_accepts_exactly_one_torn_final_line() {
        let good = demo_manifest().to_json_line();
        let ev = TraceEvent::Phase(PhaseEvent {
            name: "x".into(),
            seconds: 1.0,
        })
        .to_json_line();
        // Torn final line without its newline: strict rejects, lenient
        // accepts and reports the truncation.
        let torn = format!("{good}\n{ev}\n{{\"kind\":\"ce");
        assert!(validate_jsonl(&torn).is_err());
        let summary = validate_jsonl_lenient(&torn).unwrap();
        assert!(summary.truncated_final_line);
        assert_eq!(summary.lines, 2, "the torn line is not counted");
        // A clean trace reports no truncation.
        let clean = format!("{good}\n{ev}\n");
        assert!(!validate_jsonl_lenient(&clean).unwrap().truncated_final_line);
        // A torn line that is NOT final stays an error (it was flushed
        // with a newline, so it cannot be a crash artifact).
        let mid = format!("{good}\n{{\"kind\":\"ce\n{ev}\n");
        assert!(validate_jsonl_lenient(&mid).is_err());
        // A torn manifest is never acceptable.
        let manifest_prefix = &good[..good.len() / 2];
        assert!(validate_jsonl_lenient(manifest_prefix).is_err());
    }
}
