//! Deterministic fault injection for crash-safety testing.
//!
//! Production code sprinkles *fault points* — named call sites like
//! `graph.io_read` or `engine.worker` — through its IO and execution
//! paths. Each point is an ordinary function call that does nothing
//! unless the process has been **armed** with a fault plan, either via
//! the `GORDER_FAULTS` environment variable or programmatically with
//! [`arm_from_spec`]. Disarmed, every helper is a single relaxed atomic
//! load; no site pays for the machinery it is not using.
//!
//! A plan is a comma-separated spec of `site=rule` clauses plus two
//! knobs:
//!
//! * `site=N` — fire on exactly the `N`th call to that site (1-based);
//! * `site=N+` — fire on the `N`th call and every call after it;
//! * `site=%K` — fire on `K` percent of calls, decided by a hash of
//!   `(seed, site, call index)` so the same spec + seed always fires on
//!   the same calls (deterministic, unlike a true coin flip);
//! * `slow_ms=X` — how long [`slow_cell`] sleeps when it fires
//!   (default 100 ms);
//! * `seed=S` — the seed for `%K` rules (default 0).
//!
//! Example: `GORDER_FAULTS='graph.io_read=2,engine.worker=%25,seed=7'`
//! makes the second graph read fail and roughly a quarter of engine
//! worker tasks panic, reproducibly.
//!
//! Every firing increments the `faults.fired.<site>` counter in the
//! [`global`](crate::global) registry, so a trace of a fault run records
//! which injections actually happened.

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once};
use std::time::Duration;

/// One site's firing rule (see the module docs for the spec grammar).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    /// Fire on exactly the `n`th call (1-based).
    Exactly(u64),
    /// Fire on the `n`th call and every later one.
    From(u64),
    /// Fire on `k` percent of calls, hash-decided from the plan seed.
    Percent(u64),
}

#[derive(Debug, Default)]
struct Plan {
    rules: BTreeMap<String, Rule>,
    counts: BTreeMap<String, u64>,
    slow_ms: u64,
    seed: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<Plan>> = Mutex::new(None);
static ENV_ONCE: Once = Once::new();

/// Parses `spec` (the grammar in the module docs) and arms the process.
/// Replaces any previous plan and resets all call counters.
pub fn arm_from_spec(spec: &str) -> Result<(), String> {
    let mut plan = Plan {
        slow_ms: 100,
        ..Plan::default()
    };
    for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
        let (key, value) = clause
            .split_once('=')
            .ok_or_else(|| format!("fault clause {clause:?} is not key=value"))?;
        let parse_u64 = |v: &str| {
            v.parse::<u64>()
                .map_err(|_| format!("fault clause {clause:?}: {v:?} is not an integer"))
        };
        match key {
            "slow_ms" => plan.slow_ms = parse_u64(value)?,
            "seed" => plan.seed = parse_u64(value)?,
            site => {
                let rule = if let Some(pct) = value.strip_prefix('%') {
                    let k = parse_u64(pct)?;
                    if k > 100 {
                        return Err(format!("fault clause {clause:?}: percent > 100"));
                    }
                    Rule::Percent(k)
                } else if let Some(n) = value.strip_suffix('+') {
                    Rule::From(parse_u64(n)?.max(1))
                } else {
                    Rule::Exactly(parse_u64(value)?.max(1))
                };
                plan.rules.insert(site.to_string(), rule);
            }
        }
    }
    let has_rules = !plan.rules.is_empty();
    *PLAN.lock().expect("fault plan lock") = Some(plan);
    ARMED.store(has_rules, Ordering::Release);
    Ok(())
}

/// Disarms all fault points and forgets the plan and its counters.
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
    *PLAN.lock().expect("fault plan lock") = None;
}

/// Whether a fault plan is currently armed. The first call also reads
/// `GORDER_FAULTS` (once per process); a malformed value warns and is
/// ignored — bad test plumbing must never change production behaviour.
pub fn is_armed() -> bool {
    ENV_ONCE.call_once(|| {
        if let Ok(spec) = std::env::var("GORDER_FAULTS") {
            if !spec.is_empty() {
                if let Err(e) = arm_from_spec(&spec) {
                    eprintln!("warning: ignoring GORDER_FAULTS: {e}");
                }
            }
        }
    });
    ARMED.load(Ordering::Acquire)
}

/// SplitMix64 — a cheap stateless mixer for `%K` decisions.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Counts one call to `site` and decides whether its rule fires.
fn fires(site: &str) -> bool {
    let mut guard = PLAN.lock().expect("fault plan lock");
    let Some(plan) = guard.as_mut() else {
        return false;
    };
    let Some(rule) = plan.rules.get(site).copied() else {
        return false;
    };
    let count = plan.counts.entry(site.to_string()).or_insert(0);
    *count += 1;
    let fired = match rule {
        Rule::Exactly(n) => *count == n,
        Rule::From(n) => *count >= n,
        Rule::Percent(k) => {
            let h = mix(plan.seed ^ crate::trace::config_hash(site) ^ *count);
            h % 100 < k
        }
    };
    drop(guard);
    if fired {
        crate::global().counter_add(&format!("faults.fired.{site}"), 1);
    }
    fired
}

/// Fault point for IO read paths: returns an injected error when the
/// site's rule fires, `None` otherwise (including when disarmed).
pub fn io_read_error(site: &str) -> Option<io::Error> {
    if !is_armed() || !fires(site) {
        return None;
    }
    Some(io::Error::other(format!("injected i/o fault at {site}")))
}

/// Fault point for worker tasks: panics when the site's rule fires.
/// Call it at the top of a task body that is supposed to be
/// panic-isolated by its caller.
pub fn worker_panic(site: &str) {
    if is_armed() && fires(site) {
        panic!("injected worker panic at {site}");
    }
}

/// Fault point for slow cells: sleeps `slow_ms` when the site's rule
/// fires. Used to hold a sweep mid-grid long enough to kill it.
pub fn slow_cell(site: &str) {
    if !is_armed() || !fires(site) {
        return;
    }
    let ms = PLAN
        .lock()
        .expect("fault plan lock")
        .as_ref()
        .map_or(100, |p| p.slow_ms);
    std::thread::sleep(Duration::from_millis(ms));
}

#[cfg(test)]
mod tests {
    use super::*;

    // The plan is process-global state; serialise the tests that arm it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_points_are_inert() {
        let _guard = TEST_LOCK.lock().unwrap();
        disarm();
        assert!(io_read_error("t.io").is_none());
        worker_panic("t.worker"); // must not panic
        slow_cell("t.slow"); // must not sleep
    }

    #[test]
    fn exactly_fires_on_the_nth_call_only() {
        let _guard = TEST_LOCK.lock().unwrap();
        arm_from_spec("t.exact=3").unwrap();
        assert!(io_read_error("t.exact").is_none());
        assert!(io_read_error("t.exact").is_none());
        let e = io_read_error("t.exact").expect("3rd call fires");
        assert!(e.to_string().contains("t.exact"), "{e}");
        assert!(io_read_error("t.exact").is_none(), "4th call is clean");
        assert!(io_read_error("t.other").is_none(), "other sites untouched");
        disarm();
    }

    #[test]
    fn from_fires_on_every_call_past_n() {
        let _guard = TEST_LOCK.lock().unwrap();
        arm_from_spec("t.from=2+").unwrap();
        assert!(io_read_error("t.from").is_none());
        for _ in 0..3 {
            assert!(io_read_error("t.from").is_some());
        }
        disarm();
    }

    #[test]
    fn percent_is_deterministic_under_a_seed() {
        let _guard = TEST_LOCK.lock().unwrap();
        let run = || -> Vec<bool> {
            arm_from_spec("t.pct=%40,seed=9").unwrap();
            (0..64).map(|_| fires("t.pct")).collect()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same spec + seed fires on the same calls");
        let hits = a.iter().filter(|f| **f).count();
        assert!(hits > 0 && hits < 64, "{hits} of 64 fired");
        disarm();
    }

    #[test]
    fn injected_panic_carries_the_site() {
        let _guard = TEST_LOCK.lock().unwrap();
        arm_from_spec("t.panic=1+").unwrap();
        let caught =
            std::panic::catch_unwind(|| worker_panic("t.panic")).expect_err("fires -> panics");
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("t.panic"), "{msg}");
        disarm();
    }

    #[test]
    fn firing_is_counted_in_the_registry() {
        let _guard = TEST_LOCK.lock().unwrap();
        arm_from_spec("t.counted=1+").unwrap();
        let before = crate::global().counter("faults.fired.t.counted");
        assert!(io_read_error("t.counted").is_some());
        assert!(crate::global().counter("faults.fired.t.counted") > before);
        disarm();
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(arm_from_spec("nonsense").is_err());
        assert!(arm_from_spec("a=xyz").is_err());
        assert!(arm_from_spec("a=%150").is_err());
        // leaving the plan in whatever state it was is fine; clean up
        let _guard = TEST_LOCK.lock().unwrap();
        disarm();
    }

    #[test]
    fn rearming_resets_counters() {
        let _guard = TEST_LOCK.lock().unwrap();
        arm_from_spec("t.reset=1").unwrap();
        assert!(io_read_error("t.reset").is_some());
        arm_from_spec("t.reset=1").unwrap();
        assert!(io_read_error("t.reset").is_some(), "counter restarted");
        disarm();
    }
}
