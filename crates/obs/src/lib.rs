//! # gorder-obs — the observability layer
//!
//! The paper's entire claim rests on *measured* numbers — wall-clock,
//! cache misses, locality scores — yet measurement plumbing scattered
//! across crates (engine stats, bench cell statuses, ad-hoc stderr) is
//! exactly how runs stop being reconstructable. This crate centralises
//! three primitives, dependency-free so every other crate can use them:
//!
//! * [`registry`] — a process-wide [`Registry`] of monotonic counters,
//!   gauges, and **fixed-bucket** histograms (bucket boundaries are part
//!   of the metric's identity, never derived from the data, so two runs
//!   — or two thread counts — always produce comparable shapes);
//! * [`span`](mod@span) — RAII span timers ([`span("gorder.build")`](span())
//!   starts one; dropping the guard records its duration), aggregated
//!   per name into the registry;
//! * [`trace`] — a schema-versioned JSONL event sink ([`TraceSink`]):
//!   one [`RunManifest`] header line carrying run provenance (dataset,
//!   ordering, algorithm, threads, window, config hash, wall-clock
//!   start), then one event line per phase / cell / kernel run, flushed
//!   line-by-line so an interrupted sweep leaves a readable prefix.
//!
//! [`json`] holds the hand-rolled escaping/formatting machinery shared
//! with the CLI's `--stats` line, plus the strict parser the tests and
//! `gorder-cli validate-trace` use to reject malformed output.
//!
//! [`faults`] is the deterministic fault-injection layer the
//! crash-safety tests arm (via `GORDER_FAULTS` or a `--faults` flag);
//! disarmed — the default — every injection point is one atomic load.

pub mod faults;
pub mod json;
pub mod registry;
pub mod span;
pub mod trace;

pub use registry::{Histogram, Registry, Snapshot, SpanStats};
pub use span::Span;
pub use trace::{
    validate_jsonl, validate_jsonl_lenient, CellEvent, GateEvent, KernelEvent, OrderEvent,
    PhaseEvent, RowEvent, RunManifest, ServeEvent, TraceEvent, TraceSink, TraceSummary,
    SCHEMA_VERSION,
};

/// The process-wide default registry. Library code records into this
/// (via [`span()`], [`Registry::counter_add`], …) so binaries can export
/// one snapshot per run without threading a registry through every call.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

/// Starts a span timer on the [`global`] registry. The returned guard
/// records the elapsed seconds under `name` when dropped.
///
/// ```
/// {
///     let _span = gorder_obs::span("gorder.build");
///     // ... timed work ...
/// } // recorded here
/// assert!(gorder_obs::global().snapshot().spans.iter().any(|(n, _)| n == "gorder.build"));
/// ```
pub fn span(name: &str) -> Span<'static, '_> {
    global().span(name)
}

#[cfg(test)]
mod tests {
    #[test]
    fn global_is_shared() {
        super::global().counter_add("obs.test.global", 2);
        super::global().counter_add("obs.test.global", 3);
        assert!(super::global().counter("obs.test.global") >= 5);
    }
}
