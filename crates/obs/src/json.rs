//! Hand-rolled JSON machinery for the one-object-per-line surfaces
//! (`--stats`, the trace sink). No serde: the grammar these lines use is
//! tiny (strings, numbers, booleans, null, flat arrays) and the writer
//! controls key order, which the golden-schema tests pin.

use std::collections::BTreeMap;

/// Minimal JSON string escaping: quotes, backslashes, and control
/// characters. Everything else passes through verbatim (UTF-8 is legal
/// in JSON strings).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON value. JSON has no NaN/inf, so non-finite
/// values become `null` — a NaN-time cell must still produce a parseable
/// trace line (that is the whole point of recording it).
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        // Normalize -0.0 (e.g. an empty `Iterator::sum::<f64>()`, which
        // folds from -0.0) so zeros are textually identical everywhere.
        "0".to_string()
    } else if v.is_finite() {
        // Rust's float Display always yields a valid JSON number for
        // finite values (no exponent, always a leading digit).
        v.to_string()
    } else {
        "null".to_string()
    }
}

/// An insertion-ordered JSON object writer. Keys appear exactly in call
/// order — the property the golden key-sequence tests lock down.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, k: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    /// Appends a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Appends a string-or-null field.
    pub fn opt_str(self, k: &str, v: Option<&str>) -> Self {
        match v {
            Some(v) => self.str(k, v),
            None => self.null(k),
        }
    }

    /// Appends an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Appends an unsigned-integer-or-null field.
    pub fn opt_u64(self, k: &str, v: Option<u64>) -> Self {
        match v {
            Some(v) => self.u64(k, v),
            None => self.null(k),
        }
    }

    /// Appends a float field (`null` when non-finite).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        self.buf.push_str(&fmt_f64(v));
        self
    }

    /// Appends a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Appends an explicit `null` field.
    pub fn null(mut self, k: &str) -> Self {
        self.key(k);
        self.buf.push_str("null");
        self
    }

    /// Appends an array of floats (non-finite entries become `null`).
    pub fn f64_array(mut self, k: &str, vs: &[f64]) -> Self {
        self.key(k);
        self.buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&fmt_f64(*v));
        }
        self.buf.push(']');
        self
    }

    /// Appends an array of strings (each escaped).
    pub fn str_array(mut self, k: &str, vs: &[String]) -> Self {
        self.key(k);
        self.buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push('"');
            self.buf.push_str(&escape(v));
            self.buf.push('"');
        }
        self.buf.push(']');
        self
    }

    /// Appends an array of unsigned integers.
    pub fn u64_array(mut self, k: &str, vs: &[u64]) -> Self {
        self.key(k);
        self.buf.push('[');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&v.to_string());
        }
        self.buf.push(']');
        self
    }

    /// Closes the object and returns the line (no trailing newline).
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Strict parser for one JSON object line as the writers here emit it:
/// no whitespace padding, string keys, values that are strings, numbers,
/// booleans, `null`, or flat arrays thereof. Returns the top-level keys
/// mapped to their **raw value text**; rejects trailing garbage, raw
/// control characters, bad escapes, and malformed numbers.
///
/// This is the shared validation helper: the golden tests, the CI trace
/// check, and `gorder-cli validate-trace` all go through it, so "parses
/// here" means "parses everywhere downstream".
pub fn parse_object(line: &str) -> Result<BTreeMap<String, String>, String> {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn err(&self, what: &str) -> String {
            format!("{what} at byte {}", self.i)
        }
        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.b.get(self.i) == Some(&c) {
                self.i += 1;
                Ok(())
            } else {
                Err(self.err(&format!("expected {:?}", c as char)))
            }
        }
        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let start = self.i;
            loop {
                match self.b.get(self.i) {
                    None => return Err(self.err("unterminated string")),
                    Some(b'"') => break,
                    Some(b'\\') => {
                        match self.b.get(self.i + 1) {
                            Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                                self.i += 2;
                            }
                            Some(b'u') => {
                                let hex = self.b.get(self.i + 2..self.i + 6);
                                let ok =
                                    hex.is_some_and(|h| h.iter().all(|c| c.is_ascii_hexdigit()));
                                if !ok {
                                    return Err(self.err("bad \\u escape"));
                                }
                                self.i += 6;
                            }
                            _ => return Err(self.err("bad escape")),
                        };
                    }
                    Some(c) if *c < 0x20 => return Err(self.err("raw control char")),
                    Some(_) => self.i += 1,
                }
            }
            let s = String::from_utf8(self.b[start..self.i].to_vec())
                .map_err(|_| self.err("non-utf8"))?;
            self.eat(b'"')?;
            Ok(s)
        }
        fn number(&mut self) -> Result<(), String> {
            if self.b.get(self.i) == Some(&b'-') {
                self.i += 1;
            }
            let digits = |p: &mut Self| {
                let s = p.i;
                while p.b.get(p.i).is_some_and(u8::is_ascii_digit) {
                    p.i += 1;
                }
                p.i > s
            };
            if !digits(self) {
                return Err(self.err("expected digits"));
            }
            if self.b.get(self.i) == Some(&b'.') {
                self.i += 1;
                if !digits(self) {
                    return Err(self.err("expected fraction digits"));
                }
            }
            if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
                self.i += 1;
                if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                    self.i += 1;
                }
                if !digits(self) {
                    return Err(self.err("expected exponent digits"));
                }
            }
            Ok(())
        }
        fn value(&mut self) -> Result<String, String> {
            let start = self.i;
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.string()?;
                }
                Some(b't') if self.b[self.i..].starts_with(b"true") => self.i += 4,
                Some(b'f') if self.b[self.i..].starts_with(b"false") => self.i += 5,
                Some(b'n') if self.b[self.i..].starts_with(b"null") => self.i += 4,
                Some(b'[') => {
                    // Flat array of scalar values, no whitespace —
                    // matching the writer.
                    self.i += 1;
                    if self.b.get(self.i) != Some(&b']') {
                        loop {
                            self.value()?;
                            match self.b.get(self.i) {
                                Some(b',') => self.i += 1,
                                Some(b']') => break,
                                _ => return Err(self.err("expected ',' or ']'")),
                            }
                        }
                    }
                    self.i += 1;
                }
                _ => self.number()?,
            }
            String::from_utf8(self.b[start..self.i].to_vec()).map_err(|_| self.err("non-utf8"))
        }
    }
    let mut p = P {
        b: line.as_bytes(),
        i: 0,
    };
    let mut obj = BTreeMap::new();
    p.eat(b'{')?;
    if p.b.get(p.i) != Some(&b'}') {
        loop {
            let key = p.string()?;
            p.eat(b':')?;
            let val = p.value()?;
            obj.insert(key, val);
            match p.b.get(p.i) {
                Some(b',') => p.i += 1,
                Some(b'}') => break,
                _ => return Err(p.err("expected ',' or '}'")),
            }
        }
    }
    p.eat(b'}')?;
    if p.i != p.b.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(obj)
}

/// Decodes the **raw value text** of a JSON string (as [`parse_object`]
/// returns it: quotes included) back into the string it encodes.
/// Rejects values that are not strings.
pub fn parse_string(raw: &str) -> Result<String, String> {
    let inner = raw
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("{raw:?} is not a JSON string"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('b') => out.push('\u{0008}'),
            Some('f') => out.push('\u{000c}'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16)
                    .map_err(|_| format!("bad \\u escape in {raw:?}"))?;
                // The writer only emits \u escapes for control chars, so
                // surrogate pairs never occur; reject them rather than
                // silently mangling.
                let c = char::from_u32(code).ok_or_else(|| format!("bad \\u escape in {raw:?}"))?;
                out.push(c);
            }
            _ => return Err(format!("bad escape in {raw:?}")),
        }
    }
    Ok(out)
}

/// Decodes the raw value text of a flat JSON array of strings (e.g.
/// `["a","b"]`, as [`parse_object`] returns it) into its elements.
pub fn parse_string_array(raw: &str) -> Result<Vec<String>, String> {
    let inner = raw
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("{raw:?} is not a JSON array"))?;
    let mut out = Vec::new();
    let bytes = inner.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            return Err(format!("non-string element in {raw:?}"));
        }
        let start = i;
        i += 1;
        while i < bytes.len() && bytes[i] != b'"' {
            i += if bytes[i] == b'\\' { 2 } else { 1 };
        }
        if i >= bytes.len() {
            return Err(format!("unterminated string in {raw:?}"));
        }
        i += 1; // past the closing quote
        out.push(parse_string(&inner[start..i])?);
        match bytes.get(i) {
            None => break,
            Some(b',') => i += 1,
            _ => return Err(format!("expected ',' in {raw:?}")),
        }
    }
    Ok(out)
}

/// Extracts the top-level key sequence (insertion order) from one JSON
/// object line — the shape the golden key-order tests compare against.
pub fn top_level_keys(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut keys = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += if bytes[j] == b'\\' { 2 } else { 1 };
                }
                if depth == 1 && bytes.get(j + 1) == Some(&b':') {
                    keys.push(line[start..j].to_string());
                }
                i = j;
            }
            _ => {}
        }
        i += 1;
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("tab\there"), "tab\\u0009here");
        assert_eq!(escape("uni\u{00e9}"), "uni\u{00e9}");
    }

    #[test]
    fn fmt_f64_null_for_non_finite() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(-0.0), "0", "negative zero is normalized");
        assert_eq!(
            fmt_f64(std::iter::empty::<f64>().sum()),
            "0",
            "empty f64 sum is -0.0"
        );
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn object_builder_roundtrips() {
        let line = JsonObject::new()
            .str("name", "a\"b")
            .u64("n", 42)
            .f64("t", 1.25)
            .f64("bad", f64::NAN)
            .bool("ok", true)
            .null("none")
            .f64_array("xs", &[1.0, f64::INFINITY])
            .u64_array("ks", &[1, 2])
            .finish();
        let obj = parse_object(&line).unwrap_or_else(|e| panic!("{e} in {line}"));
        assert_eq!(obj["name"], "\"a\\\"b\"");
        assert_eq!(obj["n"], "42");
        assert_eq!(obj["t"], "1.25");
        assert_eq!(obj["bad"], "null");
        assert_eq!(obj["ok"], "true");
        assert_eq!(obj["none"], "null");
        assert_eq!(obj["xs"], "[1,null]");
        assert_eq!(obj["ks"], "[1,2]");
        assert_eq!(
            top_level_keys(&line),
            vec!["name", "n", "t", "bad", "ok", "none", "xs", "ks"]
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_object("{\"a\":1}x").is_err());
        assert!(parse_object("{\"a\":01b}").is_err());
        assert!(parse_object("{\"a\":}").is_err());
        assert!(
            parse_object("{\"a\" : 1}").is_err(),
            "no-whitespace grammar"
        );
        assert!(parse_object("{\"a\":\"\u{0007}\"}").is_err());
        assert!(parse_object("nope").is_err());
    }

    #[test]
    fn parser_accepts_empty_object() {
        assert!(parse_object("{}").unwrap().is_empty());
    }

    #[test]
    fn string_roundtrips_through_raw_value_text() {
        for s in ["plain", "a\"b\\c", "tab\there", "comma,comma", ""] {
            let line = JsonObject::new().str("k", s).finish();
            let obj = parse_object(&line).unwrap();
            assert_eq!(parse_string(&obj["k"]).unwrap(), s);
        }
        assert!(parse_string("42").is_err());
        assert!(parse_string("\"bad\\x\"").is_err());
    }

    #[test]
    fn string_array_roundtrips_through_raw_value_text() {
        let cells = vec!["a".to_string(), "b\"c".to_string(), String::new()];
        let line = JsonObject::new().str_array("cells", &cells).finish();
        let obj = parse_object(&line).unwrap();
        assert_eq!(parse_string_array(&obj["cells"]).unwrap(), cells);
        assert_eq!(parse_string_array("[]").unwrap(), Vec::<String>::new());
        assert!(parse_string_array("[1,2]").is_err());
        assert!(parse_string_array("\"x\"").is_err());
    }

    #[test]
    fn key_extractor_handles_strings_and_arrays() {
        let keys = top_level_keys(r#"{"a":"x:y","b":[1,2],"c":{"inner":1},"d":null}"#);
        assert_eq!(keys, vec!["a", "b", "c", "d"]);
    }
}
