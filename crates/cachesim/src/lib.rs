//! # gorder-cachesim — cache-hierarchy simulation
//!
//! The paper attributes Gorder's speedups to cache behaviour using
//! hardware performance counters (`perf`/`ocperf`: L1/LLC loads and
//! misses, stall cycles). Hardware counters are neither portable nor
//! available in every environment, so this reproduction substitutes a
//! **transparent software model** (DESIGN.md §3):
//!
//! * [`level::CacheLevel`] — one set-associative, true-LRU cache level;
//! * [`hierarchy::CacheHierarchy`] — an inclusive L1/L2/L3 stack with
//!   per-level reference/miss counters, defaulting to the replication's
//!   Xeon E5-4650L geometry (32 KiB / 256 KiB / 20 MiB, 64-byte lines);
//! * [`stall::StallModel`] — converts hit/miss counts into CPU-execute
//!   vs. cache-stall cycle shares using the replication's own latency
//!   footnote (L1 4 cy, L2 12 cy, L3 42 cy, DRAM ≈ 62 ns);
//! * [`tracer::Tracer`] — virtual address space for the graph's CSR
//!   arrays and the algorithms' property arrays;
//! * [`trace`] — one replayer per benchmark algorithm that performs the
//!   real computation while feeding every data reference through the
//!   hierarchy.
//!
//! Because the replayers walk the same CSR arrays in the same order as
//! `gorder-algos`, a node reordering changes the simulated address stream
//! exactly as it would change the hardware one — which is all the paper's
//! Tables 3–4 and Figure 1 measure.

pub mod hierarchy;
pub mod level;
pub mod stall;
pub mod trace;
pub mod tracer;

pub use hierarchy::{CacheHierarchy, CacheStats, HierarchyConfig};
pub use level::{CacheLevel, LevelConfig, LevelStats};
pub use stall::{StallBreakdown, StallModel};
pub use tracer::{CounterSnapshot, Tracer};
