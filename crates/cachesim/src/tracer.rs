//! Virtual address space and access recording.
//!
//! A [`Tracer`] owns a [`CacheHierarchy`] plus a bump allocator for
//! *virtual arrays*: each array the traced algorithm would allocate
//! (CSR offsets/targets, distance arrays, rank vectors, …) gets a
//! line-aligned address range, and every element access is translated to
//! a byte address and pushed through the hierarchy. A separate counter
//! tallies non-memory operations for the stall model's CPU share.

use crate::hierarchy::{CacheHierarchy, CacheStats};
use crate::stall::{StallBreakdown, StallModel};
use gorder_obs::Histogram;
use std::collections::HashMap;

/// Bucket upper bounds for [`Tracer::reuse_histogram`]: powers of two
/// from 1 to 2²³ distinct lines (plus the implicit overflow bucket).
/// Fixed by this spec — never by the trace — so reuse profiles from
/// different runs and orderings are comparable bin-for-bin.
pub const REUSE_DISTANCE_BOUNDS: [f64; 24] = {
    let mut b = [0.0; 24];
    let mut i = 0;
    while i < 24 {
        b[i] = (1u64 << i) as f64;
        i += 1;
    }
    b
};

/// Exact LRU reuse distances over cache lines: for each access, the
/// number of *distinct other lines* touched since the previous access to
/// the same line (0 = immediate re-reference; cold first touches are not
/// recorded). Implemented with the classic Bennett–Kruskal scheme — a
/// Fenwick tree marking each line's most recent access time — so each
/// access costs `O(log T)`.
#[derive(Debug, Clone)]
struct ReuseTracker {
    last: HashMap<u64, u64>,
    tree: Vec<u64>, // 1-indexed Fenwick tree over access times
    now: u64,
    hist: Histogram,
}

impl ReuseTracker {
    fn new() -> Self {
        ReuseTracker {
            last: HashMap::new(),
            tree: vec![0],
            now: 0,
            hist: Histogram::new(&REUSE_DISTANCE_BOUNDS),
        }
    }

    fn add(&mut self, mut i: u64, delta: i64) {
        while (i as usize) < self.tree.len() {
            self.tree[i as usize] = self.tree[i as usize].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    fn prefix(&self, mut i: u64) -> u64 {
        let mut s = 0u64;
        while i > 0 {
            s = s.wrapping_add(self.tree[i as usize]);
            i -= i & i.wrapping_neg();
        }
        s
    }

    fn record(&mut self, line: u64) {
        self.now += 1;
        let t = self.now;
        if self.tree.len() <= t as usize {
            self.tree.resize((t as usize + 1).next_power_of_two(), 0);
            // Rebuild: Fenwick trees cannot simply be zero-extended,
            // because parent ranges change size. Re-inserting the live
            // marks is O(L log T) and happens O(log T) times.
            for v in &mut self.tree {
                *v = 0;
            }
            let marks: Vec<u64> = self.last.values().copied().collect();
            for m in marks {
                self.add(m, 1);
            }
        }
        if let Some(prev) = self.last.insert(line, t) {
            let distance = self.prefix(t - 1) - self.prefix(prev);
            self.add(prev, -1);
            self.hist.observe(distance as f64);
        }
        self.add(t, 1);
    }
}

/// A virtual array: base address + element size.
#[derive(Debug, Clone, Copy)]
pub struct VArray {
    base: u64,
    elem_bytes: u64,
    len: u64,
}

impl VArray {
    /// Address of element `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        debug_assert!(
            (i as u64) < self.len.max(1),
            "index {i} out of bounds {}",
            self.len
        );
        self.base + i as u64 * self.elem_bytes
    }

    /// Element count.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Records an algorithm's memory references into a cache hierarchy.
#[derive(Debug, Clone)]
pub struct Tracer {
    hierarchy: CacheHierarchy,
    ops: u64,
    bump: u64,
    reuse: Option<ReuseTracker>,
}

/// Heap base: arbitrary, line-aligned, nonzero so address 0 is never used.
const HEAP_BASE: u64 = 0x0001_0000_0000;

impl Tracer {
    /// Wraps a hierarchy.
    pub fn new(hierarchy: CacheHierarchy) -> Self {
        Tracer {
            hierarchy,
            ops: 0,
            bump: HEAP_BASE,
            reuse: None,
        }
    }

    /// Turns on exact reuse-distance tracking (off by default: it costs
    /// `O(log T)` per access plus a last-access map). Distances land in
    /// the fixed [`REUSE_DISTANCE_BOUNDS`] buckets, readable via
    /// [`Tracer::reuse_histogram`].
    pub fn enable_reuse_tracking(&mut self) {
        if self.reuse.is_none() {
            self.reuse = Some(ReuseTracker::new());
        }
    }

    /// The reuse-distance histogram, if tracking was enabled. One
    /// observation per warm line access; cold first touches are not
    /// counted (their distance is undefined, not merely large).
    pub fn reuse_histogram(&self) -> Option<&Histogram> {
        self.reuse.as_ref().map(|r| &r.hist)
    }

    /// Allocates a virtual array of `len` elements of `elem_bytes` each,
    /// line-aligned — mirroring what a real allocator would hand out for
    /// consecutively allocated `Vec`s.
    pub fn alloc(&mut self, len: usize, elem_bytes: u64) -> VArray {
        let a = VArray {
            base: self.bump,
            elem_bytes,
            len: len as u64,
        };
        let bytes = (len as u64 * elem_bytes).max(1);
        self.bump += (bytes + 63) & !63;
        a
    }

    /// One data reference to `arr[i]` (read and write cost the same in
    /// this model).
    #[inline]
    pub fn touch(&mut self, arr: &VArray, i: usize) {
        let addr = arr.addr(i);
        self.hierarchy.access(addr);
        if let Some(reuse) = &mut self.reuse {
            reuse.record(addr / 64);
        }
    }

    /// Counts `n` non-memory operations.
    #[inline]
    pub fn op(&mut self, n: u64) {
        self.ops += n;
    }

    /// Operations counted so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Cache counters so far.
    pub fn stats(&self) -> CacheStats {
        self.hierarchy.stats()
    }

    /// CPU/stall split under `model`.
    pub fn breakdown(&self, model: &StallModel) -> StallBreakdown {
        model.breakdown(&self.stats(), self.ops)
    }

    /// A flat, fully deterministic snapshot of every counter this run
    /// accumulated — the raw material for regression baselines. Every
    /// field is an exact integer count (the reuse sum is an integral
    /// `f64`), so two replays of the same workload produce bit-identical
    /// snapshots on any platform.
    pub fn counters(&self) -> CounterSnapshot {
        let levels = self.hierarchy.level_stats();
        let (reuse_total, reuse_sum, reuse_counts) = match self.reuse_histogram() {
            Some(h) => (h.total(), h.sum(), h.counts().to_vec()),
            None => (0, 0.0, Vec::new()),
        };
        CounterSnapshot {
            refs: levels.first().map_or(0, |l| l.references),
            level_misses: levels.iter().map(|l| l.misses).collect(),
            memory_accesses: self.hierarchy.stats().memory_accesses,
            ops: self.ops,
            reuse_total,
            reuse_sum,
            reuse_counts,
        }
    }
}

/// Per-run counter totals from a [`Tracer`], frozen at snapshot time.
/// Unlike [`CacheStats`] (which carries derived rates), this holds only
/// the raw counts, so equality is exact and byte-reproducible — the
/// property the bench regression gate's sim-proxy baselines rely on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterSnapshot {
    /// Data references issued (= L1 references).
    pub refs: u64,
    /// Misses at each cache level, L1 first. The last entry equals
    /// `memory_accesses` (an inclusive hierarchy: LLC misses go to DRAM).
    pub level_misses: Vec<u64>,
    /// Accesses that fell through every level.
    pub memory_accesses: u64,
    /// Non-memory operations counted via [`Tracer::op`].
    pub ops: u64,
    /// Warm-line reuse observations (0 when tracking was off).
    pub reuse_total: u64,
    /// Sum of observed reuse distances (integral; 0.0 when off).
    pub reuse_sum: f64,
    /// Reuse-distance histogram counts over [`REUSE_DISTANCE_BOUNDS`]
    /// plus the overflow bucket (empty when tracking was off).
    pub reuse_counts: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyConfig;

    fn tracer() -> Tracer {
        Tracer::new(CacheHierarchy::new(&HierarchyConfig::xeon_e5()))
    }

    #[test]
    fn arrays_are_disjoint_and_aligned() {
        let mut t = tracer();
        let a = t.alloc(100, 4);
        let b = t.alloc(50, 8);
        assert_eq!(a.addr(0) % 64, 0);
        assert_eq!(b.addr(0) % 64, 0);
        assert!(a.addr(99) < b.addr(0), "arrays must not overlap");
    }

    #[test]
    fn element_addressing() {
        let mut t = tracer();
        let a = t.alloc(10, 8);
        assert_eq!(a.addr(3) - a.addr(0), 24);
    }

    #[test]
    fn touches_reach_the_hierarchy() {
        let mut t = tracer();
        let a = t.alloc(1000, 4);
        for i in 0..1000 {
            t.touch(&a, i);
        }
        let s = t.stats();
        assert_eq!(s.l1_refs, 1000);
        // sequential u32 scan: ~1/16 miss rate
        assert!(s.l1_miss_rate < 0.10, "mr = {}", s.l1_miss_rate);
    }

    #[test]
    fn ops_counted() {
        let mut t = tracer();
        t.op(5);
        t.op(2);
        assert_eq!(t.ops(), 7);
        let b = t.breakdown(&StallModel::skylake());
        assert_eq!(b.cpu_cycles, 7.0);
    }

    #[test]
    fn reuse_tracking_is_opt_in() {
        let mut t = tracer();
        let a = t.alloc(16, 4);
        t.touch(&a, 0);
        assert!(t.reuse_histogram().is_none());
    }

    #[test]
    fn reuse_distances_are_exact() {
        let mut t = tracer();
        t.enable_reuse_tracking();
        // One element per line (64-byte elements) so touches map 1:1 to
        // lines: A B A → A reused over {B} → distance 1;
        // then B reused over {A} → distance 1; then B again → 0.
        let a = t.alloc(4, 64);
        t.touch(&a, 0); // A cold
        t.touch(&a, 1); // B cold
        t.touch(&a, 0); // A: distance 1
        t.touch(&a, 1); // B: distance 1
        t.touch(&a, 1); // B: distance 0
        let h = t.reuse_histogram().unwrap();
        assert_eq!(h.total(), 3, "cold touches are not recorded");
        // distances {1, 1, 0} all land in the ≤1 bucket
        assert_eq!(h.counts()[0], 3);
        assert_eq!(h.sum(), 2.0);
    }

    #[test]
    fn reuse_scan_of_k_lines_has_distance_k_minus_1() {
        let mut t = tracer();
        t.enable_reuse_tracking();
        let k = 100usize;
        let a = t.alloc(k, 64);
        for _ in 0..3 {
            for i in 0..k {
                t.touch(&a, i);
            }
        }
        // Each warm access in a cyclic scan of k distinct lines reuses
        // over exactly the other k−1 lines.
        let h = t.reuse_histogram().unwrap();
        assert_eq!(h.total(), (2 * k) as u64);
        assert_eq!(h.sum(), (2 * k * (k - 1)) as f64);
        // 64 < 99 ≤ 128: all mass in the ≤128 bucket.
        let idx = REUSE_DISTANCE_BOUNDS
            .iter()
            .position(|&b| b == 128.0)
            .unwrap();
        assert_eq!(h.counts()[idx], (2 * k) as u64);
    }

    #[test]
    fn zero_length_alloc_ok() {
        let mut t = tracer();
        let a = t.alloc(0, 4);
        assert!(a.is_empty());
        let b = t.alloc(4, 4);
        assert!(b.addr(0) > a.base);
    }
}
