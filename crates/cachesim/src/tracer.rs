//! Virtual address space and access recording.
//!
//! A [`Tracer`] owns a [`CacheHierarchy`] plus a bump allocator for
//! *virtual arrays*: each array the traced algorithm would allocate
//! (CSR offsets/targets, distance arrays, rank vectors, …) gets a
//! line-aligned address range, and every element access is translated to
//! a byte address and pushed through the hierarchy. A separate counter
//! tallies non-memory operations for the stall model's CPU share.

use crate::hierarchy::{CacheHierarchy, CacheStats};
use crate::stall::{StallBreakdown, StallModel};

/// A virtual array: base address + element size.
#[derive(Debug, Clone, Copy)]
pub struct VArray {
    base: u64,
    elem_bytes: u64,
    len: u64,
}

impl VArray {
    /// Address of element `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        debug_assert!(
            (i as u64) < self.len.max(1),
            "index {i} out of bounds {}",
            self.len
        );
        self.base + i as u64 * self.elem_bytes
    }

    /// Element count.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Records an algorithm's memory references into a cache hierarchy.
#[derive(Debug, Clone)]
pub struct Tracer {
    hierarchy: CacheHierarchy,
    ops: u64,
    bump: u64,
}

/// Heap base: arbitrary, line-aligned, nonzero so address 0 is never used.
const HEAP_BASE: u64 = 0x0001_0000_0000;

impl Tracer {
    /// Wraps a hierarchy.
    pub fn new(hierarchy: CacheHierarchy) -> Self {
        Tracer {
            hierarchy,
            ops: 0,
            bump: HEAP_BASE,
        }
    }

    /// Allocates a virtual array of `len` elements of `elem_bytes` each,
    /// line-aligned — mirroring what a real allocator would hand out for
    /// consecutively allocated `Vec`s.
    pub fn alloc(&mut self, len: usize, elem_bytes: u64) -> VArray {
        let a = VArray {
            base: self.bump,
            elem_bytes,
            len: len as u64,
        };
        let bytes = (len as u64 * elem_bytes).max(1);
        self.bump += (bytes + 63) & !63;
        a
    }

    /// One data reference to `arr[i]` (read and write cost the same in
    /// this model).
    #[inline]
    pub fn touch(&mut self, arr: &VArray, i: usize) {
        self.hierarchy.access(arr.addr(i));
    }

    /// Counts `n` non-memory operations.
    #[inline]
    pub fn op(&mut self, n: u64) {
        self.ops += n;
    }

    /// Operations counted so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Cache counters so far.
    pub fn stats(&self) -> CacheStats {
        self.hierarchy.stats()
    }

    /// CPU/stall split under `model`.
    pub fn breakdown(&self, model: &StallModel) -> StallBreakdown {
        model.breakdown(&self.stats(), self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyConfig;

    fn tracer() -> Tracer {
        Tracer::new(CacheHierarchy::new(&HierarchyConfig::xeon_e5()))
    }

    #[test]
    fn arrays_are_disjoint_and_aligned() {
        let mut t = tracer();
        let a = t.alloc(100, 4);
        let b = t.alloc(50, 8);
        assert_eq!(a.addr(0) % 64, 0);
        assert_eq!(b.addr(0) % 64, 0);
        assert!(a.addr(99) < b.addr(0), "arrays must not overlap");
    }

    #[test]
    fn element_addressing() {
        let mut t = tracer();
        let a = t.alloc(10, 8);
        assert_eq!(a.addr(3) - a.addr(0), 24);
    }

    #[test]
    fn touches_reach_the_hierarchy() {
        let mut t = tracer();
        let a = t.alloc(1000, 4);
        for i in 0..1000 {
            t.touch(&a, i);
        }
        let s = t.stats();
        assert_eq!(s.l1_refs, 1000);
        // sequential u32 scan: ~1/16 miss rate
        assert!(s.l1_miss_rate < 0.10, "mr = {}", s.l1_miss_rate);
    }

    #[test]
    fn ops_counted() {
        let mut t = tracer();
        t.op(5);
        t.op(2);
        assert_eq!(t.ops(), 7);
        let b = t.breakdown(&StallModel::skylake());
        assert_eq!(b.cpu_cycles, 7.0);
    }

    #[test]
    fn zero_length_alloc_ok() {
        let mut t = tracer();
        let a = t.alloc(0, 4);
        assert!(a.is_empty());
        let b = t.alloc(4, 4);
        assert!(b.addr(0) > a.base);
    }
}
