//! Replayers for the value-propagation workloads: NQ, SP, PR, Diam.

use super::{GraphArrays, TraceCtx};
use crate::tracer::{Tracer, VArray};
use gorder_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// NQ — neighbour query: `q_u = Σ_{v ∈ out(u)} out_degree(v)`.
/// Checksum-compatible with `gorder_algos::nq`.
pub fn nq(g: &Graph, t: &mut Tracer) -> u64 {
    let n = g.n() as usize;
    let ga = GraphArrays::new(t, g);
    let degree = t.alloc(n, 4);
    // materialise the degree array (sequential offsets reads + writes)
    for u in g.nodes() {
        t.touch(&ga.out_off, u as usize);
        t.touch(&ga.out_off, u as usize + 1);
        t.touch(&degree, u as usize);
        t.op(1);
    }
    let q = t.alloc(n, 8);
    let mut checksum = 0u64;
    for u in g.nodes() {
        let (list, base) = ga.out_list(t, g, u);
        let mut sum = 0u64;
        for (k, &v) in list.iter().enumerate() {
            t.touch(&ga.out_tgt, base + k);
            t.touch(&degree, v as usize); // the cache-sensitive access
            t.op(1);
            sum += u64::from(g.out_degree(v));
        }
        t.touch(&q, u as usize);
        checksum = checksum.wrapping_add(sum);
    }
    checksum
}

/// One round-based Bellman–Ford pass over `dist`; returns the eccentricity
/// and the sum-of-(dist+1) checksum component.
fn sp_body(
    g: &Graph,
    t: &mut Tracer,
    ga: &GraphArrays,
    dist: &VArray,
    source: NodeId,
) -> (u32, u64) {
    const UNREACHABLE: u32 = u32::MAX;
    let n = g.n() as usize;
    let mut d = vec![UNREACHABLE; n];
    if n == 0 {
        return (0, 0);
    }
    d[source as usize] = 0;
    t.touch(dist, source as usize);
    loop {
        let mut changed = false;
        for u in g.nodes() {
            t.touch(dist, u as usize);
            let du = d[u as usize];
            if du == UNREACHABLE {
                continue;
            }
            let cand = du + 1;
            let (list, base) = ga.out_list(t, g, u);
            for (k, &v) in list.iter().enumerate() {
                t.touch(&ga.out_tgt, base + k);
                t.touch(dist, v as usize);
                t.op(1);
                if cand < d[v as usize] {
                    d[v as usize] = cand;
                    t.touch(dist, v as usize); // the write
                    changed = true;
                }
            }
        }
        t.op(1);
        if !changed {
            break;
        }
    }
    let mut ecc = 0u32;
    let mut sum = 0u64;
    for &x in &d {
        if x != UNREACHABLE {
            ecc = ecc.max(x);
            sum = sum.wrapping_add(u64::from(x)).wrapping_add(1);
        }
    }
    (ecc, sum)
}

/// SP — round-based Bellman–Ford. Checksum-compatible with
/// `gorder_algos::sp`.
pub fn sp(g: &Graph, t: &mut Tracer, ctx: &TraceCtx) -> u64 {
    if g.n() == 0 {
        return 0;
    }
    let ga = GraphArrays::new(t, g);
    let dist = t.alloc(g.n() as usize, 4);
    sp_body(g, t, &ga, &dist, ctx.source_for(g)).1
}

/// Diam — max eccentricity over sampled sources. Checksum-compatible with
/// `gorder_algos::diameter` (same RNG discipline).
pub fn diam(g: &Graph, t: &mut Tracer, ctx: &TraceCtx) -> u64 {
    if g.n() == 0 {
        return 0;
    }
    let ga = GraphArrays::new(t, g);
    let dist = t.alloc(g.n() as usize, 4);
    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let sources: Vec<NodeId> = (0..ctx.diameter_samples)
        .map(|_| rng.gen_range(0..g.n()))
        .collect();
    let mut best = 0u32;
    for s in sources {
        best = best.max(sp_body(g, t, &ga, &dist, s).0);
    }
    u64::from(best)
}

/// PR — pull-based PageRank power iteration. Checksum-compatible with
/// `gorder_algos::pagerank`.
pub fn pagerank(g: &Graph, t: &mut Tracer, ctx: &TraceCtx) -> u64 {
    let n = g.n() as usize;
    if n == 0 {
        return 0;
    }
    let alpha = ctx.damping;
    let inv_n = 1.0 / n as f64;
    let ga = GraphArrays::new(t, g);
    let inv_out_arr = t.alloc(n, 8);
    let inv_out: Vec<f64> = g
        .nodes()
        .map(|u| {
            t.touch(&ga.out_off, u as usize);
            t.touch(&ga.out_off, u as usize + 1);
            t.touch(&inv_out_arr, u as usize);
            t.op(1);
            let d = g.out_degree(u);
            if d == 0 {
                0.0
            } else {
                1.0 / f64::from(d)
            }
        })
        .collect();
    let rank_arr = t.alloc(n, 8);
    let next_arr = t.alloc(n, 8);
    let mut rank = vec![inv_n; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..ctx.pr_iterations {
        let mut dangling = 0.0;
        for u in g.nodes() {
            t.touch(&ga.out_off, u as usize);
            t.touch(&ga.out_off, u as usize + 1);
            if g.out_degree(u) == 0 {
                t.touch(&rank_arr, u as usize);
                dangling += rank[u as usize];
            }
        }
        let base_rank = (1.0 - alpha) * inv_n + alpha * dangling * inv_n;
        for u in g.nodes() {
            let (list, base) = ga.in_list(t, g, u);
            let mut acc = 0.0;
            for (k, &x) in list.iter().enumerate() {
                t.touch(&ga.in_tgt, base + k);
                t.touch(&rank_arr, x as usize); // the cache-sensitive pulls
                t.touch(&inv_out_arr, x as usize);
                t.op(2);
                acc += rank[x as usize] * inv_out[x as usize];
            }
            t.touch(&next_arr, u as usize);
            next[u as usize] = base_rank + alpha * acc;
        }
        std::mem::swap(&mut rank, &mut next);
        t.op(1);
    }
    let total: f64 = rank.iter().sum();
    (total * 1e6).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::CacheHierarchy;

    fn tracer() -> Tracer {
        Tracer::new(CacheHierarchy::xeon_e5())
    }

    fn g() -> Graph {
        Graph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 0), (5, 3)])
    }

    #[test]
    fn nq_checksum_value() {
        // recompute by hand: sum over u of Σ out_degree(v)
        let gg = g();
        let expected: u64 = gg
            .nodes()
            .flat_map(|u| {
                gg.out_neighbors(u)
                    .iter()
                    .map(|&v| u64::from(gg.out_degree(v)))
            })
            .sum();
        let mut t = tracer();
        assert_eq!(nq(&gg, &mut t), expected);
    }

    #[test]
    fn sp_eccentricity_path() {
        let gg = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut t = tracer();
        let ctx = TraceCtx {
            source: Some(0),
            ..Default::default()
        };
        // Σ (dist + 1) = (0+1)+(1+1)+(2+1)+(3+1) = 10
        assert_eq!(sp(&gg, &mut t, &ctx), 10);
    }

    #[test]
    fn diam_on_cycle() {
        let edges: Vec<(NodeId, NodeId)> = (0..8u32).map(|u| (u, (u + 1) % 8)).collect();
        let gg = Graph::from_edges(8, &edges);
        let mut t = tracer();
        let ctx = TraceCtx {
            diameter_samples: 3,
            ..Default::default()
        };
        assert_eq!(diam(&gg, &mut t, &ctx), 7);
    }

    #[test]
    fn pagerank_mass_checksum() {
        let mut t = tracer();
        let ctx = TraceCtx {
            pr_iterations: 20,
            ..Default::default()
        };
        // mass conserved → checksum ≈ 1e6
        let c = pagerank(&g(), &mut t, &ctx);
        assert_eq!(c, 1_000_000);
    }

    #[test]
    fn pr_reference_counts_scale_with_iterations() {
        let gg = g();
        let mut t1 = tracer();
        pagerank(
            &gg,
            &mut t1,
            &TraceCtx {
                pr_iterations: 1,
                ..Default::default()
            },
        );
        let mut t10 = tracer();
        pagerank(
            &gg,
            &mut t10,
            &TraceCtx {
                pr_iterations: 10,
                ..Default::default()
            },
        );
        assert!(t10.stats().l1_refs > 5 * t1.stats().l1_refs);
    }
}
