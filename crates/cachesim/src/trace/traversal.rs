//! Replayers for the traversal workloads: BFS, DFS, SCC.

use super::{GraphArrays, TraceCtx};
use crate::tracer::Tracer;
use gorder_graph::{Graph, NodeId};

/// BFS — full-coverage breadth-first search. Checksum-compatible with
/// `gorder_algos::bfs`.
pub fn bfs(g: &Graph, t: &mut Tracer, ctx: &TraceCtx) -> u64 {
    let n = g.n() as usize;
    if n == 0 {
        return 0;
    }
    let source = ctx.source_for(g);
    let ga = GraphArrays::new(t, g);
    let depth_arr = t.alloc(n, 4);
    let order_arr = t.alloc(n, 4);
    let mut depth = vec![u32::MAX; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut primary_reached = 0u32;
    for s in std::iter::once(source).chain(g.nodes()) {
        t.touch(&depth_arr, s as usize);
        if depth[s as usize] != u32::MAX {
            continue;
        }
        depth[s as usize] = 0;
        let frontier_start = order.len();
        t.touch(&order_arr, order.len().min(n - 1));
        order.push(s);
        let mut head = frontier_start;
        while head < order.len() {
            t.touch(&order_arr, head);
            let u = order[head];
            head += 1;
            let du = depth[u as usize];
            let (list, base) = ga.out_list(t, g, u);
            for (k, &v) in list.iter().enumerate() {
                t.touch(&ga.out_tgt, base + k);
                t.touch(&depth_arr, v as usize);
                t.op(1);
                if depth[v as usize] == u32::MAX {
                    depth[v as usize] = du + 1;
                    t.touch(&depth_arr, v as usize); // write
                    t.touch(&order_arr, order.len().min(n - 1));
                    order.push(v);
                }
            }
        }
        if s == source {
            primary_reached = (order.len() - frontier_start) as u32;
        }
    }
    order[..primary_reached as usize]
        .iter()
        .fold(u64::from(primary_reached), |acc, &u| {
            acc.wrapping_add(u64::from(depth[u as usize]))
        })
}

/// DFS — full-coverage iterative depth-first search. Checksum-compatible
/// with `gorder_algos::dfs`.
pub fn dfs(g: &Graph, t: &mut Tracer, ctx: &TraceCtx) -> u64 {
    let n = g.n() as usize;
    if n == 0 {
        return 0;
    }
    let source = ctx.source_for(g);
    let ga = GraphArrays::new(t, g);
    let disc_arr = t.alloc(n, 4);
    let stack_arr = t.alloc(n, 8);
    let mut discovery = vec![u32::MAX; n];
    let mut visited = 0u64;
    let mut tree_edges = 0u32;
    let mut stack: Vec<(NodeId, u32)> = Vec::new();
    for s in std::iter::once(source).chain(g.nodes()) {
        t.touch(&disc_arr, s as usize);
        if discovery[s as usize] != u32::MAX {
            continue;
        }
        discovery[s as usize] = visited as u32;
        visited += 1;
        stack.push((s, 0));
        t.touch(&stack_arr, stack.len() - 1);
        while !stack.is_empty() {
            let top = stack.len() - 1;
            t.touch(&stack_arr, top);
            let (u, mut next) = stack[top];
            let (list, base) = ga.out_list(t, g, u);
            let mut advanced = false;
            while (next as usize) < list.len() {
                let k = next as usize;
                let v = list[k];
                next += 1;
                t.touch(&ga.out_tgt, base + k);
                t.touch(&disc_arr, v as usize);
                t.op(1);
                if discovery[v as usize] == u32::MAX {
                    discovery[v as usize] = visited as u32;
                    t.touch(&disc_arr, v as usize); // write
                    visited += 1;
                    tree_edges += 1;
                    stack[top].1 = next;
                    stack.push((v, 0));
                    t.touch(&stack_arr, stack.len() - 1);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                stack.pop();
            }
        }
    }
    visited.wrapping_mul(0x9E3779B97F4A7C15) ^ u64::from(tree_edges)
}

const UNVISITED: u32 = u32::MAX;

/// SCC — iterative Tarjan. Checksum-compatible with `gorder_algos::scc`.
pub fn scc(g: &Graph, t: &mut Tracer) -> u64 {
    let n = g.n() as usize;
    let ga = GraphArrays::new(t, g);
    let index_arr = t.alloc(n, 4);
    let lowlink_arr = t.alloc(n, 4);
    let onstack_arr = t.alloc(n, 1);
    let comp_arr = t.alloc(n, 4);
    let stack_arr = t.alloc(n, 4);
    let frames_arr = t.alloc(n, 8);

    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut sizes: Vec<u32> = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0u32;
    let mut frames: Vec<(NodeId, u32)> = Vec::new();

    for root in g.nodes() {
        t.touch(&index_arr, root as usize);
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        t.touch(&frames_arr, frames.len() - 1);
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        t.touch(&lowlink_arr, root as usize);
        next_index += 1;
        stack.push(root);
        t.touch(&stack_arr, stack.len() - 1);
        on_stack[root as usize] = true;
        t.touch(&onstack_arr, root as usize);

        while !frames.is_empty() {
            let top = frames.len() - 1;
            t.touch(&frames_arr, top);
            let (u, child) = frames[top];
            let (list, base) = ga.out_list(t, g, u);
            if (child as usize) < list.len() {
                let k = child as usize;
                let v = list[k];
                frames[top].1 = child + 1;
                t.touch(&ga.out_tgt, base + k);
                t.touch(&index_arr, v as usize);
                t.op(1);
                if index[v as usize] == UNVISITED {
                    index[v as usize] = next_index;
                    lowlink[v as usize] = next_index;
                    t.touch(&index_arr, v as usize);
                    t.touch(&lowlink_arr, v as usize);
                    next_index += 1;
                    stack.push(v);
                    t.touch(&stack_arr, stack.len() - 1);
                    on_stack[v as usize] = true;
                    t.touch(&onstack_arr, v as usize);
                    frames.push((v, 0));
                    t.touch(&frames_arr, frames.len() - 1);
                } else {
                    t.touch(&onstack_arr, v as usize);
                    if on_stack[v as usize] {
                        lowlink[u as usize] = lowlink[u as usize].min(index[v as usize]);
                        t.touch(&lowlink_arr, u as usize);
                    }
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[u as usize]);
                    t.touch(&lowlink_arr, parent as usize);
                    t.touch(&lowlink_arr, u as usize);
                }
                t.touch(&lowlink_arr, u as usize);
                t.touch(&index_arr, u as usize);
                if lowlink[u as usize] == index[u as usize] {
                    let mut size = 0u32;
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        t.touch(&stack_arr, stack.len().min(n.saturating_sub(1)));
                        on_stack[w as usize] = false;
                        t.touch(&onstack_arr, w as usize);
                        t.touch(&comp_arr, w as usize);
                        size += 1;
                        if w == u {
                            break;
                        }
                    }
                    sizes.push(size);
                }
            }
        }
    }
    sizes.iter().fold(sizes.len() as u64, |acc, &s| {
        acc.wrapping_add(u64::from(s) * u64::from(s))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::CacheHierarchy;

    fn tracer() -> Tracer {
        Tracer::new(CacheHierarchy::xeon_e5())
    }

    #[test]
    fn bfs_checksum_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut t = tracer();
        let ctx = TraceCtx {
            source: Some(0),
            ..Default::default()
        };
        // primary_reached = 4, depths sum = 0+1+2+3 = 6 → 10
        assert_eq!(bfs(&g, &mut t, &ctx), 10);
    }

    #[test]
    fn dfs_checksum_matches_formula() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut t = tracer();
        let ctx = TraceCtx {
            source: Some(0),
            ..Default::default()
        };
        let expected = 4u64.wrapping_mul(0x9E3779B97F4A7C15) ^ 3;
        assert_eq!(dfs(&g, &mut t, &ctx), expected);
    }

    #[test]
    fn scc_checksum_two_components() {
        // 3-cycle + 2-cycle: count 2, Σ size² = 9 + 4 → 15
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3)]);
        let mut t = tracer();
        assert_eq!(scc(&g, &mut t), 15);
    }

    #[test]
    fn traversals_touch_every_edge() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (3, 4), (2, 4)]);
        let ctx = TraceCtx::default();
        let mut t = tracer();
        bfs(&g, &mut t, &ctx);
        // at least one target read per edge
        assert!(t.stats().l1_refs >= g.m());
    }
}
