//! Replayers for the extension algorithms: WCC, triangle counting, label
//! propagation, betweenness. Checksum-compatible with their
//! `gorder-algos` twins, like the core nine.

use super::{GraphArrays, TraceCtx};
use crate::tracer::Tracer;
use gorder_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// WCC — BFS over the symmetrised view. Checksum-compatible with
/// `gorder_algos::wcc`.
pub fn wcc(g: &Graph, t: &mut Tracer) -> u64 {
    let n = g.n() as usize;
    let ga = GraphArrays::new(t, g);
    let comp_arr = t.alloc(n, 4);
    let queue_arr = t.alloc(n.max(1), 4);
    let mut component = vec![u32::MAX; n];
    let mut sizes: Vec<u32> = Vec::new();
    let mut queue: Vec<NodeId> = Vec::new();
    for root in g.nodes() {
        t.touch(&comp_arr, root as usize);
        if component[root as usize] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        component[root as usize] = id;
        queue.clear();
        queue.push(root);
        t.touch(&queue_arr, 0);
        let mut head = 0;
        let mut size = 0;
        while head < queue.len() {
            t.touch(&queue_arr, head);
            let u = queue[head];
            head += 1;
            size += 1;
            let (out_list, out_base) = ga.out_list(t, g, u);
            for (k, &v) in out_list.iter().enumerate() {
                t.touch(&ga.out_tgt, out_base + k);
                t.touch(&comp_arr, v as usize);
                if component[v as usize] == u32::MAX {
                    component[v as usize] = id;
                    t.touch(&comp_arr, v as usize);
                    t.touch(&queue_arr, queue.len().min(n - 1));
                    queue.push(v);
                }
            }
            let (in_list, in_base) = ga.in_list(t, g, u);
            for (k, &v) in in_list.iter().enumerate() {
                t.touch(&ga.in_tgt, in_base + k);
                t.touch(&comp_arr, v as usize);
                if component[v as usize] == u32::MAX {
                    component[v as usize] = id;
                    t.touch(&comp_arr, v as usize);
                    t.touch(&queue_arr, queue.len().min(n - 1));
                    queue.push(v);
                }
            }
        }
        sizes.push(size);
    }
    sizes.iter().fold(sizes.len() as u64, |acc, &s| {
        acc.wrapping_add(u64::from(s) * u64::from(s))
    })
}

/// Tri — forward triangle counting. Checksum-compatible with
/// `gorder_algos::triangles::count_triangles`.
///
/// The merged undirected adjacency and the oriented forward lists are
/// materialised exactly as the real implementation does, with the build
/// scans and the intersection loops traced.
pub fn triangles(g: &Graph, t: &mut Tracer) -> u64 {
    let n = g.n() as usize;
    let ga = GraphArrays::new(t, g);
    // build merged simple adjacency (traced: one pass over both CSR sides)
    let mut undirected: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for u in g.nodes() {
        let (out_list, out_base) = ga.out_list(t, g, u);
        for (k, _) in out_list.iter().enumerate() {
            t.touch(&ga.out_tgt, out_base + k);
        }
        let (in_list, in_base) = ga.in_list(t, g, u);
        for (k, _) in in_list.iter().enumerate() {
            t.touch(&ga.in_tgt, in_base + k);
        }
        let mut merged: Vec<NodeId> = out_list.iter().chain(in_list).copied().collect();
        merged.sort_unstable();
        t.op(merged.len() as u64); // sort+dedup bookkeeping
        merged.dedup();
        merged.retain(|&v| v != u);
        undirected[u as usize] = merged;
    }
    // forward orientation: the real code compares (deg, id) ranks; model
    // the degree lookups as an attribute array
    let deg_arr = t.alloc(n, 4);
    let rank = |u: NodeId| (undirected[u as usize].len(), u);
    let mut fwd_total = 0usize;
    let forward: Vec<Vec<NodeId>> = (0..n as u32)
        .map(|u| {
            let f: Vec<NodeId> = undirected[u as usize]
                .iter()
                .copied()
                .inspect(|&v| {
                    t.touch(&deg_arr, v as usize);
                    t.op(1);
                })
                .filter(|&v| rank(v) > rank(u))
                .collect();
            fwd_total += f.len();
            f
        })
        .collect();
    // the forward lists live in one flattened arena in practice
    let fwd_arr = t.alloc(fwd_total.max(1), 4);
    let mut fwd_base = vec![0usize; n + 1];
    for u in 0..n {
        fwd_base[u + 1] = fwd_base[u] + forward[u].len();
    }
    let mut count = 0u64;
    for u in 0..n {
        for (ku, &v) in forward[u].iter().enumerate() {
            t.touch(&fwd_arr, fwd_base[u] + ku);
            let (a, b) = (&forward[u], &forward[v as usize]);
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                t.touch(&fwd_arr, fwd_base[u] + i);
                t.touch(&fwd_arr, fwd_base[v as usize] + j);
                t.op(1);
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

/// LP — label propagation (cap 20 passes, matching the algos wrapper).
/// Checksum-compatible with `gorder_algos::labelprop`.
pub fn labelprop(g: &Graph, t: &mut Tracer) -> u64 {
    let n = g.n() as usize;
    let ga = GraphArrays::new(t, g);
    let label_arr = t.alloc(n, 4);
    let mut label: Vec<NodeId> = (0..g.n()).collect();
    let mut counts: HashMap<NodeId, u32> = HashMap::new();
    let mut iterations = 0u32;
    for _ in 0..20 {
        iterations += 1;
        let mut changed = false;
        for u in g.nodes() {
            counts.clear();
            let (out_list, out_base) = ga.out_list(t, g, u);
            for (k, &v) in out_list.iter().enumerate() {
                t.touch(&ga.out_tgt, out_base + k);
                t.touch(&label_arr, v as usize); // the gather
                t.op(1);
                *counts.entry(label[v as usize]).or_insert(0) += 1;
            }
            let (in_list, in_base) = ga.in_list(t, g, u);
            for (k, &v) in in_list.iter().enumerate() {
                t.touch(&ga.in_tgt, in_base + k);
                t.touch(&label_arr, v as usize);
                t.op(1);
                *counts.entry(label[v as usize]).or_insert(0) += 1;
            }
            if counts.is_empty() {
                continue;
            }
            let best = counts
                .iter()
                .map(|(&l, &c)| (c, std::cmp::Reverse(l)))
                .max()
                .map(|(_, std::cmp::Reverse(l))| l)
                .expect("counts non-empty");
            t.touch(&label_arr, u as usize);
            if best != label[u as usize] {
                label[u as usize] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut labels = label;
    labels.sort_unstable();
    labels.dedup();
    (labels.len() as u64) << 8 | u64::from(iterations.min(255))
}

/// BC — Brandes betweenness from 8 sampled sources (matching the algos
/// wrapper). Checksum-compatible with `gorder_algos::betweenness`.
pub fn betweenness(g: &Graph, t: &mut Tracer, ctx: &TraceCtx) -> u64 {
    let n = g.n() as usize;
    if n == 0 {
        return 0;
    }
    let ga = GraphArrays::new(t, g);
    let dist_arr = t.alloc(n, 4);
    let sigma_arr = t.alloc(n, 8);
    let delta_arr = t.alloc(n, 8);
    let order_arr = t.alloc(n, 4);
    let score_arr = t.alloc(n, 8);

    let mut rng = StdRng::seed_from_u64(ctx.seed);
    let sources: Vec<NodeId> = (0..8).map(|_| rng.gen_range(0..g.n())).collect();

    let mut score = vec![0.0f64; n];
    let mut dist = vec![u32::MAX; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    for &s in &sources {
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        sigma.iter_mut().for_each(|x| *x = 0.0);
        delta.iter_mut().for_each(|x| *x = 0.0);
        // the reset passes are sequential sweeps over three arrays
        for i in 0..n {
            t.touch(&dist_arr, i);
            t.touch(&sigma_arr, i);
            t.touch(&delta_arr, i);
        }
        order.clear();
        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        order.push(s);
        let mut head = 0;
        while head < order.len() {
            t.touch(&order_arr, head);
            let u = order[head];
            head += 1;
            let du = dist[u as usize];
            let (list, base) = ga.out_list(t, g, u);
            for (k, &v) in list.iter().enumerate() {
                t.touch(&ga.out_tgt, base + k);
                t.touch(&dist_arr, v as usize);
                t.op(1);
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    t.touch(&dist_arr, v as usize);
                    t.touch(&order_arr, order.len().min(n - 1));
                    order.push(v);
                }
                if dist[v as usize] == du + 1 {
                    sigma[v as usize] += sigma[u as usize];
                    t.touch(&sigma_arr, v as usize);
                    t.touch(&sigma_arr, u as usize);
                }
            }
        }
        for (idx, &u) in order.iter().enumerate().rev() {
            t.touch(&order_arr, idx);
            let du = dist[u as usize];
            let (list, base) = ga.out_list(t, g, u);
            for (k, &v) in list.iter().enumerate() {
                t.touch(&ga.out_tgt, base + k);
                t.touch(&dist_arr, v as usize);
                t.op(1);
                if dist[v as usize] == du + 1 {
                    delta[u as usize] +=
                        sigma[u as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
                    t.touch(&sigma_arr, u as usize);
                    t.touch(&sigma_arr, v as usize);
                    t.touch(&delta_arr, v as usize);
                    t.touch(&delta_arr, u as usize);
                }
            }
            if u != s {
                score[u as usize] += delta[u as usize];
                t.touch(&score_arr, u as usize);
            }
        }
    }
    let inv = 1.0 / sources.len() as f64;
    let total: f64 = score.iter().map(|&x| x * inv).sum();
    (total * 1e3).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::CacheHierarchy;

    fn tracer() -> Tracer {
        Tracer::new(CacheHierarchy::xeon_e5())
    }

    #[test]
    fn wcc_checksum() {
        // components {0,1,2} and {3,4}: 2 + 9 + 4 = 15
        let g = Graph::from_edges(5, &[(0, 1), (2, 1), (3, 4)]);
        let mut t = tracer();
        assert_eq!(wcc(&g, &mut t), 15);
    }

    #[test]
    fn triangles_checksum() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 1)]);
        let mut t = tracer();
        // triangles in symmetrised view: {0,1,2} and {0,1,3}
        assert_eq!(triangles(&g, &mut t), 2);
    }

    #[test]
    fn labelprop_clique() {
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        let g = Graph::from_edges(4, &edges);
        let mut t = tracer();
        let c = labelprop(&g, &mut t);
        assert_eq!(c >> 8, 1, "one community");
    }

    #[test]
    fn betweenness_runs_and_counts_refs() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut t = tracer();
        let ctx = TraceCtx::default();
        let _ = betweenness(&g, &mut t, &ctx);
        assert!(t.stats().l1_refs > 0);
    }
}
