//! Per-algorithm memory-access replayers.
//!
//! Each replayer *is* the benchmark algorithm — same loops, same
//! tie-breaks, same checksum as its `gorder-algos` twin (the test suites
//! assert checksum equality) — except that every data reference is also
//! pushed through the [`Tracer`]'s cache hierarchy at the address the real
//! implementation would touch. CSR arrays and property arrays are laid out
//! by a bump allocator exactly as consecutively allocated `Vec`s would be.
//!
//! Instruction fetch and stack spill traffic are not modelled; the paper's
//! counters likewise focus on data cache (`L1-dcache-loads`, `LLC-loads`).

mod extension;
mod select;
mod traversal;
mod value;

pub use extension::{betweenness, labelprop, triangles, wcc};
pub use select::{ds, kcore};
pub use traversal::{bfs, dfs, scc};
pub use value::{diam, nq, pagerank, sp};

use crate::tracer::{Tracer, VArray};
use gorder_graph::{Graph, NodeId};

/// Run parameters, mirroring `gorder_algos::RunCtx` field for field (the
/// crates don't depend on each other, so the struct is duplicated here).
#[derive(Debug, Clone)]
pub struct TraceCtx {
    /// Source node for BFS/SP (`None` → max-degree node).
    pub source: Option<NodeId>,
    /// PageRank iterations.
    pub pr_iterations: u32,
    /// PageRank damping factor.
    pub damping: f64,
    /// Diameter source count.
    pub diameter_samples: u32,
    /// Seed for diameter sampling.
    pub seed: u64,
}

impl Default for TraceCtx {
    fn default() -> Self {
        TraceCtx {
            source: None,
            pr_iterations: 100,
            damping: 0.85,
            diameter_samples: 16,
            seed: 0xD1A,
        }
    }
}

impl TraceCtx {
    /// Effective source for `g`.
    pub fn source_for(&self, g: &Graph) -> NodeId {
        self.source.or_else(|| g.max_degree_node()).unwrap_or(0)
    }
}

/// The algorithm labels with replayers, in paper order.
pub const TRACED_ALGOS: [&str; 9] = ["NQ", "BFS", "DFS", "SCC", "SP", "PR", "DS", "Kcore", "Diam"];

/// The extension algorithms with replayers (DESIGN.md §8).
pub const TRACED_EXTENSIONS: [&str; 4] = ["WCC", "Tri", "LP", "BC"];

/// Dispatches a replayer by its paper label. Returns the checksum, or
/// `None` for an unknown label.
pub fn replay(name: &str, g: &Graph, t: &mut Tracer, ctx: &TraceCtx) -> Option<u64> {
    Some(match name {
        "NQ" => nq(g, t),
        "BFS" => bfs(g, t, ctx),
        "DFS" => dfs(g, t, ctx),
        "SCC" => scc(g, t),
        "SP" => sp(g, t, ctx),
        "PR" => pagerank(g, t, ctx),
        "DS" => ds(g, t),
        "Kcore" => kcore(g, t),
        "Diam" => diam(g, t, ctx),
        "WCC" => wcc(g, t),
        "Tri" => triangles(g, t),
        "LP" => labelprop(g, t),
        "BC" => betweenness(g, t, ctx),
        _ => return None,
    })
}

/// The four CSR arrays of a graph, allocated in the tracer's address
/// space. Offsets are `u64` (8 B), targets `u32` (4 B), matching
/// `gorder_graph::Graph`'s real layout.
pub(crate) struct GraphArrays {
    pub out_off: VArray,
    pub out_tgt: VArray,
    pub in_off: VArray,
    pub in_tgt: VArray,
}

impl GraphArrays {
    pub fn new(t: &mut Tracer, g: &Graph) -> Self {
        let n = g.n() as usize;
        let m = g.m() as usize;
        GraphArrays {
            out_off: t.alloc(n + 1, 8),
            out_tgt: t.alloc(m, 4),
            in_off: t.alloc(n + 1, 8),
            in_tgt: t.alloc(m, 4),
        }
    }

    /// Touches the offset pair bounding `u`'s out-list and returns the
    /// list plus its global CSR base index.
    pub fn out_list<'g>(&self, t: &mut Tracer, g: &'g Graph, u: NodeId) -> (&'g [NodeId], usize) {
        t.touch(&self.out_off, u as usize);
        t.touch(&self.out_off, u as usize + 1);
        let (off, _) = g.out_csr();
        (g.out_neighbors(u), off[u as usize] as usize)
    }

    /// Same for the in-list.
    pub fn in_list<'g>(&self, t: &mut Tracer, g: &'g Graph, u: NodeId) -> (&'g [NodeId], usize) {
        t.touch(&self.in_off, u as usize);
        t.touch(&self.in_off, u as usize + 1);
        let (off, _) = g.in_csr();
        (g.in_neighbors(u), off[u as usize] as usize)
    }
}

/// Touches a binary-heap sift path for a push into a heap of `len`
/// elements (positions `len, len/2, …, root`).
pub(crate) fn heap_push_touch(t: &mut Tracer, heap: &VArray, len: usize) {
    let mut p = len;
    loop {
        t.touch(heap, p.min(heap.len().saturating_sub(1) as usize));
        t.op(1);
        if p == 0 {
            break;
        }
        p /= 2;
    }
}

/// Touches a sift-down path for a pop from a heap of `len` elements.
pub(crate) fn heap_pop_touch(t: &mut Tracer, heap: &VArray, len: usize) {
    if heap.is_empty() {
        return;
    }
    let mut p = 0usize;
    while p < len {
        t.touch(heap, p.min(heap.len() as usize - 1));
        t.op(1);
        p = 2 * p + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::CacheHierarchy;

    #[test]
    fn replay_dispatches_extensions() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let ctx = TraceCtx::default();
        for name in TRACED_EXTENSIONS {
            let mut t = Tracer::new(CacheHierarchy::xeon_e5());
            assert!(replay(name, &g, &mut t, &ctx).is_some(), "{name}");
        }
    }

    #[test]
    fn replay_dispatches_all_nine() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (0, 3)]);
        let ctx = TraceCtx {
            pr_iterations: 3,
            diameter_samples: 2,
            ..Default::default()
        };
        for name in TRACED_ALGOS {
            let mut t = Tracer::new(CacheHierarchy::xeon_e5());
            assert!(replay(name, &g, &mut t, &ctx).is_some(), "{name}");
            assert!(t.stats().l1_refs > 0, "{name} produced no references");
        }
        let mut t = Tracer::new(CacheHierarchy::xeon_e5());
        assert!(replay("nope", &g, &mut t, &ctx).is_none());
    }

    #[test]
    fn empty_graph_replays() {
        let g = Graph::empty(0);
        let ctx = TraceCtx::default();
        for name in TRACED_ALGOS {
            let mut t = Tracer::new(CacheHierarchy::xeon_e5());
            replay(name, &g, &mut t, &ctx);
        }
    }
}
