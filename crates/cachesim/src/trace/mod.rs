//! Per-algorithm memory-access replayers, driven by the engine.
//!
//! The nine paper kernels live in `gorder-engine`; this module plugs a
//! [`TracerProbe`] into them, so the *same* kernel code that produces
//! wall-clock numbers also drives the cache model — same loops, same
//! tie-breaks, same checksum (the test suites assert checksum equality
//! against `gorder-algos`, which wraps the identical kernels). CSR
//! arrays and property arrays are laid out by the tracer's bump
//! allocator exactly as consecutively allocated `Vec`s would be.
//!
//! The extension replayers (WCC, Tri, LP, BC — DESIGN.md §8) predate the
//! engine and keep their hand-rolled form in the private `extension`
//! submodule (re-exported here as [`wcc`], [`triangles`], [`labelprop`],
//! [`betweenness`]).
//!
//! Instruction fetch and stack spill traffic are not modelled; the paper's
//! counters likewise focus on data cache (`L1-dcache-loads`, `LLC-loads`).

mod extension;

pub use extension::{betweenness, labelprop, triangles, wcc};

/// Run parameters — the engine's context, shared with `gorder-algos`
/// (which re-exports it as `RunCtx`). No longer duplicated per crate.
pub use gorder_engine::KernelCtx as TraceCtx;

use crate::tracer::{Tracer, VArray};
use gorder_engine::{KernelStats, Probe, Slot};
use gorder_graph::{Graph, NodeId};

/// The algorithm labels with replayers, in paper order.
pub const TRACED_ALGOS: [&str; 9] = ["NQ", "BFS", "DFS", "SCC", "SP", "PR", "DS", "Kcore", "Diam"];

/// The extension algorithms with replayers (DESIGN.md §8).
pub const TRACED_EXTENSIONS: [&str; 4] = ["WCC", "Tri", "LP", "BC"];

/// An engine [`Probe`] that forwards every kernel memory access into a
/// [`Tracer`]'s cache hierarchy.
///
/// Each [`Probe::alloc`] becomes a tracer allocation (line-aligned, laid
/// out in call order) and each [`Probe::touch`] a simulated load at the
/// element's address. Touch indices are clamped to the registered array
/// bounds: kernels occasionally probe one-past-the-end positions (heap
/// sift paths on a just-emptied heap, sentinel reads on zero-length
/// arrays), and the clamp maps those to the nearest real line instead of
/// tripping the tracer's bounds check.
pub struct TracerProbe<'t> {
    tracer: &'t mut Tracer,
    slots: Vec<VArray>,
}

impl<'t> TracerProbe<'t> {
    /// Wraps `tracer`; arrays registered through the probe are allocated
    /// in the tracer's address space.
    pub fn new(tracer: &'t mut Tracer) -> Self {
        TracerProbe {
            tracer,
            slots: Vec::new(),
        }
    }
}

impl Probe for TracerProbe<'_> {
    fn alloc(&mut self, len: usize, elem_bytes: u64) -> Slot {
        let slot = Slot::new(self.slots.len() as u32);
        self.slots.push(self.tracer.alloc(len, elem_bytes));
        slot
    }

    fn touch(&mut self, slot: Slot, i: usize) {
        let arr = &self.slots[slot.index() as usize];
        let clamped = i.min((arr.len() as usize).saturating_sub(1));
        self.tracer.touch(arr, clamped);
    }

    fn op(&mut self, n: u64) {
        self.tracer.op(n);
    }
}

fn traced(name: &str, g: &Graph, t: &mut Tracer, ctx: &TraceCtx) -> u64 {
    gorder_engine::run_probed(name, g, ctx, TracerProbe::new(t))
        .unwrap_or_else(|| panic!("{name} is a registered engine kernel"))
        .checksum
}

/// Replays NQ (neighbour query) through the cache model.
pub fn nq(g: &Graph, t: &mut Tracer) -> u64 {
    traced("NQ", g, t, &TraceCtx::default())
}

/// Replays BFS through the cache model.
pub fn bfs(g: &Graph, t: &mut Tracer, ctx: &TraceCtx) -> u64 {
    traced("BFS", g, t, ctx)
}

/// Replays DFS through the cache model.
pub fn dfs(g: &Graph, t: &mut Tracer, ctx: &TraceCtx) -> u64 {
    traced("DFS", g, t, ctx)
}

/// Replays SCC (Tarjan) through the cache model.
pub fn scc(g: &Graph, t: &mut Tracer) -> u64 {
    traced("SCC", g, t, &TraceCtx::default())
}

/// Replays SP (round-based Bellman–Ford) through the cache model.
pub fn sp(g: &Graph, t: &mut Tracer, ctx: &TraceCtx) -> u64 {
    traced("SP", g, t, ctx)
}

/// Replays PR (power-iteration PageRank) through the cache model.
pub fn pagerank(g: &Graph, t: &mut Tracer, ctx: &TraceCtx) -> u64 {
    traced("PR", g, t, ctx)
}

/// Replays DS (greedy dominating set) through the cache model.
pub fn ds(g: &Graph, t: &mut Tracer) -> u64 {
    traced("DS", g, t, &TraceCtx::default())
}

/// Replays Kcore (bucket-queue peeling) through the cache model.
pub fn kcore(g: &Graph, t: &mut Tracer) -> u64 {
    traced("Kcore", g, t, &TraceCtx::default())
}

/// Replays Diam (sampled eccentricities) through the cache model.
pub fn diam(g: &Graph, t: &mut Tracer, ctx: &TraceCtx) -> u64 {
    traced("Diam", g, t, ctx)
}

/// Dispatches a replayer by its paper label, returning the checksum and
/// the engine's per-kernel statistics. Extension replayers are not
/// engine kernels and report [`KernelStats::default`]. Returns `None`
/// for an unknown label.
pub fn replay_with_stats(
    name: &str,
    g: &Graph,
    t: &mut Tracer,
    ctx: &TraceCtx,
) -> Option<(u64, KernelStats)> {
    if gorder_engine::is_kernel(name) {
        let run = gorder_engine::run_probed(name, g, ctx, TracerProbe::new(t))?;
        return Some((run.checksum, run.stats));
    }
    let checksum = match name {
        "WCC" => wcc(g, t),
        "Tri" => triangles(g, t),
        "LP" => labelprop(g, t),
        "BC" => betweenness(g, t, ctx),
        _ => return None,
    };
    Some((checksum, KernelStats::default()))
}

/// Dispatches a replayer by its paper label. Returns the checksum, or
/// `None` for an unknown label.
pub fn replay(name: &str, g: &Graph, t: &mut Tracer, ctx: &TraceCtx) -> Option<u64> {
    replay_with_stats(name, g, t, ctx).map(|(checksum, _)| checksum)
}

/// The four CSR arrays of a graph, allocated in the tracer's address
/// space. Offsets are `u64` (8 B), targets `u32` (4 B), matching
/// `gorder_graph::Graph`'s real layout. Used by the hand-rolled
/// extension replayers; the nine paper kernels get the equivalent via
/// `gorder_engine::GraphSlots` + [`TracerProbe`].
pub(crate) struct GraphArrays {
    pub out_off: VArray,
    pub out_tgt: VArray,
    pub in_off: VArray,
    pub in_tgt: VArray,
}

impl GraphArrays {
    pub fn new(t: &mut Tracer, g: &Graph) -> Self {
        let n = g.n() as usize;
        let m = g.m() as usize;
        GraphArrays {
            out_off: t.alloc(n + 1, 8),
            out_tgt: t.alloc(m, 4),
            in_off: t.alloc(n + 1, 8),
            in_tgt: t.alloc(m, 4),
        }
    }

    /// Touches the offset pair bounding `u`'s out-list and returns the
    /// list plus its global CSR base index.
    pub fn out_list<'g>(&self, t: &mut Tracer, g: &'g Graph, u: NodeId) -> (&'g [NodeId], usize) {
        t.touch(&self.out_off, u as usize);
        t.touch(&self.out_off, u as usize + 1);
        let (off, _) = g.out_csr();
        (g.out_neighbors(u), off[u as usize] as usize)
    }

    /// Same for the in-list.
    pub fn in_list<'g>(&self, t: &mut Tracer, g: &'g Graph, u: NodeId) -> (&'g [NodeId], usize) {
        t.touch(&self.in_off, u as usize);
        t.touch(&self.in_off, u as usize + 1);
        let (off, _) = g.in_csr();
        (g.in_neighbors(u), off[u as usize] as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::CacheHierarchy;

    fn tracer() -> Tracer {
        Tracer::new(CacheHierarchy::xeon_e5())
    }

    fn g() -> Graph {
        Graph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 0), (5, 3)])
    }

    #[test]
    fn replay_dispatches_extensions() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let ctx = TraceCtx::default();
        for name in TRACED_EXTENSIONS {
            let mut t = tracer();
            assert!(replay(name, &g, &mut t, &ctx).is_some(), "{name}");
        }
    }

    #[test]
    fn replay_dispatches_all_nine() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (0, 3)]);
        let ctx = TraceCtx {
            pr_iterations: 3,
            diameter_samples: 2,
            ..Default::default()
        };
        for name in TRACED_ALGOS {
            let mut t = tracer();
            assert!(replay(name, &g, &mut t, &ctx).is_some(), "{name}");
            assert!(t.stats().l1_refs > 0, "{name} produced no references");
        }
        let mut t = tracer();
        assert!(replay("nope", &g, &mut t, &ctx).is_none());
    }

    #[test]
    fn replay_with_stats_reports_engine_counters() {
        let g = g();
        let ctx = TraceCtx {
            pr_iterations: 3,
            diameter_samples: 2,
            ..Default::default()
        };
        for name in TRACED_ALGOS {
            let mut t = tracer();
            let (_, stats) = replay_with_stats(name, &g, &mut t, &ctx).unwrap();
            assert!(stats.iterations > 0, "{name} reported no iterations");
        }
        // extensions dispatch but carry default stats
        let mut t = tracer();
        let (_, stats) = replay_with_stats("WCC", &g, &mut t, &ctx).unwrap();
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn empty_graph_replays() {
        let g = Graph::empty(0);
        let ctx = TraceCtx::default();
        for name in TRACED_ALGOS {
            let mut t = tracer();
            replay(name, &g, &mut t, &ctx);
        }
    }

    #[test]
    fn nq_checksum_value() {
        // recompute by hand: sum over u of Σ out_degree(v)
        let gg = g();
        let expected: u64 = gg
            .nodes()
            .flat_map(|u| {
                gg.out_neighbors(u)
                    .iter()
                    .map(|&v| u64::from(gg.out_degree(v)))
            })
            .sum();
        let mut t = tracer();
        assert_eq!(nq(&gg, &mut t), expected);
    }

    #[test]
    fn bfs_checksum_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut t = tracer();
        let ctx = TraceCtx {
            source: Some(0),
            ..Default::default()
        };
        // primary_reached = 4, depths sum = 0+1+2+3 = 6 → 10
        assert_eq!(bfs(&g, &mut t, &ctx), 10);
    }

    #[test]
    fn dfs_checksum_matches_formula() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut t = tracer();
        let ctx = TraceCtx {
            source: Some(0),
            ..Default::default()
        };
        let expected = 4u64.wrapping_mul(0x9E3779B97F4A7C15) ^ 3;
        assert_eq!(dfs(&g, &mut t, &ctx), expected);
    }

    #[test]
    fn scc_checksum_two_components() {
        // 3-cycle + 2-cycle: count 2, Σ size² = 9 + 4 → 15
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3)]);
        let mut t = tracer();
        assert_eq!(scc(&g, &mut t), 15);
    }

    #[test]
    fn traversals_touch_every_edge() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (3, 4), (2, 4)]);
        let ctx = TraceCtx::default();
        let mut t = tracer();
        bfs(&g, &mut t, &ctx);
        // at least one target read per edge
        assert!(t.stats().l1_refs >= g.m());
    }

    #[test]
    fn sp_eccentricity_path() {
        let gg = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut t = tracer();
        let ctx = TraceCtx {
            source: Some(0),
            ..Default::default()
        };
        // Σ (dist + 1) = (0+1)+(1+1)+(2+1)+(3+1) = 10
        assert_eq!(sp(&gg, &mut t, &ctx), 10);
    }

    #[test]
    fn diam_on_cycle() {
        let edges: Vec<(NodeId, NodeId)> = (0..8u32).map(|u| (u, (u + 1) % 8)).collect();
        let gg = Graph::from_edges(8, &edges);
        let mut t = tracer();
        let ctx = TraceCtx {
            diameter_samples: 3,
            ..Default::default()
        };
        assert_eq!(diam(&gg, &mut t, &ctx), 7);
    }

    #[test]
    fn pagerank_mass_checksum() {
        let mut t = tracer();
        let ctx = TraceCtx {
            pr_iterations: 20,
            ..Default::default()
        };
        // mass conserved → checksum ≈ 1e6
        let c = pagerank(&g(), &mut t, &ctx);
        assert_eq!(c, 1_000_000);
    }

    #[test]
    fn pr_reference_counts_scale_with_iterations() {
        let gg = g();
        let mut t1 = tracer();
        pagerank(
            &gg,
            &mut t1,
            &TraceCtx {
                pr_iterations: 1,
                ..Default::default()
            },
        );
        let mut t10 = tracer();
        pagerank(
            &gg,
            &mut t10,
            &TraceCtx {
                pr_iterations: 10,
                ..Default::default()
            },
        );
        assert!(t10.stats().l1_refs > 5 * t1.stats().l1_refs);
    }

    #[test]
    fn ds_star_is_one() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let mut t = tracer();
        assert_eq!(ds(&g, &mut t), 1);
    }

    #[test]
    fn ds_isolated_count() {
        let g = Graph::empty(4);
        let mut t = tracer();
        assert_eq!(ds(&g, &mut t), 4);
    }

    #[test]
    fn kcore_triangle_checksum() {
        // all three nodes have core 2 → Σ core² = 12
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let mut t = tracer();
        assert_eq!(kcore(&g, &mut t), 12);
    }

    #[test]
    fn kcore_empty() {
        let mut t = tracer();
        assert_eq!(kcore(&Graph::empty(0), &mut t), 0);
    }
}
