//! Replayers for the greedy-selection workloads: DS, Kcore.

use super::{heap_pop_touch, heap_push_touch, GraphArrays};
use crate::tracer::Tracer;
use gorder_graph::{Graph, NodeId};
use std::collections::BinaryHeap;

/// DS — greedy dominating set with a lazy max-heap. Checksum-compatible
/// with `gorder_algos::domset`.
pub fn ds(g: &Graph, t: &mut Tracer) -> u64 {
    let n = g.n() as usize;
    let ga = GraphArrays::new(t, g);
    let gain_arr = t.alloc(n, 4);
    let covered_arr = t.alloc(n, 1);
    let coveredby_arr = t.alloc(n, 4);
    let heap_arr = t.alloc(n.max(1), 8);

    let mut gain: Vec<u32> = g
        .nodes()
        .map(|u| {
            t.touch(&ga.out_off, u as usize);
            t.touch(&ga.out_off, u as usize + 1);
            t.touch(&gain_arr, u as usize);
            g.out_degree(u) + 1
        })
        .collect();
    let mut covered = vec![false; n];
    let mut set_size = 0u64;
    let mut heap: BinaryHeap<(u32, NodeId)> = BinaryHeap::with_capacity(n);
    for u in 0..n as u32 {
        heap.push((gain[u as usize], u));
        heap_push_touch(t, &heap_arr, heap.len() - 1);
    }
    let mut remaining = n;

    while remaining > 0 {
        let (claimed, u) = heap.pop().expect("uncovered nodes imply positive gains");
        heap_pop_touch(t, &heap_arr, heap.len());
        t.touch(&gain_arr, u as usize);
        let current = gain[u as usize];
        if claimed != current {
            heap.push((current, u));
            heap_push_touch(t, &heap_arr, heap.len() - 1);
            continue;
        }
        if current == 0 {
            continue;
        }
        set_size += 1;
        let mut newly: Vec<NodeId> = Vec::with_capacity(g.out_degree(u) as usize + 1);
        t.touch(&covered_arr, u as usize);
        if !covered[u as usize] {
            newly.push(u);
        }
        let (list, base) = ga.out_list(t, g, u);
        for (k, &w) in list.iter().enumerate() {
            t.touch(&ga.out_tgt, base + k);
            t.touch(&covered_arr, w as usize);
            if !covered[w as usize] {
                newly.push(w);
            }
        }
        for &w in &newly {
            covered[w as usize] = true;
            t.touch(&covered_arr, w as usize);
            t.touch(&coveredby_arr, w as usize);
            remaining -= 1;
            gain[w as usize] -= 1;
            t.touch(&gain_arr, w as usize);
            let (in_list, in_base) = ga.in_list(t, g, w);
            for (k, &z) in in_list.iter().enumerate() {
                t.touch(&ga.in_tgt, in_base + k);
                gain[z as usize] -= 1;
                t.touch(&gain_arr, z as usize);
                t.op(1);
            }
        }
    }
    set_size
}

/// Kcore — bucket-queue peeling (Batagelj–Zaveršnik). Checksum-compatible
/// with `gorder_algos::kcore`.
pub fn kcore(g: &Graph, t: &mut Tracer) -> u64 {
    let n = g.n() as usize;
    if n == 0 {
        return 0;
    }
    let ga = GraphArrays::new(t, g);
    let deg_arr = t.alloc(n, 4);
    let pos_arr = t.alloc(n, 4);
    let vert_arr = t.alloc(n, 4);
    let core_arr = t.alloc(n, 4);

    let mut deg: Vec<u32> = g
        .nodes()
        .map(|u| {
            t.touch(&ga.out_off, u as usize);
            t.touch(&ga.out_off, u as usize + 1);
            t.touch(&ga.in_off, u as usize);
            t.touch(&ga.in_off, u as usize + 1);
            t.touch(&deg_arr, u as usize);
            g.degree(u)
        })
        .collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;
    let bin_arr = t.alloc(max_deg + 2, 8);
    let mut bin = vec![0u32; max_deg + 2];
    for &d in &deg {
        bin[d as usize + 1] += 1;
        t.touch(&bin_arr, d as usize + 1);
    }
    for d in 0..=max_deg {
        bin[d + 1] += bin[d];
        t.touch(&bin_arr, d + 1);
    }
    let mut pos = vec![0u32; n];
    let mut vert = vec![0 as NodeId; n];
    {
        let mut cursor = bin.clone();
        for u in 0..n as u32 {
            let d = deg[u as usize] as usize;
            pos[u as usize] = cursor[d];
            vert[cursor[d] as usize] = u;
            t.touch(&pos_arr, u as usize);
            t.touch(&vert_arr, cursor[d] as usize);
            t.touch(&bin_arr, d);
            cursor[d] += 1;
        }
    }
    let mut checksum = 0u64;
    for i in 0..n {
        t.touch(&vert_arr, i);
        let u = vert[i];
        t.touch(&deg_arr, u as usize);
        let core = u64::from(deg[u as usize]);
        checksum = checksum.wrapping_add(core * core);
        t.touch(&core_arr, u as usize);
        let (out_list, out_base) = ga.out_list(t, g, u);
        let (in_list, in_base) = ga.in_list(t, g, u);
        let touches = out_list
            .iter()
            .enumerate()
            .map(|(k, &v)| (v, (&ga.out_tgt, out_base + k)))
            .chain(
                in_list
                    .iter()
                    .enumerate()
                    .map(|(k, &v)| (v, (&ga.in_tgt, in_base + k))),
            )
            .collect::<Vec<_>>();
        for (v, (tgt_arr, tgt_idx)) in touches {
            t.touch(tgt_arr, tgt_idx);
            t.touch(&deg_arr, v as usize);
            t.op(1);
            if deg[v as usize] > deg[u as usize] {
                let dv = deg[v as usize] as usize;
                let pv = pos[v as usize];
                t.touch(&bin_arr, dv);
                let pw = bin[dv];
                t.touch(&vert_arr, pw as usize);
                let w = vert[pw as usize];
                if v != w {
                    vert.swap(pv as usize, pw as usize);
                    pos[v as usize] = pw;
                    pos[w as usize] = pv;
                    t.touch(&vert_arr, pv as usize);
                    t.touch(&pos_arr, v as usize);
                    t.touch(&pos_arr, w as usize);
                }
                bin[dv] += 1;
                t.touch(&bin_arr, dv);
                deg[v as usize] -= 1;
                t.touch(&deg_arr, v as usize);
            }
        }
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::CacheHierarchy;

    fn tracer() -> Tracer {
        Tracer::new(CacheHierarchy::xeon_e5())
    }

    #[test]
    fn ds_star_is_one() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let mut t = tracer();
        assert_eq!(ds(&g, &mut t), 1);
    }

    #[test]
    fn ds_isolated_count() {
        let g = Graph::empty(4);
        let mut t = tracer();
        assert_eq!(ds(&g, &mut t), 4);
    }

    #[test]
    fn kcore_triangle_checksum() {
        // all three nodes have core 2 → Σ core² = 12
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let mut t = tracer();
        assert_eq!(kcore(&g, &mut t), 12);
    }

    #[test]
    fn kcore_empty() {
        let mut t = tracer();
        assert_eq!(kcore(&Graph::empty(0), &mut t), 0);
    }
}
