//! A single set-associative cache level with true LRU replacement.
//!
//! Geometry is the classic (size, line, associativity) triple. Sets hold
//! `associativity` ways; a lookup scans the ways linearly (assoc ≤ 16 for
//! every real level we model, so a scan beats fancier structures) and LRU
//! is tracked with per-way timestamps from a per-level access counter.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line (block) size in bytes; must be a power of two.
    pub line_bytes: u64,
    /// Ways per set.
    pub associativity: u32,
}

impl LevelConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * u64::from(self.associativity))
    }
}

/// Hit/miss counters for one level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Lookups that reached this level.
    pub references: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl LevelStats {
    /// Miss rate in `[0, 1]`; 0 when there were no references.
    pub fn miss_rate(&self) -> f64 {
        if self.references == 0 {
            0.0
        } else {
            self.misses as f64 / self.references as f64
        }
    }
}

const INVALID: u64 = u64::MAX;

/// One set-associative LRU cache level.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    config: LevelConfig,
    sets: u64,
    line_shift: u32,
    /// `tags[set * assoc + way]`.
    tags: Vec<u64>,
    /// Last-use stamp per way (same indexing).
    stamps: Vec<u64>,
    clock: u64,
    stats: LevelStats,
}

impl CacheLevel {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    /// Panics if the line size is not a power of two, the associativity is
    /// zero, or the geometry doesn't yield a whole power-of-two set count.
    pub fn new(config: LevelConfig) -> Self {
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.associativity > 0, "need at least one way");
        // Sets are indexed by modulo, so non-power-of-two counts are fine
        // (real sliced LLCs have them: 20 MiB / 16-way / 64 B = 20480 sets).
        let sets = config.sets();
        assert!(sets > 0, "geometry yields zero sets");
        let ways = (sets * u64::from(config.associativity)) as usize;
        CacheLevel {
            config,
            sets,
            line_shift: config.line_bytes.trailing_zeros(),
            tags: vec![INVALID; ways],
            stamps: vec![0; ways],
            clock: 0,
            stats: LevelStats::default(),
        }
    }

    /// The level's geometry.
    pub fn config(&self) -> LevelConfig {
        self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> LevelStats {
        self.stats
    }

    /// Looks `addr` up, updating LRU state; on miss, installs the line
    /// (evicting the set's LRU way). Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.stats.references += 1;
        let line = addr >> self.line_shift;
        let set = (line % self.sets) as usize;
        let assoc = self.config.associativity as usize;
        let base = set * assoc;
        let ways = &mut self.tags[base..base + assoc];
        if let Some(w) = ways.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.clock;
            return true;
        }
        self.stats.misses += 1;
        // evict LRU way (or fill an invalid one — stamp 0 loses to all)
        let victim = (0..assoc)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("associativity > 0");
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Installs the line holding `addr` without touching the demand
    /// counters — the prefetch path. Returns `true` if the line was
    /// already resident (refreshes its LRU position either way).
    pub fn install(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set = (line % self.sets) as usize;
        let assoc = self.config.associativity as usize;
        let base = set * assoc;
        if let Some(w) = self.tags[base..base + assoc]
            .iter()
            .position(|&t| t == line)
        {
            self.stamps[base + w] = self.clock;
            return true;
        }
        let victim = (0..assoc)
            .min_by_key(|&w| self.stamps[base + w])
            .expect("associativity > 0");
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Resets counters (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = LevelStats::default();
    }

    /// Empties the cache and resets counters.
    pub fn flush(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = INVALID);
        self.stamps.iter_mut().for_each(|s| *s = 0);
        self.clock = 0;
        self.stats = LevelStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheLevel {
        // 4 lines of 64 B, 2-way → 2 sets
        CacheLevel::new(LevelConfig {
            size_bytes: 256,
            line_bytes: 64,
            associativity: 2,
        })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().sets(), 2);
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.stats().references, 4);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // lines 0, 2, 4 all map to set 0 (even line numbers)
        c.access(0); // miss, install
        c.access(2 * 64); // miss, install → set full
        c.access(0); // hit, refreshes line 0
        c.access(4 * 64); // miss → evicts line 2 (LRU)
        assert!(c.access(0), "line 0 must still be resident");
        assert!(!c.access(2 * 64), "line 2 was the LRU victim");
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0); // set 0
        c.access(64); // set 1
        assert!(c.access(0));
        assert!(c.access(64));
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut c = CacheLevel::new(LevelConfig {
            size_bytes: 4096,
            line_bytes: 64,
            associativity: 4,
        });
        let addrs: Vec<u64> = (0..64).map(|i| i * 64).collect(); // exactly capacity
        for &a in &addrs {
            c.access(a);
        }
        c.reset_stats();
        for _ in 0..10 {
            for &a in &addrs {
                assert!(c.access(a));
            }
        }
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn thrashing_beyond_capacity_misses() {
        let mut c = tiny(); // 4 lines
                            // cycle through 8 distinct lines in the same set repeatedly:
                            // 2-way set can never retain them
        let addrs: Vec<u64> = (0..8).map(|i| i * 2 * 64).collect();
        for _ in 0..5 {
            for &a in &addrs {
                c.access(a);
            }
        }
        assert_eq!(c.stats().miss_rate(), 1.0);
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert!(!c.access(0));
        assert_eq!(c.stats().references, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_line_size() {
        CacheLevel::new(LevelConfig {
            size_bytes: 256,
            line_bytes: 48,
            associativity: 2,
        });
    }

    #[test]
    fn miss_rate_bounds() {
        let s = LevelStats {
            references: 0,
            misses: 0,
        };
        assert_eq!(s.miss_rate(), 0.0);
        let s = LevelStats {
            references: 4,
            misses: 1,
        };
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }
}
