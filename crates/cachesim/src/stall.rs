//! Latency model: converting hit/miss counts into CPU vs. stall time.
//!
//! Figure 1 of the paper (and of the replication) splits each algorithm's
//! runtime into *CPU execute* and *cache stall*. The replication's
//! footnote gives the latency arithmetic for a Skylake-class part — L1
//! 4 cycles, L2 12, L3 42, DRAM ≈ 62 ns (≈ 250 cycles at 4 GHz) — which we
//! adopt as the default [`StallModel`].
//!
//! The model is deliberately simple (no MLP/overlap): CPU-execute time is
//! one cycle per executed operation plus the pipelined L1 latency share,
//! and every access that leaves L1 stalls for the latency of wherever it
//! hit. Simplicity is fine here because Figure 1 only needs the *shares*
//! and their movement under reordering, not absolute times.

use crate::hierarchy::CacheStats;

/// Per-level access latencies in CPU cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct StallModel {
    /// Latency per hit at each level, L1 first.
    pub level_cycles: Vec<f64>,
    /// Latency of a full miss to memory.
    pub memory_cycles: f64,
}

impl StallModel {
    /// Replication footnote values (Skylake-class at 4 GHz).
    pub fn skylake() -> Self {
        StallModel {
            level_cycles: vec![4.0, 12.0, 42.0],
            memory_cycles: 250.0,
        }
    }
}

impl Default for StallModel {
    fn default() -> Self {
        StallModel::skylake()
    }
}

/// Cycle totals split the way Figure 1 plots them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallBreakdown {
    /// Cycles attributed to executing instructions (incl. L1 hits).
    pub cpu_cycles: f64,
    /// Cycles attributed to waiting for data beyond L1.
    pub stall_cycles: f64,
}

impl StallBreakdown {
    /// Total modelled cycles.
    pub fn total(&self) -> f64 {
        self.cpu_cycles + self.stall_cycles
    }

    /// Fraction of time stalled, in `[0, 1]`.
    pub fn stall_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.stall_cycles / t
        }
    }
}

impl StallModel {
    /// Computes the breakdown for a finished run.
    ///
    /// `ops` is the number of non-memory operations the replayer counted
    /// (arithmetic, compares, bookkeeping — one cycle each). L1 hits are
    /// folded into CPU time (they pipeline); anything deeper stalls for
    /// that level's latency.
    pub fn breakdown(&self, stats: &CacheStats, ops: u64) -> StallBreakdown {
        let l1_hits = stats.hits_per_level.first().copied().unwrap_or(0);
        let l1_lat = self.level_cycles.first().copied().unwrap_or(1.0);
        let mut stall = 0.0;
        for (i, &hits) in stats.hits_per_level.iter().enumerate().skip(1) {
            let lat = self
                .level_cycles
                .get(i)
                .copied()
                .unwrap_or(self.memory_cycles);
            stall += hits as f64 * lat;
        }
        stall += stats.memory_accesses as f64 * self.memory_cycles;
        StallBreakdown {
            cpu_cycles: ops as f64 + l1_hits as f64 * l1_lat,
            stall_cycles: stall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(hits: Vec<u64>, memory: u64) -> CacheStats {
        let l1_refs: u64 = hits.iter().sum::<u64>() + memory;
        CacheStats {
            l1_refs,
            l1_miss_rate: 0.0,
            llc_refs: 0,
            llc_ratio: 0.0,
            cache_miss_rate: 0.0,
            hits_per_level: hits,
            memory_accesses: memory,
        }
    }

    #[test]
    fn all_l1_hits_is_pure_cpu() {
        let m = StallModel::skylake();
        let b = m.breakdown(&stats(vec![100, 0, 0], 0), 50);
        assert_eq!(b.stall_cycles, 0.0);
        assert_eq!(b.cpu_cycles, 50.0 + 100.0 * 4.0);
        assert_eq!(b.stall_fraction(), 0.0);
    }

    #[test]
    fn memory_accesses_dominate_stall() {
        let m = StallModel::skylake();
        let b = m.breakdown(&stats(vec![0, 0, 0], 10), 0);
        assert_eq!(b.stall_cycles, 2500.0);
        assert_eq!(b.stall_fraction(), 1.0);
    }

    #[test]
    fn mixed_levels_add_up() {
        let m = StallModel::skylake();
        let b = m.breakdown(&stats(vec![10, 5, 2], 1), 100);
        assert_eq!(b.cpu_cycles, 100.0 + 40.0);
        assert_eq!(b.stall_cycles, 5.0 * 12.0 + 2.0 * 42.0 + 250.0);
    }

    #[test]
    fn better_locality_lowers_stall_share() {
        let m = StallModel::skylake();
        let good = m.breakdown(&stats(vec![90, 8, 2], 0), 100);
        let bad = m.breakdown(&stats(vec![50, 20, 20], 10), 100);
        assert!(good.stall_fraction() < bad.stall_fraction());
    }

    #[test]
    fn empty_run() {
        let m = StallModel::skylake();
        let b = m.breakdown(&stats(vec![0, 0, 0], 0), 0);
        assert_eq!(b.total(), 0.0);
        assert_eq!(b.stall_fraction(), 0.0);
    }
}
