//! A multi-level inclusive cache hierarchy.
//!
//! Each reference probes L1; a miss falls through to the next level, and a
//! line fetched from below is installed at every level above. The counters
//! map directly onto the replication's Table 3 columns:
//!
//! * `L1-ref` — references to L1 (every data reference);
//! * `L1-mr` — L1 miss rate;
//! * `L3-ref` — references reaching L3 (= L2 misses);
//! * `L3-r` — L3 references / L1 references;
//! * `Cache-mr` — memory accesses / L1 references.

use crate::level::{CacheLevel, LevelConfig, LevelStats};

/// Geometry of the whole hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Levels from closest (L1) to farthest (LLC).
    pub levels: Vec<LevelConfig>,
    /// Next-line prefetcher: on every demand miss, the following line is
    /// installed at all levels (without counting as a demand reference).
    /// Sequential CSR scans benefit; pointer-chasing attribute reads do
    /// not — an ablation knob for the `prefetch` bench.
    pub prefetch_next_line: bool,
}

impl HierarchyConfig {
    /// The replication's machine: Xeon E5-4650L — 32 KiB L1d (8-way),
    /// 256 KiB L2 (8-way), 20 MiB L3 (16-way), 64-byte lines throughout.
    pub fn xeon_e5() -> Self {
        HierarchyConfig {
            levels: vec![
                LevelConfig {
                    size_bytes: 32 << 10,
                    line_bytes: 64,
                    associativity: 8,
                },
                LevelConfig {
                    size_bytes: 256 << 10,
                    line_bytes: 64,
                    associativity: 8,
                },
                LevelConfig {
                    size_bytes: 20 << 20,
                    line_bytes: 64,
                    associativity: 16,
                },
            ],
            prefetch_next_line: false,
        }
    }

    /// A hierarchy for laptop-scale graphs: every level shrinks 16× (to
    /// 2 KiB / 16 KiB / 1.25 MiB, 64-byte lines kept). The paper's L1
    /// holds ~0.004 % of a graph's per-node attributes; a full-size 32 KiB
    /// L1 would hold a third of our ~100×-smaller datasets, letting
    /// *mid-range* layout quality mask the micro-clustering the paper
    /// measures. Shrinking capacities restores the paper's
    /// working-set-to-cache ratios.
    pub fn scaled_down() -> Self {
        HierarchyConfig {
            levels: vec![
                LevelConfig {
                    size_bytes: 2 << 10,
                    line_bytes: 64,
                    associativity: 8,
                },
                LevelConfig {
                    size_bytes: 16 << 10,
                    line_bytes: 64,
                    associativity: 8,
                },
                LevelConfig {
                    size_bytes: 1280 << 10,
                    line_bytes: 64,
                    associativity: 16,
                },
            ],
            prefetch_next_line: false,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::xeon_e5()
    }
}

/// Summary counters in the replication's Table 3 vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheStats {
    /// References to L1 (all data references).
    pub l1_refs: u64,
    /// L1 miss rate.
    pub l1_miss_rate: f64,
    /// References reaching the last level.
    pub llc_refs: u64,
    /// LLC references / L1 references.
    pub llc_ratio: f64,
    /// Full misses (memory accesses) / L1 references.
    pub cache_miss_rate: f64,
    /// Hits at each level, then memory accesses last.
    pub hits_per_level: Vec<u64>,
    /// Accesses that fell through every level.
    pub memory_accesses: u64,
}

/// An inclusive cache hierarchy with per-level statistics.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    levels: Vec<CacheLevel>,
    prefetch_next_line: bool,
    prefetches: u64,
}

impl CacheHierarchy {
    /// Builds the hierarchy from a configuration.
    ///
    /// # Panics
    /// Panics on an empty level list or invalid level geometry.
    pub fn new(config: &HierarchyConfig) -> Self {
        assert!(!config.levels.is_empty(), "need at least one cache level");
        CacheHierarchy {
            levels: config.levels.iter().map(|&c| CacheLevel::new(c)).collect(),
            prefetch_next_line: config.prefetch_next_line,
            prefetches: 0,
        }
    }

    /// The replication's default machine.
    pub fn xeon_e5() -> Self {
        Self::new(&HierarchyConfig::xeon_e5())
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// One data reference at `addr`. Returns the level index that hit
    /// (0 = L1), or `depth()` for a full miss to memory.
    pub fn access(&mut self, addr: u64) -> usize {
        let mut hit = self.levels.len();
        for (i, level) in self.levels.iter_mut().enumerate() {
            if level.access(addr) {
                hit = i;
                break;
            }
        }
        if hit > 0 && self.prefetch_next_line {
            // demand miss somewhere: pull the next line alongside
            let line = self.levels[0].config().line_bytes;
            let next = addr.wrapping_add(line);
            for level in &mut self.levels {
                level.install(next);
            }
            self.prefetches += 1;
        }
        hit
    }

    /// Number of next-line prefetches issued.
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }

    /// Raw per-level counters.
    pub fn level_stats(&self) -> Vec<LevelStats> {
        self.levels.iter().map(|l| l.stats()).collect()
    }

    /// Table-3-style summary.
    pub fn stats(&self) -> CacheStats {
        let per = self.level_stats();
        let l1 = per.first().copied().unwrap_or_default();
        let last = per.last().copied().unwrap_or_default();
        let hits_per_level: Vec<u64> = per.iter().map(|s| s.references - s.misses).collect();
        let memory = last.misses;
        CacheStats {
            l1_refs: l1.references,
            l1_miss_rate: l1.miss_rate(),
            llc_refs: last.references,
            llc_ratio: if l1.references == 0 {
                0.0
            } else {
                last.references as f64 / l1.references as f64
            },
            cache_miss_rate: if l1.references == 0 {
                0.0
            } else {
                memory as f64 / l1.references as f64
            },
            hits_per_level,
            memory_accesses: memory,
        }
    }

    /// Resets counters, keeping cache contents (for warmup protocols).
    pub fn reset_stats(&mut self) {
        self.levels.iter_mut().for_each(CacheLevel::reset_stats);
    }

    /// Empties all levels and counters.
    pub fn flush(&mut self) {
        self.levels.iter_mut().for_each(CacheLevel::flush);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheHierarchy {
        CacheHierarchy::new(&HierarchyConfig {
            levels: vec![
                LevelConfig {
                    size_bytes: 256,
                    line_bytes: 64,
                    associativity: 2,
                },
                LevelConfig {
                    size_bytes: 1024,
                    line_bytes: 64,
                    associativity: 4,
                },
            ],
            prefetch_next_line: false,
        })
    }

    #[test]
    fn miss_falls_through_and_installs_above() {
        let mut h = tiny();
        assert_eq!(h.access(0), 2, "cold miss goes to memory");
        assert_eq!(h.access(0), 0, "now in L1");
        let s = h.stats();
        assert_eq!(s.l1_refs, 2);
        assert_eq!(s.memory_accesses, 1);
        assert_eq!(s.llc_refs, 1);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut h = tiny();
        // fill L1 set 0 (2-way, even lines) with 3 lines: line 0 evicted
        // from L1 but retained in the bigger L2
        h.access(0);
        h.access(2 * 64);
        h.access(4 * 64);
        assert_eq!(h.access(0), 1, "line 0 should hit in L2");
    }

    #[test]
    fn stats_ratios() {
        let mut h = tiny();
        for i in 0..8u64 {
            h.access(i * 64);
        }
        for i in 0..8u64 {
            h.access(i * 64);
        }
        let s = h.stats();
        assert_eq!(s.l1_refs, 16);
        assert!(s.l1_miss_rate > 0.0 && s.l1_miss_rate <= 1.0);
        assert!(
            s.cache_miss_rate <= s.l1_miss_rate,
            "deeper levels only filter"
        );
        assert!(s.llc_ratio <= s.l1_miss_rate + 1e-12);
    }

    #[test]
    fn xeon_defaults_build() {
        let h = CacheHierarchy::xeon_e5();
        assert_eq!(h.depth(), 3);
    }

    #[test]
    fn sequential_scan_has_line_sized_miss_rate() {
        // streaming over 64-byte lines with 4-byte elements → ~1/16 misses
        let mut h = CacheHierarchy::xeon_e5();
        for i in 0..100_000u64 {
            h.access(0x100_0000 + i * 4);
        }
        let mr = h.stats().l1_miss_rate;
        assert!(
            (mr - 1.0 / 16.0).abs() < 0.01,
            "sequential miss rate = {mr}"
        );
    }

    #[test]
    fn random_scan_beyond_llc_misses_mostly() {
        let mut h = CacheHierarchy::new(&HierarchyConfig {
            levels: vec![LevelConfig {
                size_bytes: 4096,
                line_bytes: 64,
                associativity: 4,
            }],
            prefetch_next_line: false,
        });
        let mut state = 1u64;
        for _ in 0..50_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.access(state % (1 << 24));
        }
        assert!(h.stats().l1_miss_rate > 0.9);
    }

    #[test]
    fn next_line_prefetch_helps_sequential_scans() {
        let run = |prefetch: bool| {
            let mut cfg = HierarchyConfig::xeon_e5();
            cfg.prefetch_next_line = prefetch;
            let mut h = CacheHierarchy::new(&cfg);
            for i in 0..100_000u64 {
                h.access(0x100_0000 + i * 4);
            }
            (h.stats().l1_miss_rate, h.prefetches())
        };
        let (mr_off, pf_off) = run(false);
        let (mr_on, pf_on) = run(true);
        assert_eq!(pf_off, 0);
        assert!(pf_on > 0);
        // miss-triggered prefetch covers every other line of a pure
        // sequential scan → roughly half the misses
        assert!(
            mr_on < mr_off * 0.7,
            "prefetching a sequential scan: {mr_on} vs {mr_off}"
        );
    }

    #[test]
    fn prefetch_does_not_change_reference_counts() {
        let mut cfg = HierarchyConfig::xeon_e5();
        cfg.prefetch_next_line = true;
        let mut h = CacheHierarchy::new(&cfg);
        for i in 0..1000u64 {
            h.access(i * 64);
        }
        assert_eq!(h.stats().l1_refs, 1000, "prefetches are not demand refs");
    }

    #[test]
    fn flush_and_reset() {
        let mut h = tiny();
        h.access(0);
        h.reset_stats();
        assert_eq!(h.stats().l1_refs, 0);
        assert_eq!(h.access(0), 0, "contents kept across reset_stats");
        h.flush();
        assert_eq!(h.access(0), 2, "flush empties contents");
    }
}
