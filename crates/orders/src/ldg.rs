//! LDG — Linear Deterministic Greedy streaming partitioning.
//!
//! Stanton & Kliot 2012, repurposed as an ordering: nodes stream in
//! original id order into `⌈n/k⌉` bins of capacity `k`; node `u` joins the
//! bin maximising
//!
//! ```text
//! (1 + |N(u) ∩ B|) · (1 − |B| / k)
//! ```
//!
//! — neighbour affinity times a penalty on nearly-full bins. The final
//! ordering concatenates the bins. The paper picks `k = 64` so one bin of
//! `u32` attributes spans a few cache lines (and one bin of 8-bit data one
//! line); both studies find LDG barely better than Random, a negative
//! result this reproduction also shows.
//!
//! Only bins already containing a neighbour of `u` can score above the
//! best empty-intersection bin, and among empty-intersection bins the
//! least-loaded wins — so each step inspects just the neighbour bins plus
//! one global least-loaded candidate, keeping the stream O((n + m) log n).

use crate::undirected;
use crate::OrderingAlgorithm;
use gorder_graph::{Graph, NodeId, Permutation};
use std::collections::BTreeSet;

/// LDG ordering with bin capacity `k`.
pub struct Ldg {
    k: u32,
}

impl Ldg {
    /// Creates LDG with the given bin capacity (the paper uses 64).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: u32) -> Self {
        assert!(k > 0, "bin capacity must be positive");
        Ldg { k }
    }
}

impl OrderingAlgorithm for Ldg {
    fn name(&self) -> &'static str {
        "LDG"
    }

    fn params(&self) -> String {
        format!("k={}", self.k)
    }

    fn compute(&self, g: &Graph) -> Permutation {
        let n = g.n();
        if n == 0 {
            return Permutation::identity(0);
        }
        let k = self.k;
        let bins = n.div_ceil(k) as usize;
        let kf = f64::from(k);
        let mut load = vec![0u32; bins];
        let mut bin_of: Vec<u32> = vec![u32::MAX; n as usize];
        // Least-loaded non-full bin, keyed (load, index).
        let mut by_load: BTreeSet<(u32, u32)> = (0..bins as u32).map(|b| (0, b)).collect();
        // Per-step neighbour-bin counts, reset via touched list.
        let mut count = vec![0u32; bins];
        let mut touched: Vec<u32> = Vec::new();

        for u in g.nodes() {
            touched.clear();
            for v in undirected::neighbors(g, u) {
                let b = bin_of[v as usize];
                if b != u32::MAX {
                    if count[b as usize] == 0 {
                        touched.push(b);
                    }
                    count[b as usize] += 1;
                }
            }
            // Candidates: neighbour bins + globally least-loaded bin.
            let mut best_bin = u32::MAX;
            let mut best_score = f64::NEG_INFINITY;
            let mut consider = |b: u32, inter: u32, load: &[u32]| {
                let l = load[b as usize];
                if l >= k {
                    return; // full bins score ≤ 0 and may not overflow
                }
                let score = (1.0 + f64::from(inter)) * (1.0 - f64::from(l) / kf);
                if score > best_score || (score == best_score && b < best_bin) {
                    best_score = score;
                    best_bin = b;
                }
            };
            for &b in &touched {
                consider(b, count[b as usize], &load);
            }
            if let Some(&(_, b)) = by_load.iter().next() {
                consider(b, count[b as usize], &load);
            }
            for &b in &touched {
                count[b as usize] = 0;
            }
            let b = best_bin;
            debug_assert_ne!(b, u32::MAX, "capacity Σk ≥ n guarantees a non-full bin");
            by_load.remove(&(load[b as usize], b));
            load[b as usize] += 1;
            if load[b as usize] < k {
                by_load.insert((load[b as usize], b));
            }
            bin_of[u as usize] = b;
        }

        // Concatenate bins in index order; within a bin, stream order.
        let mut placement: Vec<NodeId> = Vec::with_capacity(n as usize);
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); bins];
        for u in g.nodes() {
            members[bin_of[u as usize] as usize].push(u);
        }
        for bin in members {
            placement.extend(bin);
        }
        Permutation::from_placement(&placement).expect("every node landed in one bin")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_capacity() {
        let g = Graph::from_edges(10, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let perm = Ldg::new(3).compute(&g);
        crate::assert_valid_for(&perm, &g);
        // capacity 3 → every placement block of one bin has ≤ 3 members;
        // validated implicitly by bins ≤ ⌈10/3⌉ = 4 and coverage.
    }

    #[test]
    fn neighbors_attract() {
        // two cliques of 4, streaming order interleaved
        let mut edges = Vec::new();
        for &(a, b, c, d) in &[(0u32, 2u32, 4u32, 6u32), (1, 3, 5, 7)] {
            for &x in &[a, b, c, d] {
                for &y in &[a, b, c, d] {
                    if x != y {
                        edges.push((x, y));
                    }
                }
            }
        }
        let g = Graph::from_edges(8, &edges);
        let perm = Ldg::new(4).compute(&g);
        // clique members should share a bin → consecutive ids
        let pos: Vec<u32> = (0..8).map(|u| perm.apply(u)).collect();
        let clique_a: Vec<u32> = vec![pos[0], pos[2], pos[4], pos[6]];
        let spread = clique_a.iter().max().unwrap() - clique_a.iter().min().unwrap();
        assert!(spread <= 3, "clique A spread {spread}: {pos:?}");
    }

    #[test]
    fn k_one_degenerates_to_identity_like() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let perm = Ldg::new(1).compute(&g);
        crate::assert_valid_for(&perm, &g);
    }

    #[test]
    fn capacity_never_exceeded() {
        let g = Graph::from_edges(
            9,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (0, 7),
                (0, 8),
            ],
        );
        let k = 2;
        let perm = Ldg::new(k).compute(&g);
        crate::assert_valid_for(&perm, &g);
        // reconstruct loads: bin b = nodes placed at ids [b*k, (b+1)*k)
        // cannot be checked directly post-concat (bins may be underfull),
        // so instead recompute: at most k nodes may map into any window of
        // size k that a single bin occupies — weaker check: valid perm +
        // no panic from the debug_assert inside compute.
    }

    #[test]
    fn deterministic() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (0, 5)]);
        let a = Ldg::new(64).compute(&g);
        let b = Ldg::new(64).compute(&g);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn empty() {
        assert_eq!(Ldg::new(64).compute(&Graph::empty(0)).len(), 0);
    }
}
