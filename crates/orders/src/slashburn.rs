//! SlashBurn (simplified) — hub/spoke separation.
//!
//! SlashBurn (Lim, Kang, Faloutsos 2014) exploits the fact that real
//! graphs are "caveman communities plus hubs": removing a few hubs
//! shatters the graph. The ordering fills an array from both ends:
//!
//! * each iteration removes one maximum-degree hub and appends it to the
//!   **front** (part A);
//! * nodes that become isolated by the removal are appended to the
//!   **back** (part C);
//! * the remaining middle (part B) is processed by the next iteration.
//!
//! The replication implements this simplified per-iteration variant (one
//! hub per iteration, isolated nodes instead of whole disconnected
//! components) because the original paper under-specifies its version; we
//! follow the replication. Hub ties break toward the smaller id, making
//! the ordering deterministic.
//!
//! Degrees are symmetrised multigraph degrees (out + in).

use crate::OrderingAlgorithm;
use gorder_graph::{Graph, NodeId, Permutation};
use std::collections::BinaryHeap;

/// Simplified SlashBurn ordering.
pub struct SlashBurn {
    hubs_per_iter: u32,
}

impl SlashBurn {
    /// The replication's simplified variant: one hub per iteration.
    pub fn new() -> Self {
        SlashBurn { hubs_per_iter: 1 }
    }

    /// The original paper's `r` parameter: slash `r` hubs per iteration
    /// before burning the newly isolated nodes (Lim, Kang, Faloutsos use
    /// r ≈ 0.5 % of n). In this isolated-node simplification the batch
    /// size only changes placements near the end of the process (nodes
    /// isolated mid-batch can be slashed to the front before the burn
    /// reaches them); in the full disconnected-components variant it is a
    /// genuine coarseness/speed knob.
    ///
    /// # Panics
    /// Panics if `r == 0`.
    pub fn with_hubs_per_iter(r: u32) -> Self {
        assert!(r >= 1, "need at least one hub per iteration");
        SlashBurn { hubs_per_iter: r }
    }
}

impl Default for SlashBurn {
    fn default() -> Self {
        SlashBurn::new()
    }
}

impl OrderingAlgorithm for SlashBurn {
    fn name(&self) -> &'static str {
        "SlashBurn"
    }

    fn compute(&self, g: &Graph) -> Permutation {
        let n = g.n() as usize;
        let mut deg: Vec<u32> = g.nodes().map(|u| g.degree(u)).collect();
        let mut alive = vec![true; n];
        let mut front: Vec<NodeId> = Vec::new();
        let mut back: Vec<NodeId> = Vec::new();
        // Max-heap with lazy staleness: degrees only decrease. Ties break
        // toward smaller ids via Reverse on the id component.
        let mut heap: BinaryHeap<(u32, std::cmp::Reverse<NodeId>)> = (0..n as u32)
            .map(|u| (deg[u as usize], std::cmp::Reverse(u)))
            .collect();
        let mut remaining = n;

        // Initially isolated nodes burn immediately (iteration "zero").
        for u in 0..n as u32 {
            if deg[u as usize] == 0 {
                alive[u as usize] = false;
                back.push(u);
                remaining -= 1;
            }
        }

        let mut newly_isolated: Vec<NodeId> = Vec::new();
        while remaining > 0 {
            // Slash: extract up to `r` max-degree hubs as a batch.
            newly_isolated.clear();
            for _ in 0..self.hubs_per_iter {
                if remaining == 0 {
                    break;
                }
                let hub = loop {
                    let (d, std::cmp::Reverse(u)) =
                        heap.pop().expect("remaining nodes have entries");
                    if alive[u as usize] && deg[u as usize] == d {
                        break u;
                    }
                    if alive[u as usize] {
                        heap.push((deg[u as usize], std::cmp::Reverse(u)));
                    }
                };
                alive[hub as usize] = false;
                front.push(hub);
                remaining -= 1;
                for v in g
                    .out_neighbors(hub)
                    .iter()
                    .chain(g.in_neighbors(hub))
                    .copied()
                {
                    if alive[v as usize] {
                        deg[v as usize] -= 1;
                        heap.push((deg[v as usize], std::cmp::Reverse(v)));
                        if deg[v as usize] == 0 {
                            newly_isolated.push(v);
                        }
                    }
                }
            }
            // Burn: the batch's newly isolated nodes go to part C.
            for &v in &newly_isolated {
                if alive[v as usize] {
                    alive[v as usize] = false;
                    back.push(v);
                    remaining -= 1;
                }
            }
        }
        // Part C fills from the back: later burns sit closer to the middle.
        let mut placement = front;
        placement.extend(back.into_iter().rev());
        Permutation::from_placement(&placement).expect("slashburn covers every node once")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_hub_first_leaves_last() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let perm = SlashBurn::new().compute(&g);
        let placement = perm.placement();
        assert_eq!(placement[0], 0, "hub slashed first");
        // leaves become isolated in the same burn; they fill the back
        let mut tail: Vec<NodeId> = placement[1..].to_vec();
        tail.sort_unstable();
        assert_eq!(tail, vec![1, 2, 3, 4]);
    }

    #[test]
    fn isolated_nodes_go_to_the_back() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let perm = SlashBurn::new().compute(&g);
        let placement = perm.placement();
        // 2 and 3 are isolated from the start → end of the array
        assert!(placement.iter().position(|&u| u == 2).unwrap() >= 2);
        assert!(placement.iter().position(|&u| u == 3).unwrap() >= 2);
    }

    #[test]
    fn hubs_sorted_by_slash_order() {
        // two stars of different size: bigger hub first
        let g = Graph::from_edges(8, &[(0, 1), (0, 2), (0, 3), (0, 4), (5, 6), (5, 7)]);
        let placement = SlashBurn::new().compute(&g).placement();
        let pos0 = placement.iter().position(|&u| u == 0).unwrap();
        let pos5 = placement.iter().position(|&u| u == 5).unwrap();
        assert!(pos0 < pos5, "degree-8 hub before degree-4 hub");
    }

    #[test]
    fn deterministic_tie_break() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let a = SlashBurn::new().compute(&g);
        let b = SlashBurn::new().compute(&g);
        assert_eq!(a.as_slice(), b.as_slice());
        // equal degrees: smaller id slashed first
        assert_eq!(a.placement()[0], 0);
    }

    #[test]
    fn valid_on_cycle() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        crate::assert_valid_for(&SlashBurn::new().compute(&g), &g);
    }

    #[test]
    fn multi_hub_variant_is_valid_and_differs_in_the_endgame() {
        // In the isolated-node simplification, r changes placements only
        // when a node isolated mid-batch gets *slashed* (to the front)
        // before the batch's burn phase reaches it. Triangle {0,1,2} plus
        // the pair 3–4 triggers exactly that with a graph-sized batch:
        // r = 1 sends 2 and 4 to the back, one big batch slashes them.
        let g = Graph::from_edges(5, &[(0, 1), (1, 0), (1, 2), (2, 1), (2, 0), (0, 2), (3, 4)]);
        let r1 = SlashBurn::new().compute(&g);
        let r5 = SlashBurn::with_hubs_per_iter(5).compute(&g);
        crate::assert_valid_for(&r1, &g);
        crate::assert_valid_for(&r5, &g);
        assert_ne!(r1.as_slice(), r5.as_slice());
    }

    #[test]
    #[should_panic(expected = "at least one hub")]
    fn zero_hubs_rejected() {
        SlashBurn::with_hubs_per_iter(0);
    }

    #[test]
    fn empty_and_isolated_only() {
        assert_eq!(SlashBurn::new().compute(&Graph::empty(0)).len(), 0);
        let g = Graph::empty(3);
        crate::assert_valid_for(&SlashBurn::new().compute(&g), &g);
    }
}
